//! Reproduction scenarios for every figure in the paper.
//!
//! Each function builds the machine + monitoring stack, injects the
//! documented condition, runs the experiment, and returns the series the
//! corresponding paper figure plots, plus the summary statistics
//! `EXPERIMENTS.md` records.  The `hpcmon-bench` crate and the
//! `examples/` binaries are thin wrappers over these.

use crate::system::MonitoringSystem;
use hpcmon_analysis::association::{associate, score, AssocEvent, AssocScore};
use hpcmon_analysis::{CusumDetector, Detector, ImbalanceDetector};
use hpcmon_metrics::{CompId, JobRecord, SeriesKey, Ts, MINUTE_MS};
use hpcmon_sim::clock::DriftClock;
use hpcmon_sim::sched::Placement;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec, Rng, SimConfig, SimEngine};
use hpcmon_store::{AggFn, TimeRange};

/// Output of the Figure 1 reproduction.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Mean injection bandwidth (% of link capacity) per tick, pre-TAS.
    pub pre_tas: Vec<(Ts, f64)>,
    /// Same series with topology-aware scheduling.
    pub post_tas: Vec<(Ts, f64)>,
    /// Era mean, pre-TAS.
    pub pre_mean: f64,
    /// Era mean, with TAS.
    pub post_mean: f64,
}

/// Figure 1 (NCSA): mean HSN injection bandwidth before/after
/// topology-aware scheduling.  Paper: the mean utilization line "is
/// significantly lower over the pre-TAS time period than when TAS was
/// being utilized."
pub fn fig1_tas(ticks: u64, seed: u64) -> Fig1Result {
    let run_era = |placement: Placement| -> Vec<(Ts, f64)> {
        let mut cfg = SimConfig::small();
        cfg.topology = hpcmon_sim::TopologySpec::Torus3D { dims: [8, 8, 4], nodes_per_router: 2 };
        // Capacity chosen so the comm-heavy mix congests hard under
        // scattered placement but fits comfortably when contiguous.
        cfg.link_capacity_bytes_per_sec = 2.0e9;
        cfg.scheduler.placement = placement;
        cfg.seed = seed;
        let mut mon =
            MonitoringSystem::builder(cfg).bench_suite_every(None).with_probes(false).build();
        // A steady mix of communicating jobs, submitted up front so both
        // eras schedule the identical workload.
        let mut rng = Rng::new(seed ^ 0x51);
        for i in 0..64u64 {
            let nodes = 16 + (rng.below(3) * 16) as u32; // 16/32/48
            mon.submit_job(JobSpec::new(
                AppProfile::comm_heavy(&format!("fft{i}")),
                "user",
                nodes,
                (ticks / 2) * MINUTE_MS,
                Ts::ZERO,
            ));
        }
        let metrics = mon.metrics();
        mon.run_ticks(ticks);
        mon.query().aggregate_across_components(
            metrics.node_injection_pct,
            TimeRange::all(),
            AggFn::Mean,
        )
    };
    let pre_tas = run_era(Placement::Random);
    let post_tas = run_era(Placement::TopologyAware);
    let mean = |s: &[(Ts, f64)]| s.iter().map(|p| p.1).sum::<f64>() / s.len().max(1) as f64;
    Fig1Result { pre_mean: mean(&pre_tas), post_mean: mean(&post_tas), pre_tas, post_tas }
}

/// Output of the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// I/O benchmark time-to-solution over time.
    pub io_series: Vec<(Ts, f64)>,
    /// Network benchmark time-to-solution over time.
    pub net_series: Vec<(Ts, f64)>,
    /// Tick at which the filesystem degradation was injected.
    pub injected_io_onset: Ts,
    /// Tick at which the network contention began.
    pub injected_net_onset: Ts,
    /// CUSUM-detected I/O onset, if found.
    pub detected_io_onset: Option<Ts>,
    /// CUSUM-detected network onset, if found.
    pub detected_net_onset: Option<Ts>,
}

/// Figure 2 (NERSC): periodic benchmark performance over time; the onset
/// of degradations is apparent and drives investigation.
pub fn fig2_bench_suite(seed: u64) -> Fig2Result {
    let mut cfg = SimConfig::small();
    cfg.seed = seed;
    let mut mon =
        MonitoringSystem::builder(cfg).bench_suite_every(Some(2)).with_probes(false).build();
    let io_onset = Ts::from_mins(120);
    let net_onset = Ts::from_mins(240);
    for ost in 0..16 {
        mon.schedule_fault(io_onset, FaultKind::OstDegrade { ost, factor: 4.0 });
    }
    // Network contention era: a machine-filling communication-heavy job.
    let net_job =
        JobSpec::new(AppProfile::comm_heavy("aggressor"), "noisy", 128, 120 * MINUTE_MS, net_onset);
    let metrics = mon.metrics();
    // Run to the net onset, submit, run the rest.
    mon.run_ticks(240);
    mon.submit_job(net_job);
    mon.run_ticks(120);
    let io_series =
        mon.query().series(SeriesKey::new(metrics.bench_io, CompId::SYSTEM), TimeRange::all());
    let net_series =
        mon.query().series(SeriesKey::new(metrics.bench_network, CompId::SYSTEM), TimeRange::all());
    let detect = |series: &[(Ts, f64)]| -> Option<Ts> {
        let mut cusum = CusumDetector::new(30, 0.5, 8.0);
        for &(t, v) in series {
            if let Some(a) = cusum.observe(t, v) {
                return Some(a.ts);
            }
        }
        None
    };
    Fig2Result {
        detected_io_onset: detect(&io_series),
        detected_net_onset: detect(&net_series),
        io_series,
        net_series,
        injected_io_onset: io_onset,
        injected_net_onset: net_onset,
    }
}

/// Output of the Figure 3 reproduction.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Total system power over time (top panel).
    pub total_power: Vec<(Ts, f64)>,
    /// Per-cabinet power over time (bottom panel).
    pub cabinet_power: Vec<(CompId, Vec<(Ts, f64)>)>,
    /// Max/min cabinet power ratio inside the imbalance window.
    pub window_cabinet_ratio: f64,
    /// Balanced-era total power divided by imbalance-window total power.
    pub draw_ratio: f64,
    /// Ticks at which the imbalance detector flagged.
    pub flagged_ticks: Vec<Ts>,
    /// The injected imbalance window (job-relative, minutes).
    pub window_mins: (u64, u64),
}

/// Figure 3 (KAUST): full-machine power (top) and per-cabinet power
/// (bottom).  Paper: "Around 17-22 minutes, power usage variation of up to
/// 3 times was observed between different cabinets and full system power
/// draw was almost 1.9 times lower during this period."
pub fn fig3_power(seed: u64) -> Fig3Result {
    let mut cfg = SimConfig::small();
    cfg.topology = hpcmon_sim::TopologySpec::Torus3D { dims: [8, 4, 4], nodes_per_router: 2 };
    cfg.seed = seed;
    let mut mon = MonitoringSystem::builder(cfg).bench_suite_every(None).with_probes(false).build();
    let nodes = mon.engine().num_nodes();
    // One machine-filling job whose ranks 30%..100% idle between minutes
    // 17 and 22 of the run (the KAUST load-imbalance pathology).
    let mut app = AppProfile::compute_heavy("vasp");
    app.imbalance = Some((17 * MINUTE_MS, 22 * MINUTE_MS, 0.7));
    mon.submit_job(JobSpec::new(app, "kaust_user", nodes, 40 * MINUTE_MS, Ts::ZERO));
    let metrics = mon.metrics();
    mon.run_ticks(42);

    let total_power =
        mon.query().series(SeriesKey::new(metrics.system_power, CompId::SYSTEM), TimeRange::all());
    let cabinet_power = mon.query().components_of_kind(
        metrics.cabinet_power,
        hpcmon_metrics::CompKind::Cabinet,
        TimeRange::all(),
    );
    // Job starts at tick 1, so job-minute 17..22 is wall minutes 18..23.
    let window = TimeRange::new(Ts::from_mins(19), Ts::from_mins(22));
    let mut ratio: f64 = 1.0;
    let det = ImbalanceDetector::new();
    let mut flagged = Vec::new();
    for t in (1..=42).map(Ts::from_mins) {
        let cabs: Vec<f64> = cabinet_power
            .iter()
            .filter_map(|(_, pts)| pts.iter().find(|&&(pt, _)| pt == t).map(|&(_, v)| v))
            .collect();
        if cabs.is_empty() {
            continue;
        }
        let r = det.assess(&cabs);
        if window.contains(t) {
            ratio = ratio.max(r.max_min_ratio);
        }
        if r.flagged {
            flagged.push(t);
        }
    }
    let mean_in = |range: TimeRange| {
        let pts: Vec<f64> =
            total_power.iter().filter(|&&(t, _)| range.contains(t)).map(|&(_, v)| v).collect();
        pts.iter().sum::<f64>() / pts.len().max(1) as f64
    };
    let balanced = mean_in(TimeRange::new(Ts::from_mins(5), Ts::from_mins(15)));
    let imbalanced = mean_in(window);
    Fig3Result {
        total_power,
        cabinet_power,
        window_cabinet_ratio: ratio,
        draw_ratio: balanced / imbalanced.max(1.0),
        flagged_ticks: flagged,
        window_mins: (17, 22),
    }
}

/// Output of the Figure 4 reproduction.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Aggregate filesystem read rate over time (top panel).
    pub aggregate_read: Vec<(Ts, f64)>,
    /// Time of the read spike.
    pub peak: Ts,
    /// Top nodes by read rate at the peak (drill-down table).
    pub top_nodes: Vec<(CompId, f64)>,
    /// The job attributed to the spike.
    pub attributed: Option<JobRecord>,
    /// The job that actually caused it (ground truth).
    pub culprit: JobRecord,
}

/// Figure 4 (NCSA): a system-aggregate I/O spike is drilled down to the
/// responsible nodes and attributed to the job running on them.
pub fn fig4_drilldown(seed: u64) -> Fig4Result {
    let mut cfg = SimConfig::small();
    cfg.seed = seed;
    let mut mon = MonitoringSystem::builder(cfg).bench_suite_every(None).with_probes(false).build();
    // Background compute jobs...
    for i in 0..4 {
        mon.submit_job(JobSpec::new(
            AppProfile::compute_heavy(&format!("bg{i}")),
            "alice",
            16,
            90 * MINUTE_MS,
            Ts::ZERO,
        ));
    }
    mon.run_ticks(20);
    // ...then the storm.
    let culprit_id = mon.submit_job(JobSpec::new(
        AppProfile::io_storm("untarball"),
        "carol",
        16,
        20 * MINUTE_MS,
        Ts::from_mins(20),
    ));
    mon.run_ticks(40);
    let metrics = mon.metrics();
    let aggregate_read = mon
        .query()
        .series(SeriesKey::new(metrics.fs_agg_read_bps, CompId::SYSTEM), TimeRange::all());
    let peak = hpcmon_viz::DrilldownView::peak_of(&aggregate_read).expect("data exists");
    let top_nodes = mon.query().top_components_at(metrics.node_fs_read_bps, peak, MINUTE_MS, 8);
    // Attribution: the job whose allocation owns the top node at the peak.
    let attributed = top_nodes.first().and_then(|(comp, _)| {
        mon.engine()
            .scheduler()
            .records()
            .iter()
            .find(|r| r.uses_node(comp.index) && r.running_at(peak))
            .cloned()
    });
    let culprit = mon.engine().scheduler().record(culprit_id).clone();
    Fig4Result { aggregate_read, peak, top_nodes, attributed, culprit }
}

/// Output of the Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The instrumented job.
    pub job: JobRecord,
    /// Rendered multi-metric panel text.
    pub panel_text: String,
    /// The downloadable CSV behind the panel.
    pub csv: String,
}

/// Figure 5 (NCSA): per-job multi-metric timeseries condensed by summing
/// and averaging over nodes, with plot + CSV download.
pub fn fig5_perjob(seed: u64) -> Fig5Result {
    let mut cfg = SimConfig::small();
    cfg.seed = seed;
    let mut mon = MonitoringSystem::builder(cfg).bench_suite_every(None).with_probes(false).build();
    let id = mon.submit_job(JobSpec::new(
        AppProfile::checkpointing("climate"),
        "bob",
        32,
        30 * MINUTE_MS,
        Ts::ZERO,
    ));
    mon.run_ticks(35);
    let metrics = mon.metrics();
    let job = mon.engine().scheduler().record(id).clone();
    let q = mon.query();
    let panel = hpcmon_viz::JobPanel::new(job.clone())
        .add("cpu util", hpcmon_viz::panels::Condense::Mean, q.job_series(&job, metrics.node_cpu))
        .add("power W", hpcmon_viz::panels::Condense::Sum, q.job_series(&job, metrics.node_power))
        .add(
            "mem bytes",
            hpcmon_viz::panels::Condense::Sum,
            q.job_series(&job, metrics.node_mem_used),
        )
        .add(
            "inj %",
            hpcmon_viz::panels::Condense::Mean,
            q.job_series(&job, metrics.node_injection_pct),
        );
    Fig5Result { panel_text: panel.render(), csv: panel.csv(), job }
}

/// Output of the health-gating experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatingResult {
    /// Jobs that failed on a bad node (gating off).
    pub failed_without_gating: usize,
    /// Jobs that failed on a bad node (gating on).
    pub failed_with_gating: usize,
    /// Jobs completed, gating off.
    pub completed_without_gating: usize,
    /// Jobs completed, gating on.
    pub completed_with_gating: usize,
}

/// CSCS health gating: "a problem should only be encountered by at most
/// one batch job."  Injects repeated service failures and compares job
/// casualties with gating on and off.
pub fn gating_experiment(seed: u64) -> GatingResult {
    let run = |gating: bool| -> (usize, usize) {
        let mut cfg = SimConfig::small();
        cfg.scheduler.health_gating = gating;
        cfg.seed = seed;
        let mut engine = SimEngine::new(cfg);
        // A stream of short jobs...
        for i in 0..120u64 {
            engine.submit_job(JobSpec::new(
                AppProfile::compute_heavy("short"),
                "u",
                8,
                10 * MINUTE_MS,
                Ts::from_mins(i),
            ));
        }
        // ...and a rolling set of nodes losing a service (which does not
        // kill running jobs, but poisons future placements: exactly what
        // pre-job checks exist to catch) plus a few hard crashes.
        let mut rng = Rng::new(seed ^ 0x6A7E);
        for k in 0..10u64 {
            let node = rng.below(128) as u32;
            engine.schedule_fault(
                Ts::from_mins(5 + k * 12),
                FaultKind::ServiceDown { node, service: (k % 4) as u8 },
            );
            if k % 3 == 0 {
                let victim = rng.below(128) as u32;
                engine.schedule_fault(
                    Ts::from_mins(8 + k * 12),
                    FaultKind::NodeCrash { node: victim },
                );
            }
        }
        engine.run_until(Ts::from_mins(240));
        let failed = engine
            .scheduler()
            .records()
            .iter()
            .filter(|r| r.state == hpcmon_metrics::JobState::Failed)
            .count();
        let completed = engine
            .scheduler()
            .records()
            .iter()
            .filter(|r| r.state == hpcmon_metrics::JobState::Completed)
            .count();
        (failed, completed)
    };
    let (failed_without_gating, completed_without_gating) = run(false);
    let (failed_with_gating, completed_with_gating) = run(true);
    GatingResult {
        failed_without_gating,
        failed_with_gating,
        completed_without_gating,
        completed_with_gating,
    }
}

/// One point of the SNL p-state sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PstatePoint {
    /// CPU frequency scale.
    pub scale: f64,
    /// Job runtime, ms.
    pub runtime_ms: u64,
    /// Mean system power during the run, watts.
    pub mean_power_w: f64,
    /// Total energy for the run, joules.
    pub energy_j: f64,
}

/// SNL power profiling (§II-9): sweep the p-state for a fixed workload
/// and report the time/power/energy tradeoff.  Energy is typically
/// minimized at an interior p-state because idle power keeps burning
/// while a down-clocked job runs longer.
pub fn pstate_sweep(scales: &[f64], seed: u64) -> Vec<PstatePoint> {
    scales
        .iter()
        .map(|&scale| {
            let mut cfg = SimConfig::small();
            cfg.seed = seed;
            let mut engine = SimEngine::new(cfg);
            engine.set_pstate(scale);
            let id = engine.submit_job(JobSpec::new(
                AppProfile::compute_heavy("stencil3d"),
                "snl",
                128,
                30 * MINUTE_MS,
                Ts::ZERO,
            ));
            let mut energy = 0.0;
            let mut power_sum = 0.0;
            let mut power_ticks = 0u64;
            for _ in 0..300 {
                engine.step();
                let total: f64 = (0..engine.num_nodes()).map(|n| engine.node_power_w(n)).sum();
                if engine.scheduler().record(id).state == hpcmon_metrics::JobState::Running {
                    energy += total * 60.0; // W × 60 s tick
                    power_sum += total;
                    power_ticks += 1;
                }
                if engine.scheduler().record(id).state == hpcmon_metrics::JobState::Completed {
                    break;
                }
            }
            PstatePoint {
                scale,
                runtime_ms: engine.scheduler().record(id).runtime_ms().unwrap_or(u64::MAX),
                mean_power_w: power_sum / power_ticks.max(1) as f64,
                energy_j: energy,
            }
        })
        .collect()
}

/// Output of the SNL congestion-region scenario.
#[derive(Debug, Clone)]
pub struct CongestionScenarioResult {
    /// Region congestion map at the peak of the hotspot.
    pub map: hpcmon_analysis::CongestionMap,
    /// The cabinet the hotspot job lives in (ground truth).
    pub hot_cabinet: u32,
    /// Regions flagged at Medium or worse.
    pub hot_regions: Vec<u32>,
}

/// SNL congestion regions (§II-9): synchronized stall counters over the
/// whole HSN, banded into levels and localized to regions; a hotspot job
/// in one cabinet should light up that region and not the rest.
pub fn congestion_regions(seed: u64) -> CongestionScenarioResult {
    use hpcmon_analysis::congestion::LinkCounters;
    let mut cfg = SimConfig::small();
    cfg.topology = hpcmon_sim::TopologySpec::Torus3D { dims: [8, 4, 4], nodes_per_router: 2 };
    cfg.link_capacity_bytes_per_sec = 1.0e9;
    cfg.seed = seed;
    let mut engine = SimEngine::new(cfg);
    // Quiet background everywhere...
    for i in 0..6 {
        engine.submit_job(JobSpec::new(
            AppProfile::compute_heavy(&format!("bg{i}")),
            "u",
            16,
            120 * MINUTE_MS,
            Ts::ZERO,
        ));
    }
    // ...and one saturating job confined (by TAS placement) to the tail
    // cabinet of the machine.
    let nodes = engine.num_nodes();
    let per_cabinet = nodes / engine.topology().num_cabinets();
    engine.submit_job(JobSpec::new(
        AppProfile::comm_heavy("hotspot"),
        "noisy",
        per_cabinet,
        120 * MINUTE_MS,
        Ts::ZERO,
    ));
    engine.run_until(Ts::from_mins(5));
    let hotspot_rec = engine
        .scheduler()
        .records()
        .iter()
        .find(|r| r.name == "hotspot")
        .expect("hotspot scheduled")
        .clone();
    let hot_cabinet = engine.topology().cabinet_of(hotspot_rec.nodes[0]);

    let counters: Vec<LinkCounters> = (0..engine.network().num_links() as u32)
        .map(|l| LinkCounters {
            link: l,
            traffic_bytes: engine.network().link_traffic_bytes(l),
            stall_bytes: engine.network().link_stall_bytes(l),
        })
        .collect();
    // Region of a link: the cabinet of its source router's first node.
    let topo = engine.topology().clone();
    let map = hpcmon_analysis::CongestionMap::build(&counters, |l| {
        let from = topo.link(l).from;
        topo.cabinet_of(topo.nodes_of_router(from).start)
    });
    let hot_regions = map.hot_regions(hpcmon_analysis::CongestionLevel::Medium);
    CongestionScenarioResult { map, hot_cabinet, hot_regions }
}

/// Output of the clock-synchronization ablation.
#[derive(Debug, Clone, Copy)]
pub struct ClockSyncResult {
    /// Association quality with synchronized clocks.
    pub synced: AssocScore,
    /// Quality with drifting clocks, uncorrected.
    pub drifting: AssocScore,
    /// Quality with drifting clocks after model-based correction.
    pub corrected: AssocScore,
}

/// The §III-B hazard quantified: cross-component event association with
/// synchronized clocks, with drifting clocks, and with drift correction.
pub fn clock_sync_ablation(incidents: u32, seed: u64) -> ClockSyncResult {
    let nodes = 64usize;
    let mut rng = Rng::new(seed);
    let drift = DriftClock::drifting(nodes, 30_000, 200.0, &mut rng);
    // Ground truth: `incidents` bursts, 6 events each, 0.5 s apart within
    // a burst, bursts 10 minutes apart.
    let mut truth: Vec<AssocEvent> = Vec::new();
    for inc in 0..incidents {
        let base = Ts::from_mins(10 + inc as u64 * 10);
        for e in 0..6u64 {
            let node = rng.below(nodes as u64) as u32;
            truth.push(AssocEvent { ts: base.add_ms(e * 500), comp: CompId::node(node), tag: inc });
        }
    }
    // Causally related events land within seconds of each other, so a
    // short window is the right operational choice — which is exactly why
    // multi-second clock offsets are fatal to association.
    let window = 5_000;
    let synced = score(&associate(truth.clone(), window));
    let skewed: Vec<AssocEvent> = truth
        .iter()
        .map(|e| AssocEvent { ts: drift.local_time(e.comp.index, e.ts), ..*e })
        .collect();
    let drifting = score(&associate(skewed.clone(), window));
    let corrected_events: Vec<AssocEvent> = skewed
        .iter()
        .map(|e| AssocEvent { ts: drift.to_global(e.comp.index, e.ts), ..*e })
        .collect();
    let corrected = score(&associate(corrected_events, window));
    ClockSyncResult { synced, drifting, corrected }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_tas_improves_injection() {
        let r = fig1_tas(20, 7);
        assert!(!r.pre_tas.is_empty() && !r.post_tas.is_empty());
        assert!(
            r.post_mean > r.pre_mean * 1.1,
            "TAS should raise mean injection: pre {} post {}",
            r.pre_mean,
            r.post_mean
        );
    }

    #[test]
    fn fig3_matches_paper_shape() {
        let r = fig3_power(7);
        assert!(
            r.window_cabinet_ratio > 2.0,
            "cabinet variation ~3x, got {}",
            r.window_cabinet_ratio
        );
        assert!(
            r.draw_ratio > 1.4 && r.draw_ratio < 2.5,
            "total draw ~1.9x lower, got {}",
            r.draw_ratio
        );
        assert!(!r.flagged_ticks.is_empty(), "imbalance detector fired");
        // Flags fall inside (or at the edges of) the window.
        assert!(r.flagged_ticks.iter().all(|t| *t >= Ts::from_mins(17) && *t <= Ts::from_mins(24)));
    }

    #[test]
    fn fig4_attributes_the_storm() {
        let r = fig4_drilldown(7);
        assert!(r.peak >= Ts::from_mins(20), "spike is in the storm era");
        assert!(!r.top_nodes.is_empty());
        let attributed = r.attributed.expect("attribution found");
        assert_eq!(attributed.id, r.culprit.id, "the io_storm job is blamed");
        assert_eq!(attributed.user, "carol");
    }

    #[test]
    fn fig5_panel_and_csv_consistent() {
        let r = fig5_perjob(7);
        assert!(r.panel_text.contains("climate"));
        assert!(r.panel_text.contains("cpu util"));
        assert!(r.panel_text.contains("power W"));
        let header = r.csv.lines().next().unwrap();
        assert_eq!(header, "time_ms,cpu util,power W,mem bytes,inj %");
        assert!(r.csv.lines().count() > 10);
    }

    #[test]
    fn gating_protects_jobs() {
        let r = gating_experiment(7);
        assert!(
            r.failed_with_gating <= r.failed_without_gating,
            "gating must not increase casualties: {r:?}"
        );
        assert!(r.completed_with_gating > 0);
    }

    #[test]
    fn pstate_sweep_shows_the_tradeoff() {
        let sweep = pstate_sweep(&[0.5, 0.8, 1.0], 7);
        assert_eq!(sweep.len(), 3);
        // Runtime decreases with frequency; power increases.
        assert!(sweep[0].runtime_ms > sweep[1].runtime_ms);
        assert!(sweep[1].runtime_ms > sweep[2].runtime_ms);
        assert!(sweep[0].mean_power_w < sweep[2].mean_power_w);
        // Every point completed.
        assert!(sweep.iter().all(|p| p.runtime_ms != u64::MAX));
        assert!(sweep.iter().all(|p| p.energy_j > 0.0));
    }

    #[test]
    fn congestion_map_localizes_the_hotspot() {
        let r = congestion_regions(7);
        assert!(
            r.hot_regions.contains(&r.hot_cabinet),
            "hotspot cabinet {} must be flagged; flagged: {:?}",
            r.hot_cabinet,
            r.hot_regions
        );
        assert!(
            r.hot_regions.len() <= 3,
            "congestion is localized, not global: {:?}",
            r.hot_regions
        );
        let worst = r.map.worst().expect("active regions");
        assert_eq!(worst.region, r.hot_cabinet, "worst region is the hotspot's");
    }

    #[test]
    fn clock_ablation_shows_drift_damage() {
        let r = clock_sync_ablation(12, 7);
        assert_eq!(r.synced.f1, 1.0, "synchronized association is perfect");
        assert!(r.drifting.f1 < 0.9, "drift hurts: {:?}", r.drifting);
        assert!(r.corrected.f1 > r.drifting.f1, "correction recovers quality");
    }
}
