#![warn(missing_docs)]

//! `hpcmon` — an end-to-end monitoring framework for large-scale HPC
//! systems.
//!
//! This is the facade crate: it wires the cluster simulator
//! ([`hpcmon_sim`]), the collectors and probes ([`hpcmon_collect`]), the
//! pub/sub transport ([`hpcmon_transport`]), the tiered store
//! ([`hpcmon_store`]), the analyses ([`hpcmon_analysis`]), and the
//! response engine ([`hpcmon_response`]) into one [`MonitoringSystem`]
//! that advances a simulated machine and its monitoring stack together,
//! one synchronized tick at a time.
//!
//! ```
//! use hpcmon::{MonitoringSystem, SimConfig};
//! use hpcmon_sim::{AppProfile, JobSpec};
//! use hpcmon_metrics::Ts;
//!
//! let mut mon = MonitoringSystem::builder(SimConfig::small()).build();
//! mon.submit_job(JobSpec::new(
//!     AppProfile::compute_heavy("stencil"), "alice", 16, 10 * 60_000, Ts::ZERO,
//! ));
//! mon.run_ticks(15);
//! assert!(mon.store().stats().series > 0);
//! ```

pub mod config;
pub mod parallel;
pub mod pipeline;
pub mod scenarios;
pub mod system;

pub use hpcmon_analysis as analysis;
pub use hpcmon_collect as collect;
pub use hpcmon_durability as durability;
pub use hpcmon_gateway as gateway;
pub use hpcmon_health as health;
pub use hpcmon_metrics as metrics;
pub use hpcmon_response as response;
pub use hpcmon_sim as sim;
pub use hpcmon_store as store;
pub use hpcmon_telemetry as telemetry;
pub use hpcmon_trace as trace;
pub use hpcmon_transport as transport;
pub use hpcmon_viz as viz;

pub use config::MonitorConfig;
pub use hpcmon_sim::SimConfig;
pub use system::{
    CoreSnapshot, DurableSample, DurableTickRecord, GatewayOp, MonitorBuilder, MonitoringSystem,
    RecoveryOutcome, RunSummary, TickInputs, TickStateHash,
};
