//! The assembled monitoring system.
//!
//! One [`MonitoringSystem::tick`] advances the simulated machine by one
//! interval and runs the complete monitoring pipeline over it, in the
//! order a real deployment would: collect → transport → store → analyze →
//! respond.  Everything the paper's Table I asks for is exercised on every
//! tick: synchronized collection, native-format transport with drop
//! accounting, tiered storage, streaming analysis, and configurable
//! response with actions fed back to the scheduler.

use crate::parallel::WorkerPool;
use crate::pipeline::{finding_to_signal, DetectorAttachment};
use bytes::Bytes;
use hpcmon_analysis::{Correlator, Deadman, ImbalanceDetector, NoveltyDetector, Rule};
use hpcmon_chaos::{
    BreakerState, ChaosEngine, ChaosPlan, CollectorFault, CollectorSupervisor, IngestBreaker,
    InjectedCounts,
};
use hpcmon_collect::collectors::standard_collectors;
use hpcmon_collect::{
    BenchmarkSuite, Collector, FsProbe, LogHarvester, NetworkProbe, SelfCollector, StdMetrics,
};
use hpcmon_durability::{DurabilityConfig, DurabilityCounts, DurabilityPlane, StorageMedium};
use hpcmon_gateway::{Gateway, GatewayConfig};
use hpcmon_health::{
    AlertEvent, FeedValue, Grade, HealthConfig, HealthEngine, HealthReport,
    Subsystem as HealthSubsystem,
};
use hpcmon_metrics::{
    ColumnFrame, CompId, CompKind, Frame, FrameArena, FrameCoverage, JobId, LogRecord,
    MetricRegistry, Severity, Ts,
};
use hpcmon_response::{
    AccessPolicy, Action, ActionTaken, ResponseEngine, ResponseRule, Signal, SignalKind,
};
use hpcmon_sim::{FaultKind, JobSpec, SimConfig, SimEngine};
use hpcmon_store::{Archive, IngestRoute, LogStore, QueryEngine, RetentionPolicy, TimeSeriesStore};
use hpcmon_telemetry::{
    BusyTimer, Counter, Gauge, Histogram, StageTimer, Telemetry, TelemetryReport,
};
use hpcmon_trace::{DropReason, Sampler, Stage, TraceContext, TraceStore, Tracer};
use hpcmon_transport::{
    topics, BackpressurePolicy, Broker, Envelope, Payload, Subscription, TopicFilter, TopicStats,
};
use hpcmon_viz::{ClassStatus, StatusBoard};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

pub mod durability;
pub mod state;

pub use durability::{DurableSample, DurableTickRecord, RecoveryOutcome};
pub use state::{CoreSnapshot, GatewayOp, TickInputs, TickStateHash};

/// Builder for a [`MonitoringSystem`].
pub struct MonitorBuilder {
    config: SimConfig,
    registry: MetricRegistry,
    metrics: StdMetrics,
    bench_every_ticks: Option<u64>,
    probes: bool,
    probe_pairs: u32,
    response_rules: Vec<ResponseRule>,
    correlator_rules: Vec<Rule>,
    detectors: Vec<DetectorAttachment>,
    novelty_training_ticks: u64,
    imbalance: ImbalanceDetector,
    retention: Option<(RetentionPolicy, u64)>,
    extra_collectors: Vec<Box<dyn Collector>>,
    power_cap_w: Option<f64>,
    self_telemetry: bool,
    gateway: Option<GatewayConfig>,
    tracing: Sampler,
    workers: usize,
    supervision: bool,
    chaos: Option<(u64, ChaosPlan)>,
    clock_epoch_offset_ticks: u64,
    health: Option<HealthConfig>,
    durability: Option<(Arc<dyn StorageMedium>, DurabilityConfig)>,
}

impl MonitorBuilder {
    /// Start from a machine configuration.
    pub fn new(config: SimConfig) -> MonitorBuilder {
        let registry = MetricRegistry::new();
        let metrics = StdMetrics::register(&registry);
        MonitorBuilder {
            config,
            registry,
            metrics,
            bench_every_ticks: Some(10),
            probes: true,
            probe_pairs: 16,
            response_rules: ResponseEngine::production_rules(),
            correlator_rules: Correlator::production_rules(),
            detectors: Vec::new(),
            novelty_training_ticks: 30,
            imbalance: ImbalanceDetector::new(),
            retention: None,
            extra_collectors: Vec::new(),
            power_cap_w: None,
            self_telemetry: true,
            gateway: None,
            tracing: Sampler::one_in(64),
            workers: 0,
            supervision: false,
            chaos: None,
            clock_epoch_offset_ticks: 0,
            health: None,
            durability: None,
        }
    }

    /// Journal every tick to a write-ahead log on `medium` and checkpoint
    /// the full [`CoreSnapshot`] on the configured cadence (default off).
    /// After a crash, [`MonitoringSystem::recover_from_medium`] on a
    /// freshly built system restores the newest checkpoint and replays
    /// the WAL tail; with `SyncPolicy::EveryTick` no acknowledged tick is
    /// ever lost, with `SyncPolicy::GroupCommit(n)` loss is bounded by
    /// one commit window.  The plane is hash-neutral: a durable run's
    /// flight-recorder hash chain is identical to a non-durable twin's.
    pub fn durability(
        mut self,
        medium: Arc<dyn StorageMedium>,
        cfg: DurabilityConfig,
    ) -> MonitorBuilder {
        self.durability = Some((medium, cfg));
        self
    }

    /// Evaluate a deterministic SLO/alerting plane as a tick stage
    /// (default off).  Every tick the pipeline feeds the engine
    /// good/bad evidence from *deterministic* primary sources (coverage
    /// bitmap, stall backlog, breaker and spill state, store/broker op
    /// counts, chaos injection totals — never wall-clock telemetry), so
    /// alert timelines are keyed by tick and bit-identical at any worker
    /// count.  Transitions publish [`AlertEvent`]s on the broker topic
    /// `health/alerts` and surface as `hpcmon.self.health.*` series
    /// through the self feed.  Off, the whole plane costs one branch.
    pub fn health(mut self, cfg: HealthConfig) -> MonitorBuilder {
        self.health = Some(cfg);
        self
    }

    /// Skew this system's clock: the simulated epoch starts `ticks` ticks
    /// ahead of zero, so every emitted sample carries site-local timestamps
    /// offset by `ticks · tick_ms`.  Models the per-site clock skew a
    /// federation merge layer must align (default 0 — no skew).
    pub fn clock_epoch_offset_ticks(mut self, ticks: u64) -> MonitorBuilder {
        self.clock_epoch_offset_ticks = ticks;
        self
    }

    /// Enable supervised self-healing collection (default off).  Each
    /// collector runs under a supervisor that catches panics and budget
    /// overruns, quarantines the failing slot with exponential-backoff
    /// re-probes, and hands the gap to the deadman so it is *reported*,
    /// never silent; store ingest runs behind a circuit breaker with a
    /// bounded spill queue; frames carry a [`FrameCoverage`] bitmap so
    /// analysis skips (rather than zero-fills) missing segments.  With
    /// supervision off the pipeline is byte-identical to previous
    /// behavior — the `abl_chaos` ablation measures the overhead.
    pub fn supervision(mut self, enabled: bool) -> MonitorBuilder {
        self.supervision = enabled;
        self
    }

    /// Inject a deterministic chaos plan into the *monitoring plane*
    /// itself (implies [`MonitorBuilder::supervision`]).  `seed` keys the
    /// per-envelope corruption draws; the plan's tick numbers refer to
    /// [`MonitoringSystem::tick`] calls (the first tick is 1).  The same
    /// seed and plan reproduce the same faults bit-for-bit at any worker
    /// count.
    pub fn chaos(mut self, seed: u64, plan: ChaosPlan) -> MonitorBuilder {
        self.chaos = Some((seed, plan));
        self.supervision = true;
        self
    }

    /// Fan the hot tick stages (collection, detector evaluation, store
    /// ingest) across `n` persistent worker threads.  `0` (the default)
    /// keeps the pipeline fully serial.  Output is deterministic either
    /// way: collectors fill private frames merged in fixed collector
    /// order, detector signals concatenate in attachment order, and store
    /// shards never share a series — so reports, signals, and stored data
    /// are identical for any worker count.
    pub fn workers(mut self, n: usize) -> MonitorBuilder {
        self.workers = n;
        self
    }

    /// Set the head-sampling policy for pipeline tracing (default 1-in-64
    /// frames; [`Sampler::off`] disables tracing entirely).  Sampled
    /// frames record a span per pipeline stage; drops and sheds record
    /// provenance spans for **every** frame regardless of sampling.
    pub fn tracing(mut self, sampler: Sampler) -> MonitorBuilder {
        self.tracing = sampler;
        self
    }

    /// Serve queries through an [`hpcmon_gateway::Gateway`] built over the
    /// system's store and broker (default off).  Its instruments register
    /// under `gateway.*`, so with self-telemetry enabled gateway activity
    /// appears as `hpcmon.self.gateway.*` series.
    pub fn gateway(mut self, config: GatewayConfig) -> MonitorBuilder {
        self.gateway = Some(config);
        self
    }

    /// Enable or disable the self-telemetry layer (default on).  When off,
    /// the pipeline's instruments become inert no-ops and no `SelfCollector`
    /// is installed — the baseline configuration for overhead benchmarks.
    pub fn self_telemetry(mut self, enabled: bool) -> MonitorBuilder {
        self.self_telemetry = enabled;
        self
    }

    /// Enforce a machine-level power cap: when total draw exceeds the cap
    /// the controller steps the p-state down (and back up when there is
    /// headroom) — the power-aware-operation vision from §III-C of the
    /// paper, closed-loop over the monitoring data itself.
    pub fn power_cap_w(mut self, cap_w: f64) -> MonitorBuilder {
        assert!(cap_w > 0.0);
        self.power_cap_w = Some(cap_w);
        self
    }

    /// Install a site-specific collector alongside the standard set —
    /// the Table I extensibility requirement ("extensibility and
    /// modularity are fundamental") as an API.  Register custom metrics
    /// against [`MonitorBuilder::registry`] so ids resolve in the built
    /// system.
    pub fn install_collector(mut self, collector: Box<dyn Collector>) -> MonitorBuilder {
        self.extra_collectors.push(collector);
        self
    }

    /// The metric registry the built system will use; custom collectors
    /// register their metrics here before `build()`.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// The resolved standard metric ids (for detector attachments).
    pub fn metrics(&self) -> StdMetrics {
        self.metrics
    }

    /// Enforce a retention policy every `every_ticks` ticks.
    pub fn retention(mut self, policy: RetentionPolicy, every_ticks: u64) -> MonitorBuilder {
        assert!(every_ticks > 0);
        self.retention = Some((policy, every_ticks));
        self
    }

    /// Run the benchmark suite every `n` ticks (`None` disables).
    pub fn bench_suite_every(mut self, n: Option<u64>) -> MonitorBuilder {
        self.bench_every_ticks = n;
        self
    }

    /// Enable or disable the active probes.
    pub fn with_probes(mut self, enabled: bool) -> MonitorBuilder {
        self.probes = enabled;
        self
    }

    /// Replace the response rule set.
    pub fn response_rules(mut self, rules: Vec<ResponseRule>) -> MonitorBuilder {
        self.response_rules = rules;
        self
    }

    /// Replace the log correlation rule set.
    pub fn correlator_rules(mut self, rules: Vec<Rule>) -> MonitorBuilder {
        self.correlator_rules = rules;
        self
    }

    /// Attach a streaming detector to a series.
    pub fn attach_detector(mut self, attachment: DetectorAttachment) -> MonitorBuilder {
        self.detectors.push(attachment);
        self
    }

    /// Set the imbalance detector parameters.
    pub fn imbalance_detector(mut self, det: ImbalanceDetector) -> MonitorBuilder {
        self.imbalance = det;
        self
    }

    /// Ticks of log-novelty training before flagging begins.
    pub fn novelty_training_ticks(mut self, ticks: u64) -> MonitorBuilder {
        self.novelty_training_ticks = ticks;
        self
    }

    /// Assemble the system.
    pub fn build(self) -> MonitoringSystem {
        let mut engine = SimEngine::new(self.config.clone());
        if self.clock_epoch_offset_ticks > 0 {
            engine.set_epoch(Ts(self.clock_epoch_offset_ticks * self.config.tick_ms));
        }
        let registry = self.registry;
        let metrics = self.metrics;
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let telemetry =
            Arc::new(if self.self_telemetry { Telemetry::new() } else { Telemetry::disabled() });
        // The store consumes frames losslessly off the broker.
        let store_sub =
            broker.subscribe(TopicFilter::new("metrics/#"), 4_096, BackpressurePolicy::Block);
        let mut collectors: Vec<Box<dyn Collector>> = standard_collectors(metrics);
        collectors.extend(self.extra_collectors);
        if self.probes {
            collectors.push(Box::new(FsProbe::new(metrics, self.config.seed ^ 0xF5)));
            collectors.push(Box::new(NetworkProbe::spread(
                metrics,
                engine.num_nodes(),
                self.probe_pairs,
            )));
        }
        if self.self_telemetry {
            // Last, so it observes the instruments every earlier collector
            // and the previous tick's pipeline stages registered.
            collectors.push(Box::new(SelfCollector::new(
                telemetry.clone(),
                broker.clone(),
                store.clone(),
                registry.clone(),
            )));
        }
        let instruments = PipelineInstruments::new(&telemetry, &collectors, &self.detectors);
        instruments.parallel_workers.set(self.workers as f64);
        let pool = (self.workers > 0).then(|| WorkerPool::new(self.workers));
        let tracer = Arc::new(Tracer::new(self.tracing));
        if tracer.is_enabled() {
            broker.set_tracer(tracer.clone());
        }
        let gateway = self
            .gateway
            .map(|cfg| Arc::new(Gateway::new(store.clone(), broker.clone(), &telemetry, cfg)));
        if let (Some(gw), true) = (&gateway, tracer.is_enabled()) {
            gw.set_tracer(tracer.clone());
        }
        let supervisor = CollectorSupervisor::new(collectors.len());
        let ever_contributed = vec![false; collectors.len()];
        MonitoringSystem {
            supervision: self.supervision,
            durability: self.durability.map(|(m, cfg)| DurabilityPlane::new(m, cfg)),
            pending_inputs: TickInputs::default(),
            health: self.health.map(HealthEngine::new),
            health_broker_baseline: (0, 0),
            chaos: self.chaos.map(|(seed, plan)| ChaosEngine::new(seed, plan)),
            supervisor,
            breaker: IngestBreaker::new(256, 16),
            stall_buffer: Vec::new(),
            ever_contributed,
            last_coverage: None,
            last_frame: None,
            arena: FrameArena::new(),
            route: IngestRoute::new(),
            hashing: false,
            last_state_hash: None,
            replay_hash_gauge: None,
            self_metric_flags: Vec::new(),
            bench_suite: BenchmarkSuite::new(metrics, self.config.seed ^ 0xBE, 16),
            bench_every_ticks: self.bench_every_ticks,
            harvester: LogHarvester::new(Some(broker.clone())),
            correlator: Correlator::new(self.correlator_rules),
            novelty: NoveltyDetector::new(),
            novelty_training_ticks: self.novelty_training_ticks,
            response: ResponseEngine::new(self.response_rules),
            imbalance: self.imbalance,
            detectors: self.detectors,
            store,
            log_store: Arc::new(LogStore::new()),
            archive: Archive::new(),
            signals: Vec::new(),
            store_sub,
            deadman: Deadman::new(self.config.tick_ms),
            retention: self.retention,
            power_cap_w: self.power_cap_w,
            collectors,
            engine,
            registry,
            metrics,
            broker,
            telemetry,
            instruments,
            gateway,
            tracer,
            trace_store: TraceStore::new(256),
            pool,
        }
    }
}

/// Advance a telemetry counter to an externally tracked lifetime total.
fn sync_counter(c: &Counter, total: u64) {
    c.add(total.saturating_sub(c.get()));
}

/// Instruments for one collector: collect latency and samples contributed.
struct CollectorInstruments {
    latency: Arc<Histogram>,
    samples: Arc<Counter>,
}

/// Instruments for one attached detector.
struct DetectorInstruments {
    evals: Arc<Counter>,
    latency: Arc<Histogram>,
}

/// Every telemetry handle the tick loop touches, resolved once at build so
/// the hot path never formats an instrument name or takes a registry lock.
/// The `collectors`/`detectors` vectors run parallel to the system's own.
struct PipelineInstruments {
    tick_count: Arc<Counter>,
    stage_tick: Arc<Histogram>,
    stage_collect: Arc<Histogram>,
    stage_transport: Arc<Histogram>,
    stage_store: Arc<Histogram>,
    stage_analysis: Arc<Histogram>,
    stage_response: Arc<Histogram>,
    correlator_records: Arc<Counter>,
    correlator_findings: Arc<Counter>,
    deadman_feeds: Arc<Gauge>,
    response_handled: Arc<Counter>,
    response_suppressed: Arc<Counter>,
    // Tracing export: counters under `trace.*`, republished by the self
    // feed as `hpcmon.self.trace.*` series and queryable via the gateway.
    trace_sampled: Arc<Counter>,
    trace_spans: Arc<Counter>,
    trace_completed: Arc<Counter>,
    trace_completed_with_drops: Arc<Counter>,
    trace_ring_rejected: Arc<Counter>,
    // Parallel pipeline: worker count, jobs dispatched, and per-stage busy
    // time.  Busy counters are fed by per-job `BusyTimer`s — each job's
    // duration is added exactly once by the worker that ran it, while the
    // wall-clock `stage_*` histograms above are recorded exactly once by
    // the coordinating thread, so stage time is never double-counted.
    // The same busy counters run in the serial path (busy ≈ wall there),
    // keeping the self-telemetry series set identical across worker counts.
    parallel_workers: Arc<Gauge>,
    parallel_jobs: Arc<Counter>,
    busy_collect: Arc<Counter>,
    busy_analysis: Arc<Counter>,
    busy_store: Arc<Counter>,
    // Self-healing export: fault-injection counts by kind, supervisor and
    // breaker state, and per-frame collector coverage.  Registered
    // unconditionally so the self-feed series set does not depend on
    // whether chaos is configured.
    chaos_collector_panic: Arc<Counter>,
    chaos_collector_hang: Arc<Counter>,
    chaos_collector_slow: Arc<Counter>,
    chaos_topic_stall: Arc<Counter>,
    chaos_envelope_corrupt: Arc<Counter>,
    chaos_store_write_fail: Arc<Counter>,
    chaos_gateway_worker_death: Arc<Counter>,
    chaos_disk_write_fail: Arc<Counter>,
    chaos_disk_torn_write: Arc<Counter>,
    chaos_disk_corrupt_byte: Arc<Counter>,
    chaos_disk_full: Arc<Counter>,
    supervisor_quarantined: Arc<Gauge>,
    frame_coverage_pct: Arc<Gauge>,
    store_breaker_state: Arc<Gauge>,
    spill_depth: Arc<Gauge>,
    spill_dropped: Arc<Counter>,
    // Health plane export: alert lifecycle counts and per-subsystem
    // grades, republished by the self feed as `hpcmon.self.health.*`.
    // Registered unconditionally (chaos-counter precedent) so the
    // self-feed series set does not depend on whether health is on.
    health_transitions: Arc<Counter>,
    health_alerts_firing: Arc<Gauge>,
    health_alerts_pending: Arc<Gauge>,
    health_grades: Vec<Arc<Gauge>>,
    // Durability plane export: WAL append/sync/checkpoint/scrub totals
    // and the live backlog depth, republished by the self feed as
    // `hpcmon.self.durability.*`.  Registered unconditionally
    // (chaos-counter precedent) so the self-feed series set does not
    // depend on whether a plane is attached.
    wal_records: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_append_failures: Arc<Counter>,
    wal_syncs: Arc<Counter>,
    wal_backlog: Arc<Gauge>,
    durability_checkpoints: Arc<Counter>,
    durability_checkpoint_failures: Arc<Counter>,
    durability_corrupt_events: Arc<Counter>,
    durability_torn_tail_bytes: Arc<Counter>,
    durability_scrub_files: Arc<Counter>,
    durability_scrub_failures: Arc<Counter>,
    collectors: Vec<CollectorInstruments>,
    detectors: Vec<DetectorInstruments>,
}

impl PipelineInstruments {
    fn new(
        t: &Telemetry,
        collectors: &[Box<dyn Collector>],
        detectors: &[DetectorAttachment],
    ) -> PipelineInstruments {
        PipelineInstruments {
            tick_count: t.counter("tick.count"),
            stage_tick: t.histogram("stage.tick"),
            stage_collect: t.histogram("stage.collect"),
            stage_transport: t.histogram("stage.transport"),
            stage_store: t.histogram("stage.store"),
            stage_analysis: t.histogram("stage.analysis"),
            stage_response: t.histogram("stage.response"),
            correlator_records: t.counter("analysis.correlator.records"),
            correlator_findings: t.counter("analysis.correlator.findings"),
            deadman_feeds: t.gauge("analysis.deadman.feeds"),
            response_handled: t.counter("response.signals_handled"),
            response_suppressed: t.counter("response.suppressed_by_cooldown"),
            trace_sampled: t.counter("trace.sampled"),
            trace_spans: t.counter("trace.spans"),
            trace_completed: t.counter("trace.completed"),
            trace_completed_with_drops: t.counter("trace.completed_with_drops"),
            trace_ring_rejected: t.counter("trace.ring_rejected"),
            parallel_workers: t.gauge("parallel.workers"),
            parallel_jobs: t.counter("parallel.jobs"),
            busy_collect: t.counter("parallel.busy_ns.collect"),
            busy_analysis: t.counter("parallel.busy_ns.analysis"),
            busy_store: t.counter("parallel.busy_ns.store"),
            chaos_collector_panic: t.counter("chaos.injected.collector_panic"),
            chaos_collector_hang: t.counter("chaos.injected.collector_hang"),
            chaos_collector_slow: t.counter("chaos.injected.collector_slow"),
            chaos_topic_stall: t.counter("chaos.injected.topic_stall"),
            chaos_envelope_corrupt: t.counter("chaos.injected.envelope_corrupt"),
            chaos_store_write_fail: t.counter("chaos.injected.store_write_fail"),
            chaos_gateway_worker_death: t.counter("chaos.injected.gateway_worker_death"),
            chaos_disk_write_fail: t.counter("chaos.injected.disk_write_fail"),
            chaos_disk_torn_write: t.counter("chaos.injected.disk_torn_write"),
            chaos_disk_corrupt_byte: t.counter("chaos.injected.disk_corrupt_byte"),
            chaos_disk_full: t.counter("chaos.injected.disk_full"),
            supervisor_quarantined: t.gauge("supervisor.quarantined"),
            frame_coverage_pct: t.gauge("frame.coverage_pct"),
            store_breaker_state: t.gauge("store.breaker_state"),
            spill_depth: t.gauge("spill.depth"),
            spill_dropped: t.counter("spill.dropped"),
            health_transitions: t.counter("health.transitions"),
            health_alerts_firing: t.gauge("health.alerts_firing"),
            health_alerts_pending: t.gauge("health.alerts_pending"),
            wal_records: t.counter("durability.wal.records"),
            wal_bytes: t.counter("durability.wal.bytes"),
            wal_append_failures: t.counter("durability.wal.append_failures"),
            wal_syncs: t.counter("durability.wal.syncs"),
            wal_backlog: t.gauge("durability.wal.backlog"),
            durability_checkpoints: t.counter("durability.checkpoints"),
            durability_checkpoint_failures: t.counter("durability.checkpoint_failures"),
            durability_corrupt_events: t.counter("durability.corrupt_events"),
            durability_torn_tail_bytes: t.counter("durability.torn_tail_bytes"),
            durability_scrub_files: t.counter("durability.scrub.files"),
            durability_scrub_failures: t.counter("durability.scrub.failures"),
            health_grades: HealthSubsystem::ALL
                .iter()
                .map(|s| t.gauge(&format!("health.grade.{}", s.label())))
                .collect(),
            collectors: collectors
                .iter()
                .map(|c| CollectorInstruments {
                    latency: t.histogram(&format!("collect.latency.{}", c.name())),
                    samples: t.counter(&format!("collect.samples.{}", c.name())),
                })
                .collect(),
            detectors: detectors
                .iter()
                .map(|att| {
                    let label = att.label.replace(' ', "_");
                    DetectorInstruments {
                        evals: t.counter(&format!("analysis.detector.{label}.evals")),
                        latency: t.histogram(&format!("analysis.detector.{label}.latency")),
                    }
                })
                .collect(),
        }
    }

    /// Advance the per-kind injection counters to the chaos engine's
    /// lifetime totals.
    fn sync_chaos(&self, counts: InjectedCounts) {
        sync_counter(&self.chaos_collector_panic, counts.collector_panic);
        sync_counter(&self.chaos_collector_hang, counts.collector_hang);
        sync_counter(&self.chaos_collector_slow, counts.collector_slow);
        sync_counter(&self.chaos_topic_stall, counts.topic_stall);
        sync_counter(&self.chaos_envelope_corrupt, counts.envelope_corrupt);
        sync_counter(&self.chaos_store_write_fail, counts.store_write_fail);
        sync_counter(&self.chaos_gateway_worker_death, counts.gateway_worker_death);
    }

    /// Advance the disk-fault injection counters to the chaos engine's
    /// lifetime totals.
    fn sync_disk_chaos(&self, counts: hpcmon_chaos::DiskInjectedCounts) {
        sync_counter(&self.chaos_disk_write_fail, counts.write_fail);
        sync_counter(&self.chaos_disk_torn_write, counts.torn_write);
        sync_counter(&self.chaos_disk_corrupt_byte, counts.corrupt_byte);
        sync_counter(&self.chaos_disk_full, counts.full);
    }

    /// Advance the durability export to the plane's lifetime totals.
    fn sync_durability(&self, c: DurabilityCounts, backlog: usize) {
        sync_counter(&self.wal_records, c.records_appended);
        sync_counter(&self.wal_bytes, c.bytes_appended);
        sync_counter(&self.wal_append_failures, c.append_failures);
        sync_counter(&self.wal_syncs, c.syncs);
        self.wal_backlog.set(backlog as f64);
        sync_counter(&self.durability_checkpoints, c.checkpoints);
        sync_counter(&self.durability_checkpoint_failures, c.checkpoint_failures);
        sync_counter(&self.durability_corrupt_events, c.corrupt_events);
        sync_counter(&self.durability_torn_tail_bytes, c.torn_tail_bytes);
        sync_counter(&self.durability_scrub_files, c.scrub_files);
        sync_counter(&self.durability_scrub_failures, c.scrub_failures);
    }
}

/// Per-tick outcome.  `PartialEq`/`Serialize` so determinism checks can
/// compare whole reports across worker counts (and diff them as JSON).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TickReport {
    /// Samples collected this tick.
    pub samples: usize,
    /// Log records harvested this tick.
    pub logs: usize,
    /// Signals emitted this tick.
    pub signals: Vec<Signal>,
    /// Response actions taken this tick.
    pub actions: Vec<ActionTaken>,
    /// Health alert transitions this tick (empty when health is off).
    pub alerts: Vec<AlertEvent>,
}

/// Whole-run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Ticks executed.
    pub ticks: u64,
    /// Samples ingested into the store.
    pub samples: u64,
    /// Log records stored.
    pub logs: u64,
    /// Signals emitted.
    pub signals: u64,
    /// Actions taken.
    pub actions: u64,
}

/// The machine plus its full monitoring stack.
pub struct MonitoringSystem {
    engine: SimEngine,
    registry: MetricRegistry,
    metrics: StdMetrics,
    broker: Arc<Broker>,
    store: Arc<TimeSeriesStore>,
    log_store: Arc<LogStore>,
    archive: Archive,
    collectors: Vec<Box<dyn Collector>>,
    bench_suite: BenchmarkSuite,
    bench_every_ticks: Option<u64>,
    harvester: LogHarvester,
    correlator: Correlator,
    novelty: NoveltyDetector,
    novelty_training_ticks: u64,
    response: ResponseEngine,
    imbalance: ImbalanceDetector,
    detectors: Vec<DetectorAttachment>,
    signals: Vec<Signal>,
    store_sub: Subscription,
    deadman: Deadman,
    retention: Option<(RetentionPolicy, u64)>,
    power_cap_w: Option<f64>,
    telemetry: Arc<Telemetry>,
    instruments: PipelineInstruments,
    gateway: Option<Arc<Gateway>>,
    tracer: Arc<Tracer>,
    trace_store: TraceStore,
    // `Some` fans the hot stages across persistent workers; `None` is the
    // serial path.  Both produce byte-identical output (see DESIGN.md §9).
    pool: Option<WorkerPool>,
    // Self-healing machinery (DESIGN.md §10).  With `supervision` false
    // none of it runs and the pipeline is byte-identical to the
    // unsupervised build.
    supervision: bool,
    // SLO/alerting plane (DESIGN.md §13).  `None` (the default) costs
    // one branch per tick and changes nothing observable.
    health: Option<HealthEngine>,
    // Broker lifetime totals (delivered, dropped+decode_errors) as of the
    // previous health evaluation.  Broker counters are not part of the
    // snapshot, so the health plane feeds per-tick deltas against this
    // baseline and `restore_snapshot` re-seeds it from the live broker.
    health_broker_baseline: (u64, u64),
    // Crash-durability plane (DESIGN.md §15).  `None` (the default) costs
    // one branch per tick; attached, every tick's inputs + frame append
    // to a WAL on the plane's storage medium and checkpoints rotate it.
    // The plane journals hashed state but is never itself hashed, so a
    // durable run's hash chain matches its non-durable twin.
    durability: Option<DurabilityPlane>,
    // External inputs received since the last tick, captured (only while
    // a durability plane is attached) so the tick-end WAL record can
    // replay them after a crash.
    pending_inputs: TickInputs,
    chaos: Option<ChaosEngine>,
    supervisor: CollectorSupervisor,
    breaker: IngestBreaker<(Payload, Option<TraceContext>)>,
    stall_buffer: Vec<(String, Payload, Option<TraceContext>)>,
    ever_contributed: Vec<bool>,
    last_coverage: Option<FrameCoverage>,
    // Flight-recorder hooks (system::state, DESIGN.md §11).  With
    // `hashing` false none of it runs and the pipeline is bit-identical
    // to a build without the recorder.
    // The most recent frame published on the broker, for federation
    // rollups: a `Federation` reads it after each lockstep tick to build
    // the site's O(1)-series rollup without re-querying the store.
    last_frame: Option<Arc<ColumnFrame>>,
    // Ping-pong frame buffers (DESIGN.md §14): each tick takes the slot
    // the consumers of two ticks ago have released and refills it, so the
    // steady-state hot path allocates nothing.
    arena: FrameArena,
    // Cached columnar ingest route — key column -> shard/slot — valid
    // while the frame's key set and the store's slab layout are stable,
    // which in steady state is every tick.
    route: IngestRoute,
    hashing: bool,
    last_state_hash: Option<TickStateHash>,
    replay_hash_gauge: Option<Arc<Gauge>>,
    // Positional cache: metric id -> "is an hpcmon.self.* series", so the
    // frame hash can exclude wall-clock self-telemetry without a registry
    // lookup per sample.
    self_metric_flags: Vec<bool>,
}

impl MonitoringSystem {
    /// Start building a system.
    pub fn builder(config: SimConfig) -> MonitorBuilder {
        MonitorBuilder::new(config)
    }

    // ----- delegation to the machine -----

    /// Submit a job.
    pub fn submit_job(&mut self, spec: JobSpec) -> JobId {
        if self.durability.is_some() {
            self.pending_inputs.jobs.push(spec.clone());
        }
        self.engine.submit_job(spec)
    }

    /// Schedule a fault injection.
    pub fn schedule_fault(&mut self, at: Ts, kind: FaultKind) {
        if self.durability.is_some() {
            self.pending_inputs.faults.push((at, kind));
        }
        self.engine.schedule_fault(at, kind);
    }

    // ----- the pipeline -----

    /// Advance machine + monitoring by one tick.
    pub fn tick(&mut self) -> TickReport {
        // Stamp this tick's frame with a trace context at the very head of
        // the pipeline.  The sampling decision hashes the tick number, so
        // identical runs trace identical frames (determinism preserved).
        let tracer = Arc::clone(&self.tracer);
        let trace_ctx = tracer.context_for(self.engine.tick_count().wrapping_add(1));
        // Exemplar tag for stage histograms: sampled frames stamp their
        // trace id into the latency bucket they land in, so a p99 spike
        // resolves to a concrete trace.
        let tag = trace_ctx.map_or(0, |c| if c.sampled { c.trace_id.0 } else { 0 });
        let _tick_timer = StageTimer::new(self.instruments.stage_tick.clone()).with_tag(tag);
        let root_span = trace_ctx.as_ref().map(|c| tracer.span(c, Stage::Tick));
        let stage_ctx = root_span.as_ref().map(|g| g.context());
        self.instruments.tick_count.inc();
        self.engine.step();
        let now = self.engine.now();
        let mut report = TickReport::default();

        // 0. Chaos: advance the fault schedule and project the active
        //    faults onto the components they target.  Shard write-fault
        //    flags mirror the engine's windows exactly (set and cleared
        //    every tick); gateway worker deaths are delivered before the
        //    gateway serves anything this tick.
        if let Some(chaos) = &mut self.chaos {
            chaos.begin_tick(self.engine.tick_count());
            for shard in 0..self.store.num_shards() {
                self.store.set_shard_write_fault(shard, chaos.shard_failing(shard));
            }
            let deaths = chaos.take_worker_deaths();
            if let Some(gw) = &self.gateway {
                for _ in 0..deaths {
                    gw.inject_worker_death();
                }
            }
            // Disk faults project onto the durability medium.  The
            // one-shot queues are drained UNCONDITIONALLY (like worker
            // deaths above): the chaos digest covers the pending queues,
            // so a run without a plane attached must consume them at the
            // same tick as its durable twin to stay hash-identical.
            let write_failing = chaos.disk_write_failing();
            let full = chaos.disk_full();
            let torn = chaos.take_torn_writes();
            let corrupt = chaos.take_corrupt_bytes();
            if let Some(plane) = &self.durability {
                let medium = plane.medium();
                medium.set_write_fail(write_failing);
                medium.set_full(full);
                for seed in torn {
                    medium.arm_torn_write(seed);
                }
                for seed in corrupt {
                    medium.corrupt_byte(seed);
                }
            }
        }

        // 1. Synchronized collection into one frame, with deadman beats
        //    per contributing collector (silence must not look like
        //    health).  Collectors that are legitimately empty for this
        //    machine config never arm an expectation.
        let collect_timer = StageTimer::new(self.instruments.stage_collect.clone()).with_tag(tag);
        let collect_span = stage_ctx.as_ref().map(|c| tracer.span(c, Stage::Collect));
        // Reuse the column buffers the consumers of two ticks ago released
        // (ping-pong): in steady state this is a clear-and-refill, not an
        // allocation.
        let mut frame = self.arena.take_current(now);
        let mut contributed = vec![0usize; self.collectors.len()];
        if self.supervision {
            self.collect_supervised(now, &mut frame, &mut contributed);
        } else {
            match &self.pool {
                Some(pool) => {
                    // Each collector fills a private frame; merging the parts
                    // in fixed collector order afterwards makes the merged
                    // frame byte-identical to the serial path.  Collectors
                    // named "self" are barriers — they republish instruments
                    // the other collectors update this tick — so they run
                    // inline after the fan-out, at their own position (the
                    // builder installs the SelfCollector last, matching).
                    let engine = &self.engine;
                    let insts = &self.instruments.collectors;
                    let jobs = &self.instruments.parallel_jobs;
                    let busy = &self.instruments.busy_collect;
                    let mut parts: Vec<ColumnFrame> =
                        (0..self.collectors.len()).map(|_| ColumnFrame::new(now)).collect();
                    pool.scope(|sc| {
                        for ((c, part), inst) in
                            self.collectors.iter_mut().zip(parts.iter_mut()).zip(insts)
                        {
                            if c.name() == "self" {
                                continue;
                            }
                            jobs.inc();
                            sc.spawn(move || {
                                let _busy = BusyTimer::new(busy.clone());
                                let started = Instant::now();
                                c.collect(engine, part);
                                inst.latency.record_ns(started.elapsed().as_nanos() as u64);
                                inst.samples.add(part.len() as u64);
                            });
                        }
                    });
                    for (i, part) in parts.iter_mut().enumerate() {
                        if self.collectors[i].name() == "self" {
                            let before = frame.len();
                            let started = Instant::now();
                            self.collectors[i].collect(&self.engine, &mut frame);
                            contributed[i] = frame.len() - before;
                            let inst = &self.instruments.collectors[i];
                            inst.latency.record_ns(started.elapsed().as_nanos() as u64);
                            inst.samples.add(contributed[i] as u64);
                        } else {
                            contributed[i] = part.len();
                            frame.append(part);
                        }
                    }
                }
                None => {
                    for (i, (c, inst)) in
                        self.collectors.iter_mut().zip(&self.instruments.collectors).enumerate()
                    {
                        let before = frame.len();
                        let _busy = BusyTimer::new(self.instruments.busy_collect.clone());
                        let started = Instant::now();
                        c.collect(&self.engine, &mut frame);
                        contributed[i] = frame.len() - before;
                        inst.latency.record_ns(started.elapsed().as_nanos() as u64);
                        inst.samples.add(contributed[i] as u64);
                    }
                }
            }
        }
        // Deadman bookkeeping on the coordinator, in fixed collector order.
        // A collector registers the first time it ever contributes — on
        // whatever tick that happens — so a feed that comes alive late
        // still gets silence coverage from that point on.
        for (c, &n) in self.collectors.iter().zip(&contributed) {
            if n > 0 {
                self.deadman.register(c.name());
                self.deadman.beat(c.name(), now);
            }
        }
        // Coverage bitmap: a slot is expected once it has ever
        // contributed, and reported if it contributed this tick.  Analysis
        // stages use the bitmap to *skip* segments a quarantined collector
        // failed to deliver instead of treating absence as zero.
        if self.supervision {
            for (ever, &n) in self.ever_contributed.iter_mut().zip(&contributed) {
                *ever |= n > 0;
            }
            let mut cov = FrameCoverage::default();
            for (i, &ever) in self.ever_contributed.iter().enumerate() {
                if ever {
                    cov.expect(i);
                    if contributed[i] > 0 {
                        cov.report(i);
                    }
                }
            }
            frame.coverage = Some(cov);
            self.last_coverage = Some(cov);
            self.instruments.frame_coverage_pct.set(cov.pct());
            self.instruments.supervisor_quarantined.set(self.supervisor.quarantined_count() as f64);
        } else {
            self.instruments.frame_coverage_pct.set(100.0);
        }
        let mut bench_logs: Vec<LogRecord> = Vec::new();
        if let Some(every) = self.bench_every_ticks {
            if self.engine.tick_count().is_multiple_of(every) {
                self.bench_suite.run(&self.engine, &mut frame, &mut bench_logs);
            }
        }
        report.samples = frame.len();
        if let Some(mut span) = collect_span {
            span.set_note(format!("{} samples", report.samples));
            span.finish();
        }
        drop(collect_timer);

        // 2. Transport: publish, then the store consumer drains.  The
        //    envelope carries the frame's context re-parented under the
        //    transport span, so store-side spans (and any broker drop
        //    spans) chain into the frame's trace.
        let transport_timer =
            StageTimer::new(self.instruments.stage_transport.clone()).with_tag(tag);
        let transport_span = stage_ctx.as_ref().map(|c| tracer.span(c, Stage::Transport));
        let envelope_ctx = transport_span.as_ref().map(|g| g.context()).or(trace_ctx);
        let frame_topic = topics::metrics("frame");
        // Epoch swap, not copy: the arena wraps the finished columns in an
        // `Arc` and every consumer (broker, store, federation, this tick's
        // analysis below) shares the same buffers.
        let frame = self.arena.publish(frame);
        self.last_frame = Some(Arc::clone(&frame));
        let frame_payload = Payload::Columns(Arc::clone(&frame));
        // Frames that went out this tick, for the health plane's
        // transport-delivery feed: 0 while the topic is stalled, backlog+1
        // on the tick a stall clears.
        let mut frames_published_now = 0u64;
        if self.chaos.as_ref().is_some_and(|c| c.topic_stalled(&frame_topic)) {
            // Chaos: the broker path for this topic is wedged.  Frames
            // queue here in arrival order and go out the first tick the
            // stall clears — late, but never lost and never reordered.
            self.stall_buffer.push((frame_topic, frame_payload, envelope_ctx));
        } else {
            frames_published_now = self.stall_buffer.len() as u64 + 1;
            for (topic, payload, ctx) in self.stall_buffer.drain(..) {
                self.broker.publish_traced(&topic, payload, ctx);
            }
            self.broker.publish_traced(&frame_topic, frame_payload, envelope_ctx);
        }
        drop(transport_span);
        drop(transport_timer);
        let store_timer = StageTimer::new(self.instruments.stage_store.clone()).with_tag(tag);
        let tick_no = self.engine.tick_count();
        for env in self.store_sub.drain() {
            // Chaos: corrupt the wire form of seeded envelopes.  The
            // envelope is re-encoded, one seeded bit flipped, and the
            // result pushed through the broker's defensive decode; a
            // rejected envelope is counted (`transport.decode_errors`),
            // its loss recorded with provenance, and the loop moves on.
            // The decision hashes the broker sequence number, so the same
            // envelopes are hit at any worker count.  The flip position is
            // computed over a *canonical* wire form with the trace context
            // stripped: sampling decisions (including replay's forced
            // 1-in-1 tracing) change the traced wire bytes, and the
            // corruption outcome must not depend on observability
            // settings.
            if let Some(bits) = self.chaos.as_mut().and_then(|c| c.corruption(env.seq)) {
                let canon = Envelope {
                    topic: env.topic.clone(),
                    seq: env.seq,
                    trace: None,
                    payload: env.payload.clone(),
                };
                if let Ok(mut wire) = canon.encode() {
                    let bit = (bits % (wire.len() as u64 * 8)) as usize;
                    wire[bit / 8] ^= 1 << (bit % 8);
                    if self.broker.decode_envelope(&wire).is_err() {
                        if let Some(ctx) = env.trace.as_ref() {
                            tracer.record_drop(
                                ctx,
                                Stage::Transport,
                                DropReason::CorruptEnvelope,
                                "chaos: flipped bit rejected at decode",
                            );
                        }
                        continue;
                    }
                    // The flip landed where JSON tolerates it; the frame
                    // is delivered (real corruption is not always
                    // detectable at the transport layer).
                }
            }
            let span = env.trace.as_ref().map(|c| tracer.span(c, Stage::Store));
            if self.supervision {
                // Breaker-fronted ingest: a failing shard trips the
                // breaker and frames spill (bounded, drop-oldest with
                // provenance) until a half-open probe finds the store
                // healthy again, then the spill drains in arrival order.
                // Columnar frames ride the cached route; row frames (spill
                // replays of analysis results) take the legacy path.
                if env.payload.frame_len().is_some() {
                    let _busy = BusyTimer::new(self.instruments.busy_store.clone());
                    let store = Arc::clone(&self.store);
                    let route = &mut self.route;
                    let sub_report =
                        self.breaker.submit((env.payload.clone(), env.trace), tick_no, |(p, _)| {
                            match p {
                                Payload::Columns(c) => store.try_ingest_columns(c.as_ref(), route),
                                Payload::Frame(f) => store.try_insert_frame(f),
                                _ => Ok(()),
                            }
                        });
                    for (_, ctx) in sub_report.evicted {
                        if let Some(ctx) = ctx {
                            tracer.record_drop(
                                &ctx,
                                Stage::Store,
                                DropReason::SpillOverflow,
                                "spill queue full: oldest frame evicted",
                            );
                        }
                    }
                }
            } else if let Some(cf) = env.payload.as_columns() {
                match &self.pool {
                    Some(pool) => {
                        // Shard-routed concurrent ingest: the cached route
                        // already groups the key column by owning shard
                        // (frame order kept within each batch), and shards
                        // never share a series, so the stored contents are
                        // identical to serial insertion.
                        let store = &self.store;
                        let jobs = &self.instruments.parallel_jobs;
                        let busy = &self.instruments.busy_store;
                        let route = &mut self.route;
                        store.prepare_route(cf, route);
                        let shared: &IngestRoute = route;
                        pool.scope(|sc| {
                            for shard in 0..store.num_shards() {
                                if !shared.touches(shard) {
                                    continue;
                                }
                                jobs.inc();
                                let cf = cf.as_ref();
                                sc.spawn(move || {
                                    let _busy = BusyTimer::new(busy.clone());
                                    store.ingest_route_shard(shard, cf, shared);
                                });
                            }
                        });
                        store.finish_route(route);
                    }
                    None => {
                        let _busy = BusyTimer::new(self.instruments.busy_store.clone());
                        self.store.ingest_columns(cf, &mut self.route);
                    }
                }
            } else if let Some(f) = env.payload.as_frame() {
                // Legacy row frames (nothing in the standard pipeline
                // publishes these anymore, but gateway consumers may).
                let _busy = BusyTimer::new(self.instruments.busy_store.clone());
                self.store.insert_frame(f);
            }
            drop(span);
        }
        drop(store_timer);
        let analysis_timer = StageTimer::new(self.instruments.stage_analysis.clone()).with_tag(tag);
        let analysis_span = stage_ctx.as_ref().map(|c| tracer.span(c, Stage::Analysis));

        // 3. Logs: harvest (normalizing vendor formats), store, analyze.
        let mut records = self.harvester.harvest(&mut self.engine);
        records.extend(bench_logs);
        report.logs = records.len();
        let training = self.engine.tick_count() <= self.novelty_training_ticks;
        if !training && self.novelty.is_training() {
            self.novelty.freeze();
        }
        let mut signals: Vec<Signal> = Vec::new();
        for rec in &records {
            for finding in self.correlator.observe(rec) {
                signals.push(finding_to_signal(&finding));
            }
            if self.novelty.observe(rec) {
                signals.push(Signal::new(
                    rec.ts,
                    SignalKind::LogNovelty,
                    Severity::Notice,
                    rec.comp,
                    1.0,
                    format!("novel log shape: {}", rec.message),
                ));
            }
        }
        self.log_store.append_batch(records);

        // 4. Streaming metric analysis on the fresh frame.  Attachments
        //    are independent (private detector state, disjoint sample
        //    partitions), so they evaluate concurrently when a pool is
        //    configured; concatenating the per-attachment outputs in
        //    attachment order reproduces the serial signal order exactly.
        match &self.pool {
            Some(pool) => {
                let frame_ref = &frame;
                let insts = &self.instruments.detectors;
                let jobs = &self.instruments.parallel_jobs;
                let busy = &self.instruments.busy_analysis;
                let mut outs: Vec<Vec<Signal>> =
                    (0..self.detectors.len()).map(|_| Vec::new()).collect();
                pool.scope(|sc| {
                    for ((att, out), inst) in
                        self.detectors.iter_mut().zip(outs.iter_mut()).zip(insts)
                    {
                        jobs.inc();
                        sc.spawn(move || {
                            let _busy = BusyTimer::new(busy.clone());
                            let started = Instant::now();
                            let mut evals = 0u64;
                            for s in frame_ref.iter().filter(|s| s.key == att.key) {
                                evals += 1;
                                if let Some(anomaly) = att.detector.observe(s.ts, s.value) {
                                    out.push(Signal::new(
                                        anomaly.ts,
                                        att.kind,
                                        att.severity,
                                        att.key.comp,
                                        anomaly.score,
                                        format!("{} (value {:.4})", att.label, anomaly.value),
                                    ));
                                }
                            }
                            inst.evals.add(evals);
                            inst.latency.record_ns(started.elapsed().as_nanos() as u64);
                        });
                    }
                });
                for out in &mut outs {
                    signals.append(out);
                }
            }
            None => {
                for (att, inst) in self.detectors.iter_mut().zip(&self.instruments.detectors) {
                    let _busy = BusyTimer::new(self.instruments.busy_analysis.clone());
                    let started = Instant::now();
                    let mut evals = 0u64;
                    for s in frame.iter().filter(|s| s.key == att.key) {
                        evals += 1;
                        if let Some(anomaly) = att.detector.observe(s.ts, s.value) {
                            signals.push(Signal::new(
                                anomaly.ts,
                                att.kind,
                                att.severity,
                                att.key.comp,
                                anomaly.score,
                                format!("{} (value {:.4})", att.label, anomaly.value),
                            ));
                        }
                    }
                    inst.evals.add(evals);
                    inst.latency.record_ns(started.elapsed().as_nanos() as u64);
                }
            }
        }

        // 5. Built-in analyses: cabinet imbalance, ASHRAE, health checks.
        //    Each is gated on the coverage of the collector that owns its
        //    input segment — a quarantined power collector must not read
        //    as a balanced-at-zero machine.
        if self.segment_covered(&frame, "power") {
            let cabinets: Vec<f64> = {
                let mut cabs: Vec<(u32, f64)> = frame
                    .of_metric(self.metrics.cabinet_power)
                    .map(|s| (s.key.comp.index, s.value))
                    .collect();
                cabs.sort_by_key(|&(i, _)| i);
                cabs.into_iter().map(|(_, v)| v).collect()
            };
            let reading = self.imbalance.assess(&cabinets);
            if reading.flagged {
                let user = self.dominant_user();
                let mut sig = Signal::new(
                    now,
                    SignalKind::PowerAnomaly,
                    Severity::Warning,
                    CompId::SYSTEM,
                    reading.max_min_ratio,
                    format!(
                        "cabinet power imbalance: max/min {:.2}, cv {:.2}",
                        reading.max_min_ratio, reading.cv
                    ),
                );
                if let Some(u) = user {
                    sig = sig.with_user(&u);
                }
                signals.push(sig);
            }
        }
        if self.segment_covered(&frame, "env")
            && self.engine.environment().exceeds_ashrae_gas_limit()
        {
            signals.push(Signal::new(
                now,
                SignalKind::EnvironmentViolation,
                Severity::Warning,
                CompId::ENVIRONMENT,
                self.engine.environment().so2_ppb,
                "SO2 above ASHRAE G1 limit",
            ));
        }
        // (The node health scan needs no gate: a missing node segment
        // simply contributes no node_health samples to iterate.)
        for s in frame.of_metric(self.metrics.node_health) {
            if s.value == 0.0 {
                let node = s.key.comp.index;
                let mut sig = Signal::new(
                    now,
                    SignalKind::HealthCheckFailure,
                    Severity::Warning,
                    s.key.comp,
                    1.0,
                    format!("node {node} fails health check"),
                );
                if let Some(id) = self.engine.scheduler().job_on_node(node) {
                    sig = sig.with_user(&self.engine.scheduler().record(id).user.clone());
                }
                signals.push(sig);
            }
        }

        for silent in self.deadman.check(now) {
            signals.push(Signal::new(
                now,
                SignalKind::MonitoringGap,
                Severity::Error,
                CompId::SYSTEM,
                silent.overdue_ms as f64 / 1_000.0,
                format!("collector '{}' silent (last seen {:?})", silent.feed, silent.last_seen),
            ));
        }

        // 5b. Power-cap control loop: throttle p-state on overdraw,
        //     recover when there is headroom.  The actuation is itself a
        //     signal so operators see every throttle decision.
        //     The controller is gated on power coverage: with the power
        //     collector quarantined, a missing reading must hold the
        //     p-state where it is, not read as "0 W, full headroom".
        if let (Some(cap), true) = (self.power_cap_w, self.segment_covered(&frame, "power")) {
            let total =
                frame.of_metric(self.metrics.system_power).next().map(|s| s.value).unwrap_or(0.0);
            let pstate = self.engine.pstate();
            if total > cap && pstate > 0.3 {
                let next = (pstate - 0.05).max(0.3);
                self.engine.set_pstate(next);
                signals.push(Signal::new(
                    now,
                    SignalKind::PowerAnomaly,
                    Severity::Notice,
                    CompId::SYSTEM,
                    total / cap,
                    format!("power cap: {total:.0} W over {cap:.0} W cap, p-state -> {next:.2}"),
                ));
            } else if total < 0.85 * cap && pstate < 1.0 {
                self.engine.set_pstate((pstate + 0.05).min(1.0));
            }
        }

        // 5c. Retention enforcement on its configured cadence.
        if let Some((policy, every)) = self.retention {
            if self.engine.tick_count().is_multiple_of(every) {
                policy.enforce(now, &self.store, &mut self.archive);
            }
        }
        // Lifetime evaluation totals from the analysis sub-engines, synced
        // into telemetry so the self feed carries them as per-tick deltas.
        let (correlated, findings) = self.correlator.eval_counts();
        sync_counter(&self.instruments.correlator_records, correlated);
        sync_counter(&self.instruments.correlator_findings, findings);
        self.instruments.deadman_feeds.set(self.deadman.len() as f64);
        drop(analysis_span);
        drop(analysis_timer);

        // 6. Respond, feeding actions back to the machine.
        let response_timer = StageTimer::new(self.instruments.stage_response.clone()).with_tag(tag);
        let response_span = stage_ctx.as_ref().map(|c| tracer.span(c, Stage::Response));
        for sig in &signals {
            let actions = self.response.handle(sig);
            for action in &actions {
                self.apply_action(action);
            }
            report.actions.extend(actions);
        }
        let (handled, suppressed) = self.response.eval_counts();
        sync_counter(&self.instruments.response_handled, handled);
        sync_counter(&self.instruments.response_suppressed, suppressed);
        drop(response_span);
        drop(response_timer);
        // 7. Analysis results are stored WITH the raw data (Table I):
        //    per-tick counts as ordinary series, and each signal as a
        //    searchable log record from the `analysis` source.
        let mut results = Frame::new(now);
        results.push(self.metrics.analysis_signals, CompId::SYSTEM, signals.len() as f64);
        results.push(self.metrics.analysis_actions, CompId::SYSTEM, report.actions.len() as f64);
        if self.supervision {
            // Results ride the same breaker as raw frames: analysis
            // outputs queue behind earlier spilled data so the store's
            // arrival order survives an outage.
            let store = Arc::clone(&self.store);
            let route = &mut self.route;
            let sub_report = self.breaker.submit(
                (Payload::Frame(Arc::new(results)), trace_ctx),
                self.engine.tick_count(),
                |(p, _)| match p {
                    Payload::Columns(c) => store.try_ingest_columns(c.as_ref(), route),
                    Payload::Frame(f) => store.try_insert_frame(f),
                    _ => Ok(()),
                },
            );
            for (_, ctx) in sub_report.evicted {
                if let Some(ctx) = ctx {
                    tracer.record_drop(
                        &ctx,
                        Stage::Store,
                        DropReason::SpillOverflow,
                        "spill queue full: oldest frame evicted",
                    );
                }
            }
            self.instruments.store_breaker_state.set(self.breaker.state().as_gauge());
            self.instruments.spill_depth.set(self.breaker.depth() as f64);
            sync_counter(&self.instruments.spill_dropped, self.breaker.dropped());
        } else {
            self.store.insert_frame(&results);
        }
        if let Some(chaos) = &self.chaos {
            self.instruments.sync_chaos(chaos.counts());
            self.instruments.sync_disk_chaos(chaos.disk_counts());
        }
        for sig in &signals {
            self.log_store.append(LogRecord::new(
                sig.ts,
                sig.comp,
                sig.severity,
                "analysis",
                sig.detail.clone(),
            ));
        }
        self.signals.extend(signals.iter().cloned());
        report.signals = signals;

        // 7b. Health: evaluate the SLO/alerting plane over this tick's
        //     deterministic pipeline evidence.  Feeds come from primary
        //     sources — the coverage bitmap, the stall backlog, breaker
        //     and spill state, store/broker op counts, chaos injection
        //     totals — never from wall-clock telemetry (the gateway's
        //     shed counters, for instance, ride `Instant` deadlines), so
        //     alert timelines are keyed by tick and bit-identical at any
        //     worker count.  Exemplars are the one exception: a newly
        //     firing alert grabs the trace id nearest its subsystem's p99
        //     as a flamegraph link, and the canonical timeline zeroes it.
        if let Some(health) = &mut self.health {
            let tick_no = self.engine.tick_count();
            let cov_pct = if self.supervision {
                self.last_coverage.map_or(100.0, |c| c.pct())
            } else {
                100.0
            };
            // Broker counters survive a snapshot restore un-reset (the
            // broker is live infrastructure, not snapshotted state), so
            // diff them here against a baseline that `restore_snapshot`
            // re-seeds, rather than handing lifetime totals to the
            // engine's own differ.
            let bstats = self.broker.stats();
            let btotals = (bstats.delivered, bstats.dropped + bstats.decode_errors);
            let bdelta = (
                btotals.0.saturating_sub(self.health_broker_baseline.0),
                btotals.1.saturating_sub(self.health_broker_baseline.1),
            );
            self.health_broker_baseline = btotals;
            let sops = self.store.op_counts();
            let breaker_closed = !self.supervision || self.breaker.state() == BreakerState::Closed;
            let spill_bad = if self.supervision {
                self.breaker.depth() as f64 + (!breaker_closed as u64) as f64
            } else {
                0.0
            };
            let counts = self.chaos.as_ref().map(|c| c.counts()).unwrap_or_default();
            let mut feeds: Vec<(&str, FeedValue)> = vec![
                ("collect.coverage", FeedValue::Tick { good: cov_pct, bad: 100.0 - cov_pct }),
                (
                    "transport.delivery",
                    FeedValue::Tick {
                        good: frames_published_now as f64,
                        bad: self.stall_buffer.len() as f64,
                    },
                ),
                ("trace.drops", FeedValue::Tick { good: bdelta.0 as f64, bad: bdelta.1 as f64 }),
                (
                    "store.ingest",
                    FeedValue::Tick { good: breaker_closed as u64 as f64, bad: spill_bad },
                ),
                (
                    "store.integrity",
                    FeedValue::Total {
                        good: sops.samples_ingested as f64,
                        bad: (self.store.corrupt_blocks() + self.breaker.dropped()) as f64,
                    },
                ),
                (
                    "gateway.serving",
                    FeedValue::Total {
                        good: tick_no as f64,
                        bad: counts.gateway_worker_death as f64,
                    },
                ),
                (
                    "chaos.quiescence",
                    FeedValue::Total { good: tick_no as f64, bad: counts.total() as f64 },
                ),
            ];
            // Durability evidence only exists with a plane attached; the
            // feed is simply absent otherwise (an SLO with no feed grades
            // healthy — absence of a WAL is not an outage).
            if let Some(plane) = &self.durability {
                let dc = plane.counts();
                feeds.push((
                    "store.durability",
                    FeedValue::Total {
                        good: dc.records_appended as f64,
                        bad: (dc.append_failures
                            + dc.checkpoint_failures
                            + dc.corrupt_events
                            + dc.scrub_failures) as f64,
                    },
                ));
            }
            let insts = &self.instruments;
            let exemplar = |sub: HealthSubsystem| -> u64 {
                let hist = match sub {
                    HealthSubsystem::Collect => &insts.stage_collect,
                    HealthSubsystem::Transport => &insts.stage_transport,
                    HealthSubsystem::Store => &insts.stage_store,
                    _ => &insts.stage_tick,
                };
                hist.exemplar_near_quantile(0.99)
            };
            let events = health.observe_tick(tick_no, &feeds, &exemplar);
            for ev in &events {
                if !ev.silenced {
                    let wire = serde_json::to_vec(ev).expect("AlertEvent serializes");
                    self.broker.publish(&topics::health_alerts(), Payload::Raw(Bytes::from(wire)));
                }
            }
            insts.health_transitions.add(events.len() as u64);
            insts.health_alerts_firing.set(health.firing_count() as f64);
            insts.health_alerts_pending.set(health.pending_count() as f64);
            let health_rep = health.report(tick_no);
            for (g, sub) in insts.health_grades.iter().zip(&health_rep.subsystems) {
                g.set(match sub.grade {
                    Grade::Healthy => 0.0,
                    Grade::Degraded => 1.0,
                    Grade::Critical => 2.0,
                });
            }
            report.alerts = events;
        }

        // 8. Serve: refresh the gateway's scoping view with the
        //    scheduler's current allocations, then evaluate standing
        //    subscriptions against the freshly stored data.
        if let Some(gw) = &self.gateway {
            gw.update_jobs(self.engine.scheduler().records().to_vec());
            gw.on_tick(now);
        }

        // 9. Close the frame's root span and assemble completed traces.
        //    The drain also picks up drop spans recorded by the broker and
        //    gateway (including from worker threads) since last tick.
        drop(root_span);
        if self.tracer.is_enabled() {
            self.trace_store.ingest(self.tracer.drain());
            let tstats = self.tracer.stats();
            sync_counter(&self.instruments.trace_sampled, tstats.traces_sampled);
            sync_counter(&self.instruments.trace_spans, self.trace_store.spans_seen());
            sync_counter(&self.instruments.trace_completed, self.trace_store.completed_total());
            sync_counter(
                &self.instruments.trace_completed_with_drops,
                self.trace_store.completed_with_drops(),
            );
            sync_counter(&self.instruments.trace_ring_rejected, tstats.spans_rejected);
        }

        // 10. Flight-recorder hook: fold every subsystem's deterministic
        //     state into this tick's hash (system::state).  Gated so a
        //     build without the recorder pays one branch and stays
        //     bit-identical.
        if self.hashing {
            self.finish_tick_hash(&frame);
        }

        // 11. Durability: journal this tick (inputs + hash + frame) to
        //     the WAL, sync per policy, checkpoint/rotate and scrub on
        //     their cadences (system::durability).  Runs strictly after
        //     the hash so the record carries the value recovery verifies
        //     against; the plane itself is never hashed, so a durable run
        //     and its non-durable twin share one hash chain.
        if self.durability.is_some() {
            self.finish_tick_durability(&frame);
        }
        report
    }

    /// Supervised collection (DESIGN.md §10): every collector runs under
    /// a panic catch and the chaos engine's active faults — into a private
    /// part-frame under a worker pool, or straight into the frame (with
    /// truncate-on-failure) serially.  Segments that succeed land in
    /// registration order — output stays identical at any worker count —
    /// while segments that fail (panic, hang, deadline overrun) are
    /// discarded and their slot quarantined with exponential-backoff
    /// re-probes, the gap handed to the deadman so it surfaces as
    /// `MonitoringGap`, never silence.
    fn collect_supervised(&mut self, now: Ts, frame: &mut ColumnFrame, contributed: &mut [usize]) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        /// What the supervisor decided for one slot this tick.
        #[derive(Clone, Copy)]
        enum Plan {
            /// Quarantined and the re-probe is not due: skipped (the
            /// deadman carries the gap).
            Skip,
            /// Chaos hang: never runs, counts as a failure.
            Fail,
            /// Runs; `inject_panic` fires the chaos panic inside the job,
            /// `discard` drops the part afterwards (deadline overrun).
            Run { inject_panic: bool, discard: bool },
        }
        let tick = self.engine.tick_count();
        let budget = self.supervisor.config().slow_budget_factor;
        let plans: Vec<Plan> = self
            .collectors
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if !self.supervisor.should_run(i, tick) {
                    return Plan::Skip;
                }
                match self.chaos.as_ref().and_then(|ch| ch.collector_fault(c.name())) {
                    Some(CollectorFault::Hang) => Plan::Fail,
                    Some(CollectorFault::Panic) => Plan::Run { inject_panic: true, discard: true },
                    Some(CollectorFault::Slow(factor)) => {
                        Plan::Run { inject_panic: false, discard: factor >= budget }
                    }
                    None => Plan::Run { inject_panic: false, discard: false },
                }
            })
            .collect();
        // One supervised job: collect into the part, catch anything —
        // injected chaos panics and real collector panics alike.  Returns
        // whether the job panicked.
        fn run_job(
            c: &mut Box<dyn Collector>,
            engine: &SimEngine,
            part: &mut ColumnFrame,
            inject_panic: bool,
            latency: &Histogram,
        ) -> bool {
            let started = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                c.collect(engine, part);
                if inject_panic {
                    panic!("chaos: injected collector panic");
                }
            }));
            latency.record_ns(started.elapsed().as_nanos() as u64);
            outcome.is_err()
        }
        // Fan out only under a pool: each worker fills a private part-frame
        // that the merge loop below appends in registration order.  The
        // serial path skips the parts entirely — collectors fill `frame`
        // directly (same as the unsupervised pipeline) and a failed
        // segment is truncated back off, which keeps the no-fault cost of
        // supervision at one length check per collector.
        let mut parts: Vec<ColumnFrame> = Vec::new();
        let mut panicked = vec![false; self.collectors.len()];
        if let Some(pool) = &self.pool {
            parts = (0..self.collectors.len()).map(|_| ColumnFrame::new(now)).collect();
            let engine = &self.engine;
            let insts = &self.instruments.collectors;
            let jobs = &self.instruments.parallel_jobs;
            let busy = &self.instruments.busy_collect;
            pool.scope(|sc| {
                for ((((c, part), flag), inst), &plan) in self
                    .collectors
                    .iter_mut()
                    .zip(parts.iter_mut())
                    .zip(panicked.iter_mut())
                    .zip(insts)
                    .zip(&plans)
                {
                    let inject = match plan {
                        Plan::Run { inject_panic, .. } => inject_panic,
                        _ => continue,
                    };
                    if c.name() == "self" {
                        continue;
                    }
                    jobs.inc();
                    sc.spawn(move || {
                        let _busy = BusyTimer::new(busy.clone());
                        *flag = run_job(c, engine, part, inject, &inst.latency);
                    });
                }
            });
        }
        // Run/merge and bookkeeping in fixed registration order.  The
        // "self" collector is a barrier either way: it runs inline at its
        // own (last) position, after every fan-out job finished (it
        // republishes instruments the other collectors update this tick).
        let serial = parts.is_empty();
        for i in 0..self.collectors.len() {
            let probe = self.supervisor.is_probe(i, tick);
            let failed = match plans[i] {
                Plan::Skip => continue,
                Plan::Fail => true,
                Plan::Run { inject_panic, discard } => {
                    if serial || self.collectors[i].name() == "self" {
                        let before = frame.len();
                        let _busy = BusyTimer::new(self.instruments.busy_collect.clone());
                        let p = run_job(
                            &mut self.collectors[i],
                            &self.engine,
                            frame,
                            inject_panic,
                            &self.instruments.collectors[i].latency,
                        );
                        if p || discard {
                            frame.truncate(before);
                        } else {
                            contributed[i] = frame.len() - before;
                        }
                        p || discard
                    } else if panicked[i] || discard {
                        true
                    } else {
                        contributed[i] = parts[i].len();
                        frame.append(&mut parts[i]);
                        false
                    }
                }
            };
            let name = self.collectors[i].name().to_owned();
            if failed {
                self.supervisor.record_failure(i, tick);
                self.deadman.set_quarantined(&name, true);
            } else {
                self.supervisor.record_success(i);
                if probe {
                    self.deadman.set_quarantined(&name, false);
                }
                self.instruments.collectors[i].samples.add(contributed[i] as u64);
            }
        }
    }

    /// Whether the frame segment owned by collector `name` is present per
    /// the frame's coverage bitmap.  Frames without a bitmap (supervision
    /// off) and collectors that are not installed count as covered, so
    /// the built-in analyses behave exactly as before unless a supervised
    /// collector is *known* to have missed this tick — then they skip the
    /// segment instead of reading absence as zero.
    fn segment_covered(&self, frame: &ColumnFrame, name: &str) -> bool {
        match &frame.coverage {
            Some(cov) => {
                self.collectors.iter().position(|c| c.name() == name).is_none_or(|i| cov.covered(i))
            }
            None => true,
        }
    }

    fn apply_action(&mut self, action: &ActionTaken) {
        // Alerts/notifications are journaled; only node actions drive the
        // machine.
        if let (Action::SidelineNode | Action::DrainNode, CompKind::Node) =
            (&action.action, action.comp.kind)
        {
            self.engine.scheduler_mut().take_out_of_service(action.comp.index);
        }
    }

    fn dominant_user(&self) -> Option<String> {
        self.engine
            .scheduler()
            .running()
            .iter()
            .max_by_key(|r| r.nodes.len())
            .map(|r| r.spec.user.clone())
    }

    /// Advance `n` ticks, accumulating a summary.
    pub fn run_ticks(&mut self, n: u64) -> RunSummary {
        let mut summary = RunSummary::default();
        for _ in 0..n {
            let r = self.tick();
            summary.ticks += 1;
            summary.samples += r.samples as u64;
            summary.logs += r.logs as u64;
            summary.signals += r.signals.len() as u64;
            summary.actions += r.actions.len() as u64;
        }
        summary
    }

    // ----- accessors -----

    /// The simulated machine.
    pub fn engine(&self) -> &SimEngine {
        &self.engine
    }

    /// Mutable machine access (fault injection mid-run, scheduler pokes).
    pub fn engine_mut(&mut self) -> &mut SimEngine {
        &mut self.engine
    }

    /// The metric registry (names, units, descriptions).
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Resolved standard metric ids.
    pub fn metrics(&self) -> StdMetrics {
        self.metrics
    }

    /// The transport broker (subscribe for live consumers).
    pub fn broker(&self) -> &Arc<Broker> {
        &self.broker
    }

    /// The query gateway, if one was configured with
    /// [`MonitorBuilder::gateway`].  Clone the `Arc` to issue queries from
    /// consumer threads while the pipeline keeps ticking.
    pub fn gateway(&self) -> Option<&Arc<Gateway>> {
        self.gateway.as_ref()
    }

    /// Per-topic publish/deliver/drop breakdown from the broker.
    pub fn broker_topic_stats(&self) -> Vec<TopicStats> {
        self.broker.topic_stats()
    }

    /// The pipeline tracer.  Clone the `Arc` to stamp externally driven
    /// work (gateway clients, custom consumers) into the same trace space.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Completed end-to-end traces (sampled frames plus every drop).
    pub fn traces(&self) -> &TraceStore {
        &self.trace_store
    }

    /// The self-instrumentation registry.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Snapshot of the monitor's own health (stage latencies, counters).
    pub fn telemetry_report(&self) -> TelemetryReport {
        self.telemetry.report()
    }

    /// Remove a collector by name — the stand-in for a collection daemon
    /// dying mid-run.  The deadman keeps expecting its feed, so silence
    /// surfaces as `MonitoringGap`; the self feed shows its per-tick
    /// `collect.samples` dropping to zero.  Returns whether one was removed.
    pub fn silence_collector(&mut self, name: &str) -> bool {
        let mut removed = false;
        while let Some(i) = self.collectors.iter().position(|c| c.name() == name) {
            // The instrument, supervisor, and coverage vectors run
            // parallel to the collector list; keep the pairings intact.
            self.collectors.remove(i);
            self.instruments.collectors.remove(i);
            self.supervisor.remove_slot(i);
            self.ever_contributed.remove(i);
            removed = true;
        }
        removed
    }

    // ----- self-healing / chaos -----

    /// Lifetime chaos injection counts by kind (`None` when no chaos plan
    /// is configured).
    pub fn chaos_counts(&self) -> Option<InjectedCounts> {
        self.chaos.as_ref().map(|c| c.counts())
    }

    /// Collector slots currently quarantined by the supervisor.
    pub fn quarantined_collectors(&self) -> usize {
        self.supervisor.quarantined_count()
    }

    /// Current state of the store-ingest circuit breaker.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Frames currently waiting in the ingest spill queue.
    pub fn spill_depth(&self) -> usize {
        self.breaker.depth()
    }

    /// Frames evicted (drop-oldest) from the spill queue over the run —
    /// the only sanctioned data loss under store faults, every one
    /// counted here and traced with `spill_overflow` provenance.
    pub fn spill_dropped(&self) -> u64 {
        self.breaker.dropped()
    }

    /// Frames buffered behind an active broker topic stall.
    pub fn stalled_frames(&self) -> usize {
        self.stall_buffer.len()
    }

    // ----- health plane -----

    /// The health engine, when the SLO/alerting plane is configured.
    pub fn health_engine(&self) -> Option<&HealthEngine> {
        self.health.as_ref()
    }

    /// Mutable health engine access (e.g. to add a runtime silence).
    pub fn health_engine_mut(&mut self) -> Option<&mut HealthEngine> {
        self.health.as_mut()
    }

    /// Every alert lifecycle transition so far (empty when health is
    /// off).
    pub fn alert_events(&self) -> &[AlertEvent] {
        self.health.as_ref().map_or(&[], |h| h.events())
    }

    /// The operator health report as of the current tick (`None` when
    /// health is off).
    pub fn health_report(&self) -> Option<HealthReport> {
        self.health.as_ref().map(|h| h.report(self.engine.tick_count()))
    }

    /// The canonical alert timeline: one JSON line per transition with
    /// exemplar ids zeroed — the artifact determinism suites byte-diff
    /// across worker counts.  Empty when health is off.
    pub fn health_timeline(&self) -> String {
        self.health.as_ref().map_or_else(String::new, |h| h.canonical_timeline())
    }

    /// Coverage bitmap of the most recent frame (`None` before the first
    /// supervised tick, or when supervision is off).
    pub fn last_coverage(&self) -> Option<FrameCoverage> {
        self.last_coverage
    }

    /// The frame the most recent tick published, if any tick has run.
    /// Federation rollups read this instead of re-querying the store.
    pub fn last_frame(&self) -> Option<&Arc<ColumnFrame>> {
        self.last_frame.as_ref()
    }

    /// Milliseconds of simulated time per tick.
    pub fn tick_ms(&self) -> u64 {
        self.engine.config().tick_ms
    }

    /// The time-series store.
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// The log store.
    pub fn log_store(&self) -> &LogStore {
        &self.log_store
    }

    /// The archive (cold tier).
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// Mutable archive access (archiving/reloading flows).
    pub fn archive_mut(&mut self) -> &mut Archive {
        &mut self.archive
    }

    /// A query engine over the store.
    pub fn query(&self) -> QueryEngine<'_> {
        QueryEngine::new(&self.store)
    }

    /// Every signal emitted so far.
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// Every response action taken so far.
    pub fn actions(&self) -> &[ActionTaken] {
        self.response.journal()
    }

    /// Alerts delivered on a named route.
    pub fn response_alerts(&self, route: &str) -> Vec<&ActionTaken> {
        self.response.alerts_on_route(route)
    }

    /// Signals visible to a given consumer under the access policy.
    pub fn signals_for(&self, consumer: &hpcmon_response::Consumer) -> Vec<&Signal> {
        AccessPolicy.filter(consumer, &self.signals)
    }

    /// Estimated queue wait for a hypothetical `nodes`-node job submitted
    /// now (the CSC user-facing number); `None` when it can never fit.
    pub fn estimate_wait_ms(&self, nodes: u32) -> Option<u64> {
        self.engine.scheduler().estimate_wait_ms(nodes, self.engine.now())
    }

    /// Assemble the current operations report: machine state, alerts by
    /// rule, benchmark trends, loudest log templates.
    pub fn ops_report(&self) -> String {
        use hpcmon_analysis::TemplateMiner;
        let m = self.metrics;
        let q = self.query();
        let bench_io: Vec<f64> = q
            .series(
                hpcmon_metrics::SeriesKey::new(m.bench_io, CompId::SYSTEM),
                hpcmon_store::TimeRange::all(),
            )
            .into_iter()
            .map(|p| p.1)
            .collect();
        let bench_net: Vec<f64> = q
            .series(
                hpcmon_metrics::SeriesKey::new(m.bench_network, CompId::SYSTEM),
                hpcmon_store::TimeRange::all(),
            )
            .into_iter()
            .map(|p| p.1)
            .collect();
        let mut miner = TemplateMiner::new();
        for i in 0..self.log_store.len() as u32 {
            if let Some(rec) = self.log_store.get(i) {
                miner.observe(&rec);
            }
        }
        let templates = miner.top_k(5).into_iter().map(|t| (t.count, t.example)).collect();
        let mut report = hpcmon_viz::OpsReport::new("Operations report")
            .period(Ts::ZERO, self.engine.now())
            .status_board(&self.status_board())
            .alerts(self.response.journal().iter().map(|a| (a.rule.as_str(), a.ts)))
            .benchmark("io bench tts (s)", bench_io)
            .benchmark("network bench tts (s)", bench_net)
            .top_templates(templates);
        if self.telemetry.is_active() {
            report = report.telemetry(&self.telemetry.report().render_text());
        }
        report.render()
    }

    /// The at-a-glance component-state board ("percentage of components in
    /// a state, regardless of location").
    pub fn status_board(&self) -> StatusBoard {
        use hpcmon_sim::node::NodeHealth;
        let e = &self.engine;
        let oos: std::collections::HashSet<u32> =
            e.scheduler().out_of_service().into_iter().collect();
        let (mut up, mut hung, mut down, mut sidelined) = (0, 0, 0, 0);
        for n in 0..e.num_nodes() {
            if oos.contains(&n) && e.node(n).health == NodeHealth::Up {
                sidelined += 1;
                continue;
            }
            match e.node(n).health {
                NodeHealth::Up => up += 1,
                NodeHealth::Hung => hung += 1,
                NodeHealth::Down => down += 1,
            }
        }
        let links = e.network().num_links() as u32;
        let links_up = (0..links).filter(|&l| e.network().link_is_up(l)).count();
        let osts = e.filesystem().num_osts();
        let osts_ok = (0..osts).filter(|&o| e.filesystem().ost_degradation(o) <= 1.0).count();
        let gpus_total = e.num_nodes() as usize * e.config().gpus_per_node as usize;
        let gpus_ok = (0..gpus_total as u32).filter(|&g| e.gpu(g).healthy).count();
        let mut board = StatusBoard::new(&format!("Machine state at {}", e.now()))
            .add(ClassStatus::new(
                "nodes",
                vec![("up", up), ("hung", hung), ("down", down), ("sidelined", sidelined)],
            ))
            .add(ClassStatus::new(
                "links",
                vec![("up", links_up), ("down", links as usize - links_up)],
            ))
            .add(ClassStatus::new(
                "OSTs",
                vec![("healthy", osts_ok), ("degraded", osts as usize - osts_ok)],
            ));
        if gpus_total > 0 {
            board = board.add(ClassStatus::new(
                "GPUs",
                vec![("healthy", gpus_ok), ("failed", gpus_total - gpus_ok)],
            ));
        }
        board
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_analysis::ZScoreDetector;
    use hpcmon_metrics::SeriesKey;
    use hpcmon_sim::AppProfile;

    fn quick_system() -> MonitoringSystem {
        MonitoringSystem::builder(SimConfig::small()).build()
    }

    #[test]
    fn tick_collects_stores_and_reports() {
        let mut mon = quick_system();
        mon.submit_job(JobSpec::new(
            AppProfile::compute_heavy("stencil"),
            "alice",
            16,
            30 * 60_000,
            Ts::ZERO,
        ));
        let r = mon.tick();
        assert!(r.samples > 500, "full sweep: {}", r.samples);
        let stats = mon.store().stats();
        assert!(stats.series > 500);
        // Collected samples plus the 2 per-tick analysis-result samples
        // stored alongside the raw data (Table I).
        assert_eq!(stats.hot_points + stats.warm_points, r.samples + 2);
        // Job-start log made it to the log store.
        assert!(!mon.log_store().is_empty());
    }

    #[test]
    fn run_summary_accumulates() {
        let mut mon = quick_system();
        let s = mon.run_ticks(5);
        assert_eq!(s.ticks, 5);
        assert!(s.samples > 2_000);
    }

    #[test]
    fn node_crash_produces_critical_signal_and_page() {
        let mut mon = quick_system();
        mon.schedule_fault(Ts::from_mins(2), FaultKind::NodeCrash { node: 7 });
        mon.run_ticks(4);
        assert!(mon
            .signals()
            .iter()
            .any(|s| s.kind == SignalKind::LogCorrelation && s.severity == Severity::Critical));
        assert!(!mon.response_alerts("ops-pager").is_empty());
        // Health-check failure signal also emitted and the node sidelined.
        assert!(mon.signals().iter().any(|s| s.kind == SignalKind::HealthCheckFailure));
        assert!(mon.engine().scheduler().out_of_service().contains(&7));
    }

    #[test]
    fn gas_spike_raises_environment_signal() {
        let mut mon = quick_system();
        mon.schedule_fault(
            Ts::from_mins(1),
            FaultKind::GasSpike { added_ppb: 50.0, duration_ms: 3_600_000 },
        );
        mon.run_ticks(3);
        assert!(mon.signals().iter().any(|s| s.kind == SignalKind::EnvironmentViolation));
    }

    #[test]
    fn attached_detector_fires_on_ost_degradation() {
        let mut mon = MonitoringSystem::builder(SimConfig::small())
            .attach_detector(DetectorAttachment::new(
                SeriesKey::new(
                    StdMetrics::register(&MetricRegistry::new()).probe_ost_latency,
                    CompId::ost(3),
                ),
                Box::new(ZScoreDetector::new(32, 6.0).with_sigma_floor(0.05)),
                SignalKind::MetricAnomaly,
                Severity::Error,
                "OST latency anomaly",
            ))
            .build();
        // Re-registering against a fresh registry yields the same ids as
        // the system's own registry because registration order is fixed.
        mon.run_ticks(15);
        mon.schedule_fault(Ts::from_mins(16), FaultKind::OstDegrade { ost: 3, factor: 12.0 });
        mon.run_ticks(5);
        assert!(
            mon.signals().iter().any(|s| s.kind == SignalKind::MetricAnomaly),
            "detector saw the degradation"
        );
    }

    #[test]
    fn access_policy_scopes_user_view() {
        let mut mon = quick_system();
        mon.schedule_fault(Ts::from_mins(2), FaultKind::NodeCrash { node: 7 });
        mon.run_ticks(4);
        let admin = hpcmon_response::Consumer::admin("ops");
        let user = hpcmon_response::Consumer::user("portal", "nobody");
        assert!(mon.signals_for(&admin).len() >= mon.signals_for(&user).len());
    }

    #[test]
    fn transport_path_is_lossless_for_store() {
        let mut mon = quick_system();
        mon.run_ticks(10);
        let stats = mon.broker().stats();
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.published as usize, 10 + mon.log_store().len());
    }

    #[test]
    fn status_board_reflects_faults() {
        let mut mon = quick_system();
        mon.schedule_fault(Ts::from_mins(1), FaultKind::NodeCrash { node: 0 });
        mon.schedule_fault(Ts::from_mins(1), FaultKind::NodeHang { node: 1 });
        mon.schedule_fault(Ts::from_mins(1), FaultKind::LinkDown { link: 2 });
        mon.schedule_fault(Ts::from_mins(1), FaultKind::OstDegrade { ost: 3, factor: 2.0 });
        mon.run_ticks(2);
        let text = mon.status_board().render();
        assert!(text.contains("down=1"), "{text}");
        assert!(text.contains("hung=1"));
        assert!(text.contains("degraded=1"));
        assert!(text.contains("GPUs"));
        let board = mon.status_board();
        assert!(board.worst().is_some());
    }

    #[test]
    fn wait_estimate_grows_with_backlog() {
        let mut mon = quick_system();
        assert_eq!(mon.estimate_wait_ms(64), Some(0));
        for _ in 0..8 {
            mon.submit_job(JobSpec::new(
                AppProfile::compute_heavy("big"),
                "u",
                128,
                30 * 60_000,
                Ts::ZERO,
            ));
        }
        mon.run_ticks(1);
        let wait = mon.estimate_wait_ms(64).expect("fits eventually");
        assert!(wait > 60 * 60_000, "deep backlog means a long wait: {wait}");
    }

    #[test]
    fn retention_archives_on_cadence() {
        let mut mon = MonitoringSystem::builder(SimConfig::small())
            .retention(
                hpcmon_store::RetentionPolicy {
                    keep_performant_ms: 10 * 60_000,
                    purge_after_ms: None,
                    rollup_bucket_ms: None,
                },
                10,
            )
            .build();
        mon.run_ticks(35);
        assert!(!mon.archive().catalog().is_empty(), "old data aged into the archive");
        // Archived data remains reachable via locate + reload.
        let seg = mon.archive().catalog()[0].segment;
        assert!(mon.archive().reload_into(seg, mon.store()));
    }

    #[test]
    fn power_cap_throttles_and_recovers() {
        // Full-machine compute load draws ~46 kW uncapped; cap at 30 kW.
        let mut mon = MonitoringSystem::builder(SimConfig::small())
            .power_cap_w(30_000.0)
            .bench_suite_every(None)
            .with_probes(false)
            .build();
        mon.submit_job(JobSpec::new(
            AppProfile::compute_heavy("vasp"),
            "u",
            128,
            60 * 60_000,
            Ts::ZERO,
        ));
        mon.run_ticks(30);
        // Controller throttled below full speed...
        assert!(mon.engine().pstate() < 1.0, "pstate {}", mon.engine().pstate());
        // ...and every throttle decision is a visible signal.
        assert!(mon.signals().iter().any(|s| s.detail.contains("power cap")));
        // Power is now at or under the cap (within one control step).
        let m = mon.metrics();
        let last_power = mon
            .query()
            .series(
                hpcmon_metrics::SeriesKey::new(m.system_power, CompId::SYSTEM),
                hpcmon_store::TimeRange::all(),
            )
            .last()
            .map(|&(_, v)| v)
            .unwrap();
        assert!(last_power < 33_000.0, "converged near cap: {last_power}");
        // When the job ends, the controller recovers toward full speed.
        mon.run_ticks(80);
        assert!(mon.engine().pstate() > 0.9, "recovered: {}", mon.engine().pstate());
    }

    #[test]
    fn analysis_results_are_stored_with_raw_data() {
        let mut mon = quick_system();
        mon.schedule_fault(Ts::from_mins(2), FaultKind::NodeCrash { node: 7 });
        mon.run_ticks(5);
        // Per-tick result counts are ordinary series...
        let m = mon.metrics();
        let series = mon.query().series(
            hpcmon_metrics::SeriesKey::new(m.analysis_signals, CompId::SYSTEM),
            hpcmon_store::TimeRange::all(),
        );
        assert_eq!(series.len(), 5);
        assert!(series.iter().any(|&(_, v)| v > 0.0), "the crash produced signals");
        // ...and each signal is a searchable log record next to raw logs.
        let hits =
            mon.log_store().search(&hpcmon_store::LogQuery::default().with_source("analysis"));
        assert_eq!(hits.len() as u64, series.iter().map(|&(_, v)| v as u64).sum::<u64>());
    }

    #[test]
    fn late_arriving_collector_gets_deadman_coverage() {
        // Regression: a collector whose FIRST contribution lands after
        // tick 1 must still be registered with the deadman (the old
        // `deadman_armed` latch only allowed registration on the first
        // tick), so its later silence surfaces as MonitoringGap.
        use hpcmon_metrics::Unit;
        struct LateCollector {
            id: hpcmon_metrics::MetricId,
        }
        impl Collector for LateCollector {
            fn name(&self) -> &str {
                "late-feed"
            }
            fn collect(&mut self, engine: &SimEngine, frame: &mut ColumnFrame) {
                // Silent on ticks 1-2, alive on 3-6, then dead.
                if (3..=6).contains(&engine.tick_count()) {
                    frame.push(self.id, CompId::SYSTEM, 1.0);
                }
            }
        }
        let builder = MonitoringSystem::builder(SimConfig::small());
        let id = builder.registry().register("late.feed", Unit::Count, "regression feed");
        let mut mon = builder.install_collector(Box::new(LateCollector { id })).build();
        mon.run_ticks(2);
        assert!(
            !mon.signals().iter().any(|s| s.detail.contains("late-feed")),
            "a feed that has never contributed is not yet expected"
        );
        mon.run_ticks(10);
        assert!(
            mon.signals()
                .iter()
                .any(|s| s.kind == SignalKind::MonitoringGap && s.detail.contains("late-feed")),
            "silence after a late first contribution must surface as MonitoringGap"
        );
    }

    #[test]
    fn parallel_pipeline_matches_serial() {
        let run = |workers: usize| {
            let mut mon = MonitoringSystem::builder(SimConfig::small()).workers(workers).build();
            mon.submit_job(JobSpec::new(
                AppProfile::checkpointing("climate"),
                "bob",
                32,
                40 * 60_000,
                Ts::ZERO,
            ));
            mon.schedule_fault(Ts::from_mins(5), FaultKind::NodeHang { node: 3 });
            let s = mon.run_ticks(12);
            (s, mon.signals().to_vec(), mon.store().stats().hot_points)
        };
        let serial = run(0);
        assert_eq!(serial, run(2), "2 workers, identical output");
    }

    #[test]
    fn determinism_end_to_end() {
        let run = || {
            let mut mon = quick_system();
            mon.submit_job(JobSpec::new(
                AppProfile::checkpointing("climate"),
                "bob",
                32,
                40 * 60_000,
                Ts::ZERO,
            ));
            mon.schedule_fault(Ts::from_mins(5), FaultKind::NodeHang { node: 3 });
            let s = mon.run_ticks(20);
            (s, mon.signals().len(), mon.store().stats().warm_points)
        };
        assert_eq!(run(), run());
    }
}
