//! Flight-recorder core hooks: hash determinism across runs and worker
//! counts, and snapshot/restore continuation equivalence.

use hpcmon::{MonitoringSystem, SimConfig, TickStateHash};
use hpcmon_chaos::{ChaosFault, ChaosPlan};
use hpcmon_metrics::Ts;
use hpcmon_sim::{AppProfile, FaultKind, JobSpec};

fn plan() -> ChaosPlan {
    let mut plan = ChaosPlan::new();
    plan.schedule(5, ChaosFault::CollectorPanic { collector: "node".into() });
    plan.schedule(12, ChaosFault::EnvelopeCorrupt { rate: 0.5, ticks: 10 });
    plan.schedule(20, ChaosFault::StoreWriteFail { shard: 1, ticks: 4 });
    plan
}

fn build(workers: usize, chaos: bool) -> MonitoringSystem {
    let mut b = MonitoringSystem::builder(SimConfig::small())
        .workers(workers)
        .self_telemetry(false)
        .supervision(true);
    if chaos {
        b = b.chaos(0xD1CE, plan());
    }
    let mut mon = b.build();
    mon.set_state_hashing(true);
    mon
}

fn drive(mon: &mut MonitoringSystem, ticks: u64) -> Vec<TickStateHash> {
    mon.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        8,
        600_000,
        Ts::ZERO,
    ));
    (0..ticks)
        .map(|_| {
            mon.tick();
            mon.last_state_hash().expect("hashing enabled")
        })
        .collect()
}

#[test]
fn hashes_identical_across_reruns_and_worker_counts() {
    let a = drive(&mut build(0, true), 40);
    let b = drive(&mut build(0, true), 40);
    let c = drive(&mut build(4, true), 40);
    assert_eq!(a, b, "same config must rerun bit-identically");
    assert_eq!(a, c, "worker count must not leak into state hashes");
}

#[test]
fn divergence_names_the_first_differing_subsystem() {
    let a = drive(&mut build(0, true), 10);
    let mut mon = build(0, true);
    mon.schedule_fault(Ts(60_000), FaultKind::NodeCrash { node: 1 });
    let b = drive(&mut mon, 10);
    let first = a.iter().zip(&b).find(|(x, y)| x != y).expect("input change must diverge");
    assert_eq!(first.0.first_divergence(first.1), Some("sim"));
    assert_ne!(first.0.combined, first.1.combined);
}

#[test]
fn snapshot_seek_matches_uninterrupted_run() {
    // Uninterrupted reference run.
    let mut reference = build(0, true);
    let ref_hashes = drive(&mut reference, 40);

    // Recorded run: checkpoint at tick 25.
    let mut rec = build(0, true);
    rec.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        8,
        600_000,
        Ts::ZERO,
    ));
    for _ in 0..25 {
        rec.tick();
    }
    let snap = rec.snapshot();
    assert_eq!(snap.tick(), 25);
    let encoded = serde_json::to_vec(&snap).expect("snapshot serializes");

    // Seek: fresh system, restore, replay 26..=40.
    let decoded = serde_json::from_slice(&encoded).expect("snapshot deserializes");
    let mut seek = build(0, true);
    seek.restore_snapshot(decoded);
    for (i, want) in ref_hashes.iter().enumerate().skip(25) {
        seek.tick();
        let got = seek.last_state_hash().unwrap();
        assert_eq!(
            got,
            *want,
            "tick {} after seek diverged at {:?}",
            i + 1,
            want.first_divergence(&got)
        );
    }
}

#[test]
fn hashing_off_reports_match_hashing_on() {
    // The hash hook must observe, never perturb: per-tick reports are
    // identical with the recorder on and off.
    let mut on = build(0, true);
    let mut off = MonitoringSystem::builder(SimConfig::small())
        .self_telemetry(false)
        .supervision(true)
        .chaos(0xD1CE, plan())
        .build();
    on.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        8,
        600_000,
        Ts::ZERO,
    ));
    off.submit_job(JobSpec::new(
        AppProfile::compute_heavy("stencil"),
        "alice",
        8,
        600_000,
        Ts::ZERO,
    ));
    for _ in 0..30 {
        assert_eq!(on.tick(), off.tick());
    }
    assert!(off.last_state_hash().is_none());
}
