#![warn(missing_docs)]

//! `hpcmon-response` — acting on analysis results.
//!
//! Table I (Response): *"Reporting and alerting capabilities should be
//! easily configurable.  These should be able to be triggered based on
//! arbitrary locations in the data and analysis pathways.  Data and
//! analysis results should be able to be exposed to applications and
//! system software."*
//!
//! The pieces:
//!
//! * [`signal::Signal`] — the common shape every analysis stage emits, so
//!   rules can attach anywhere in the pipeline.
//! * [`engine::ResponseEngine`] — configurable rules mapping signal
//!   patterns to [`engine::Action`]s, with per-(rule, component) cooldowns
//!   so an event storm cannot become an alert storm.
//! * [`access`] — per-consumer filtering: the paper notes that tools built
//!   for root-access admins can't share data with users; here every alert
//!   route has a role and user-facing routes only see what concerns them.

pub mod access;
pub mod engine;
pub mod signal;

pub use access::{AccessPolicy, Consumer, Role};
pub use engine::{
    Action, ActionTaken, ResponseEngine, ResponseRule, ResponseSnapshot, SignalMatch,
};
pub use signal::{Signal, SignalKind};
