//! The common signal shape emitted by analysis stages.

use hpcmon_metrics::{CompId, Severity, Ts};
use serde::{Deserialize, Serialize};

/// What kind of condition a signal reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// A metric anomaly (z-score/MAD/threshold detector fired).
    MetricAnomaly,
    /// A changepoint / degradation onset (CUSUM).
    Changepoint,
    /// A log correlation rule fired.
    LogCorrelation,
    /// A never-before-seen log shape appeared.
    LogNovelty,
    /// A node failed a health check.
    HealthCheckFailure,
    /// Power-profile mismatch or cabinet imbalance.
    PowerAnomaly,
    /// A network region is congested.
    Congestion,
    /// A trend forecast predicts a threshold crossing.
    TrendForecast,
    /// The datacenter environment violates a standard (ASHRAE).
    EnvironmentViolation,
    /// The monitoring system itself stopped producing expected data
    /// (deadman detection — silence must not look like health).
    MonitoringGap,
}

impl SignalKind {
    /// Stable label used in alert routing and dashboards.
    pub fn label(self) -> &'static str {
        match self {
            SignalKind::MetricAnomaly => "metric-anomaly",
            SignalKind::Changepoint => "changepoint",
            SignalKind::LogCorrelation => "log-correlation",
            SignalKind::LogNovelty => "log-novelty",
            SignalKind::HealthCheckFailure => "health-check",
            SignalKind::PowerAnomaly => "power-anomaly",
            SignalKind::Congestion => "congestion",
            SignalKind::TrendForecast => "trend-forecast",
            SignalKind::EnvironmentViolation => "environment",
            SignalKind::MonitoringGap => "monitoring-gap",
        }
    }
}

/// One analysis finding, normalized for the response engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// When the condition was detected.
    pub ts: Ts,
    /// What kind of condition.
    pub kind: SignalKind,
    /// Severity assessed by the emitting analysis.
    pub severity: Severity,
    /// The component concerned.
    pub comp: CompId,
    /// Detector score / magnitude (meaning depends on `kind`).
    pub score: f64,
    /// Human-readable explanation.
    pub detail: String,
    /// Owning user, when the signal concerns one user's job (drives
    /// access-controlled routing).
    pub user: Option<String>,
}

impl Signal {
    /// Convenience constructor for component-level signals.
    pub fn new(
        ts: Ts,
        kind: SignalKind,
        severity: Severity,
        comp: CompId,
        score: f64,
        detail: impl Into<String>,
    ) -> Signal {
        Signal { ts, kind, severity, comp, score, detail: detail.into(), user: None }
    }

    /// Attach an owning user.
    pub fn with_user(mut self, user: &str) -> Signal {
        self.user = Some(user.to_owned());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let kinds = [
            SignalKind::MetricAnomaly,
            SignalKind::Changepoint,
            SignalKind::LogCorrelation,
            SignalKind::LogNovelty,
            SignalKind::HealthCheckFailure,
            SignalKind::PowerAnomaly,
            SignalKind::Congestion,
            SignalKind::TrendForecast,
            SignalKind::EnvironmentViolation,
            SignalKind::MonitoringGap,
        ];
        let labels: std::collections::HashSet<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }

    #[test]
    fn constructor_and_user() {
        let s = Signal::new(
            Ts(1),
            SignalKind::Congestion,
            Severity::Warning,
            CompId::cabinet(2),
            0.8,
            "region hot",
        );
        assert_eq!(s.user, None);
        let s = s.with_user("alice");
        assert_eq!(s.user.as_deref(), Some("alice"));
    }

    #[test]
    fn serde_round_trip() {
        let s =
            Signal::new(Ts(9), SignalKind::LogNovelty, Severity::Notice, CompId::SYSTEM, 1.0, "x");
        let j = serde_json::to_string(&s).unwrap();
        let back: Signal = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
