//! The response rule engine.
//!
//! Responses at the paper's sites are "typically simple — such as issuing
//! an alert or marking a node as down" (§III-C), with richer ones
//! envisioned (scheduler feedback, power redirection).  The engine
//! supports both tiers: every rule maps a [`SignalMatch`] to a list of
//! [`Action`]s, and a per-(rule, component) cooldown keeps event storms
//! from becoming pager storms.

use crate::signal::{Signal, SignalKind};
use hpcmon_metrics::{CompId, Severity, Ts};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a fired rule does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Send an alert on a named route (consumed via [`crate::access`]).
    Alert {
        /// Route name, e.g. "ops-pager", "user-portal".
        route: String,
    },
    /// Take the component's node out of scheduling.
    SidelineNode,
    /// Ask the scheduler to stop placing new work (node drains naturally).
    DrainNode,
    /// Requeue the affected job.
    RequeueJob,
    /// Notify the owning user (respecting access control).
    NotifyUser,
    /// Shift power budget between partitions (the paper's "redirection of
    /// power between platforms" vision).
    RedirectPowerBudget {
        /// Watts to shift.
        watts: f64,
    },
}

/// Predicate over signals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalMatch {
    /// Required kind, or `None` for any.
    pub kind: Option<SignalKind>,
    /// Minimum severity.
    pub min_severity: Severity,
    /// Minimum score magnitude.
    pub min_score: f64,
}

impl SignalMatch {
    /// Match a kind at or above a severity.
    pub fn kind(kind: SignalKind, min_severity: Severity) -> SignalMatch {
        SignalMatch { kind: Some(kind), min_severity, min_score: 0.0 }
    }

    /// Match anything at or above a severity.
    pub fn any(min_severity: Severity) -> SignalMatch {
        SignalMatch { kind: None, min_severity, min_score: 0.0 }
    }

    /// Require a minimum score magnitude.
    pub fn with_min_score(mut self, score: f64) -> SignalMatch {
        self.min_score = score;
        self
    }

    /// Whether a signal satisfies this match.
    pub fn matches(&self, s: &Signal) -> bool {
        if let Some(k) = self.kind {
            if s.kind != k {
                return false;
            }
        }
        s.severity >= self.min_severity && s.score.abs() >= self.min_score
    }
}

/// A configured rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseRule {
    /// Rule name (appears in the action record).
    pub name: String,
    /// When it fires.
    pub m: SignalMatch,
    /// What it does.
    pub actions: Vec<Action>,
    /// Minimum ms between firings for the same (rule, component).
    pub cooldown_ms: u64,
}

/// A record of an executed action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionTaken {
    /// When.
    pub ts: Ts,
    /// Which rule fired.
    pub rule: String,
    /// The action.
    pub action: Action,
    /// The component it concerns.
    pub comp: CompId,
    /// The triggering signal's detail.
    pub detail: String,
    /// Owning user from the signal, if any.
    pub user: Option<String>,
}

/// The engine: rules + cooldown state + an action journal.
pub struct ResponseEngine {
    rules: Vec<ResponseRule>,
    last_fired: HashMap<(usize, CompId), Ts>,
    journal: Vec<ActionTaken>,
    signals_handled: u64,
    suppressed_by_cooldown: u64,
}

/// Checkpointed response-engine state: cooldowns, journal, counters.  The
/// rules are configuration and are rebuilt by the caller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseSnapshot {
    // Vec-of-pairs: the serde layer only supports string map keys.
    last_fired: Vec<(usize, CompId, Ts)>,
    journal: Vec<ActionTaken>,
    signals_handled: u64,
    suppressed_by_cooldown: u64,
}

impl ResponseEngine {
    /// Capture cooldowns, journal and counters for a flight-recorder
    /// checkpoint (sorted so the bytes are canonical).
    pub fn snapshot(&self) -> ResponseSnapshot {
        let mut last_fired: Vec<(usize, CompId, Ts)> =
            self.last_fired.iter().map(|(&(rule, comp), &ts)| (rule, comp, ts)).collect();
        last_fired.sort_by_key(|&(rule, comp, _)| (rule, comp));
        ResponseSnapshot {
            last_fired,
            journal: self.journal.clone(),
            signals_handled: self.signals_handled,
            suppressed_by_cooldown: self.suppressed_by_cooldown,
        }
    }

    /// Re-attach checkpointed state (rules stay as configured).
    pub fn restore(&mut self, snap: ResponseSnapshot) {
        self.last_fired =
            snap.last_fired.into_iter().map(|(rule, comp, ts)| ((rule, comp), ts)).collect();
        self.journal = snap.journal;
        self.signals_handled = snap.signals_handled;
        self.suppressed_by_cooldown = snap.suppressed_by_cooldown;
    }

    /// 64-bit digest of cooldown state and counters, for per-tick replay
    /// verification (cooldowns folded in sorted order).
    pub fn state_digest(&self) -> u64 {
        let mut h = hpcmon_metrics::StateHash::new(0x2E);
        h.u64(self.signals_handled).u64(self.suppressed_by_cooldown).usize(self.journal.len());
        let mut fired: Vec<(usize, CompId, Ts)> =
            self.last_fired.iter().map(|(&(rule, comp), &ts)| (rule, comp, ts)).collect();
        fired.sort_by_key(|&(rule, comp, _)| (rule, comp));
        h.usize(fired.len());
        for (rule, comp, ts) in fired {
            h.usize(rule).u64(comp.kind as u64).u64(comp.index as u64).u64(ts.0);
        }
        h.finish()
    }

    /// Build from a rule set.
    pub fn new(rules: Vec<ResponseRule>) -> ResponseEngine {
        ResponseEngine {
            rules,
            last_fired: HashMap::new(),
            journal: Vec::new(),
            signals_handled: 0,
            suppressed_by_cooldown: 0,
        }
    }

    /// Lifetime evaluation counts: (signals handled, rule firings suppressed
    /// by cooldown) — the self-telemetry feed for the response stage.
    pub fn eval_counts(&self) -> (u64, u64) {
        (self.signals_handled, self.suppressed_by_cooldown)
    }

    /// A production-flavored default rule set.
    pub fn production_rules() -> Vec<ResponseRule> {
        vec![
            ResponseRule {
                name: "page-on-critical".into(),
                m: SignalMatch::any(Severity::Critical),
                actions: vec![Action::Alert { route: "ops-pager".into() }],
                cooldown_ms: 5 * 60_000,
            },
            ResponseRule {
                name: "sideline-unhealthy-node".into(),
                m: SignalMatch::kind(SignalKind::HealthCheckFailure, Severity::Warning),
                actions: vec![
                    Action::SidelineNode,
                    Action::Alert { route: "ops-dashboard".into() },
                ],
                cooldown_ms: 10 * 60_000,
            },
            ResponseRule {
                name: "warn-on-changepoint".into(),
                m: SignalMatch::kind(SignalKind::Changepoint, Severity::Warning),
                actions: vec![Action::Alert { route: "ops-dashboard".into() }],
                cooldown_ms: 30 * 60_000,
            },
            ResponseRule {
                name: "notify-user-power-anomaly".into(),
                m: SignalMatch::kind(SignalKind::PowerAnomaly, Severity::Warning),
                actions: vec![Action::NotifyUser, Action::Alert { route: "ops-dashboard".into() }],
                cooldown_ms: 10 * 60_000,
            },
            ResponseRule {
                name: "environment-violation".into(),
                m: SignalMatch::kind(SignalKind::EnvironmentViolation, Severity::Warning),
                actions: vec![Action::Alert { route: "facilities".into() }],
                cooldown_ms: 60 * 60_000,
            },
        ]
    }

    /// Handle one signal; returns the actions taken (also journaled).
    pub fn handle(&mut self, signal: &Signal) -> Vec<ActionTaken> {
        self.signals_handled += 1;
        let mut taken = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if !rule.m.matches(signal) {
                continue;
            }
            let key = (i, signal.comp);
            if let Some(&last) = self.last_fired.get(&key) {
                if signal.ts.0.saturating_sub(last.0) < rule.cooldown_ms {
                    self.suppressed_by_cooldown += 1;
                    continue;
                }
            }
            self.last_fired.insert(key, signal.ts);
            for action in &rule.actions {
                taken.push(ActionTaken {
                    ts: signal.ts,
                    rule: rule.name.clone(),
                    action: action.clone(),
                    comp: signal.comp,
                    detail: signal.detail.clone(),
                    user: signal.user.clone(),
                });
            }
        }
        self.journal.extend(taken.iter().cloned());
        taken
    }

    /// Every action ever taken.
    pub fn journal(&self) -> &[ActionTaken] {
        &self.journal
    }

    /// Actions on a given alert route.
    pub fn alerts_on_route(&self, route: &str) -> Vec<&ActionTaken> {
        self.journal
            .iter()
            .filter(|a| matches!(&a.action, Action::Alert { route: r } if r == route))
            .collect()
    }

    /// Number of configured rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(ts_min: u64, kind: SignalKind, sev: Severity, comp: CompId) -> Signal {
        Signal::new(Ts::from_mins(ts_min), kind, sev, comp, 10.0, "test")
    }

    fn engine_one(rule: ResponseRule) -> ResponseEngine {
        ResponseEngine::new(vec![rule])
    }

    #[test]
    fn rule_fires_matching_signal() {
        let mut e = engine_one(ResponseRule {
            name: "r".into(),
            m: SignalMatch::kind(SignalKind::HealthCheckFailure, Severity::Warning),
            actions: vec![Action::SidelineNode],
            cooldown_ms: 0,
        });
        let taken =
            e.handle(&sig(0, SignalKind::HealthCheckFailure, Severity::Error, CompId::node(3)));
        assert_eq!(taken.len(), 1);
        assert_eq!(taken[0].action, Action::SidelineNode);
        assert_eq!(taken[0].comp, CompId::node(3));
        // Wrong kind: nothing.
        assert!(e
            .handle(&sig(1, SignalKind::Congestion, Severity::Error, CompId::node(3)))
            .is_empty());
        // Too mild: nothing.
        assert!(e
            .handle(&sig(2, SignalKind::HealthCheckFailure, Severity::Info, CompId::node(3)))
            .is_empty());
    }

    #[test]
    fn cooldown_suppresses_storms_per_component() {
        let mut e = engine_one(ResponseRule {
            name: "r".into(),
            m: SignalMatch::any(Severity::Warning),
            actions: vec![Action::Alert { route: "pager".into() }],
            cooldown_ms: 10 * 60_000,
        });
        let comp = CompId::node(1);
        assert_eq!(e.handle(&sig(0, SignalKind::MetricAnomaly, Severity::Error, comp)).len(), 1);
        // Storm within cooldown: suppressed.
        for m in 1..9 {
            assert!(e.handle(&sig(m, SignalKind::MetricAnomaly, Severity::Error, comp)).is_empty());
        }
        // A different component is independent.
        assert_eq!(
            e.handle(&sig(3, SignalKind::MetricAnomaly, Severity::Error, CompId::node(2))).len(),
            1
        );
        // After the cooldown it fires again.
        assert_eq!(e.handle(&sig(11, SignalKind::MetricAnomaly, Severity::Error, comp)).len(), 1);
        assert_eq!(e.alerts_on_route("pager").len(), 3);
    }

    #[test]
    fn min_score_gates() {
        let mut e = engine_one(ResponseRule {
            name: "r".into(),
            m: SignalMatch::any(Severity::Info).with_min_score(5.0),
            actions: vec![Action::NotifyUser],
            cooldown_ms: 0,
        });
        let mut weak = sig(0, SignalKind::MetricAnomaly, Severity::Error, CompId::node(0));
        weak.score = 2.0;
        assert!(e.handle(&weak).is_empty());
        let mut strong = weak.clone();
        strong.score = -9.0; // magnitude counts
        assert_eq!(e.handle(&strong).len(), 1);
    }

    #[test]
    fn multiple_rules_and_actions() {
        let mut e = ResponseEngine::new(ResponseEngine::production_rules());
        let s = sig(0, SignalKind::HealthCheckFailure, Severity::Critical, CompId::node(7));
        let taken = e.handle(&s);
        // page-on-critical (1 action) + sideline-unhealthy-node (2 actions).
        assert_eq!(taken.len(), 3);
        assert!(taken.iter().any(|a| a.action == Action::SidelineNode));
        assert_eq!(e.alerts_on_route("ops-pager").len(), 1);
        assert_eq!(e.alerts_on_route("ops-dashboard").len(), 1);
    }

    #[test]
    fn journal_accumulates() {
        let mut e = engine_one(ResponseRule {
            name: "r".into(),
            m: SignalMatch::any(Severity::Debug),
            actions: vec![Action::Alert { route: "x".into() }, Action::DrainNode],
            cooldown_ms: 0,
        });
        e.handle(&sig(0, SignalKind::Congestion, Severity::Info, CompId::cabinet(0)));
        e.handle(&sig(1, SignalKind::Congestion, Severity::Info, CompId::cabinet(0)));
        assert_eq!(e.journal().len(), 4);
        assert_eq!(e.rule_count(), 1);
    }

    #[test]
    fn user_flows_through_to_action() {
        let mut e = engine_one(ResponseRule {
            name: "r".into(),
            m: SignalMatch::kind(SignalKind::PowerAnomaly, Severity::Warning),
            actions: vec![Action::NotifyUser],
            cooldown_ms: 0,
        });
        let s =
            sig(0, SignalKind::PowerAnomaly, Severity::Warning, CompId::job(9)).with_user("alice");
        let taken = e.handle(&s);
        assert_eq!(taken[0].user.as_deref(), Some("alice"));
    }

    #[test]
    fn power_redirect_action_carries_watts() {
        let mut e = engine_one(ResponseRule {
            name: "powercap".into(),
            m: SignalMatch::kind(SignalKind::PowerAnomaly, Severity::Error),
            actions: vec![Action::RedirectPowerBudget { watts: 50_000.0 }],
            cooldown_ms: 0,
        });
        let taken = e.handle(&sig(0, SignalKind::PowerAnomaly, Severity::Error, CompId::SYSTEM));
        assert_eq!(taken[0].action, Action::RedirectPowerBudget { watts: 50_000.0 });
    }
}
