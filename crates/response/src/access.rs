//! Per-consumer access control for alerts and analysis results.
//!
//! Paper §V: "Tools are often developed by/for administrators with root
//! access and ubiquitous 'need to know'.  Adding infrastructure to control
//! information access per user is often impractical and hence information
//! that might be of tremendous benefit in answering users' burning
//! question(s) cannot be shared with them."
//!
//! Here the control is built in rather than bolted on: every consumer has
//! a [`Role`], and [`AccessPolicy::visible`] decides what each consumer
//! may see.  Admins see everything; users see system-level signals and
//! anything about their own jobs, never other users' job details.

use crate::engine::ActionTaken;
use crate::signal::Signal;
use hpcmon_metrics::{CompKind, JobRecord, SeriesKey};
use serde::{Deserialize, Serialize};

/// Who a consumer is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Operations staff: unrestricted.
    Admin,
    /// An end user: own jobs + system-level signals only.
    User(String),
}

/// A registered consumer of alerts/results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Consumer {
    /// Display name (e.g. "ops-pager", "alice's portal").
    pub name: String,
    /// Access role.
    pub role: Role,
}

impl Consumer {
    /// An admin consumer.
    pub fn admin(name: &str) -> Consumer {
        Consumer { name: name.to_owned(), role: Role::Admin }
    }

    /// A user consumer.
    pub fn user(name: &str, user: &str) -> Consumer {
        Consumer { name: name.to_owned(), role: Role::User(user.to_owned()) }
    }
}

/// The visibility policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct AccessPolicy;

impl AccessPolicy {
    /// Whether `consumer` may see `signal`.
    pub fn visible(&self, consumer: &Consumer, signal: &Signal) -> bool {
        match &consumer.role {
            Role::Admin => true,
            Role::User(user) => {
                // A user sees their own job's signals...
                if signal.user.as_deref() == Some(user.as_str()) {
                    return true;
                }
                // ...and system-scope conditions that affect everyone,
                // but only if not attributed to someone else's job.
                signal.user.is_none()
                    && matches!(signal.comp.kind, CompKind::System | CompKind::Environment)
            }
        }
    }

    /// Filter a batch of signals for one consumer.
    pub fn filter<'a>(&self, consumer: &Consumer, signals: &'a [Signal]) -> Vec<&'a Signal> {
        signals.iter().filter(|s| self.visible(consumer, s)).collect()
    }

    /// Whether `consumer` may see an executed action record.
    pub fn action_visible(&self, consumer: &Consumer, action: &ActionTaken) -> bool {
        match &consumer.role {
            Role::Admin => true,
            Role::User(user) => action.user.as_deref() == Some(user.as_str()),
        }
    }

    /// Data-level scoping: whether `consumer` may read the raw series `key`,
    /// given the scheduler's job view.  Admins read everything.  A user
    /// reads system/environment-scope series, series on nodes inside their
    /// own jobs' allocations, and their own jobs' per-job series — never
    /// other users' nodes or jobs, and never infrastructure internals
    /// (routers, links, filesystem servers, ...).
    pub fn series_visible(&self, consumer: &Consumer, key: &SeriesKey, jobs: &[JobRecord]) -> bool {
        match &consumer.role {
            Role::Admin => true,
            Role::User(user) => match key.comp.kind {
                CompKind::System | CompKind::Environment => true,
                CompKind::Node => {
                    jobs.iter().any(|j| j.user == *user && j.nodes.contains(&key.comp.index))
                }
                CompKind::Job => jobs.iter().any(|j| j.user == *user && j.id.0 == key.comp.index),
                _ => false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Action;
    use crate::signal::SignalKind;
    use hpcmon_metrics::{CompId, Severity, Ts};

    fn sys_signal() -> Signal {
        Signal::new(
            Ts(0),
            SignalKind::Congestion,
            Severity::Warning,
            CompId::SYSTEM,
            1.0,
            "network busy",
        )
    }

    fn job_signal(user: &str) -> Signal {
        Signal::new(
            Ts(0),
            SignalKind::PowerAnomaly,
            Severity::Warning,
            CompId::job(3),
            1.0,
            "imbalance in your job",
        )
        .with_user(user)
    }

    fn node_signal() -> Signal {
        Signal::new(
            Ts(0),
            SignalKind::HealthCheckFailure,
            Severity::Error,
            CompId::node(5),
            1.0,
            "node sick",
        )
    }

    #[test]
    fn admin_sees_everything() {
        let p = AccessPolicy;
        let admin = Consumer::admin("ops");
        for s in [sys_signal(), job_signal("alice"), node_signal()] {
            assert!(p.visible(&admin, &s));
        }
    }

    #[test]
    fn user_sees_own_job_and_system_only() {
        let p = AccessPolicy;
        let alice = Consumer::user("alice-portal", "alice");
        assert!(p.visible(&alice, &job_signal("alice")));
        assert!(!p.visible(&alice, &job_signal("bob")), "not other users' jobs");
        assert!(p.visible(&alice, &sys_signal()), "system scope is public");
        assert!(!p.visible(&alice, &node_signal()), "node internals are ops-only");
    }

    #[test]
    fn environment_is_public() {
        let p = AccessPolicy;
        let alice = Consumer::user("alice-portal", "alice");
        let env = Signal::new(
            Ts(0),
            SignalKind::EnvironmentViolation,
            Severity::Warning,
            CompId::ENVIRONMENT,
            1.0,
            "gas above ASHRAE",
        );
        assert!(p.visible(&alice, &env));
    }

    #[test]
    fn filter_batches() {
        let p = AccessPolicy;
        let alice = Consumer::user("alice-portal", "alice");
        let signals = vec![sys_signal(), job_signal("alice"), job_signal("bob"), node_signal()];
        let visible = p.filter(&alice, &signals);
        assert_eq!(visible.len(), 2);
    }

    #[test]
    fn series_visibility_scopes_to_job_allocations() {
        use hpcmon_metrics::{JobId, MetricId, SeriesKey};
        let p = AccessPolicy;
        let jobs = vec![
            JobRecord::submitted(JobId(3), "alice", "sim", vec![5, 6], Ts(0)),
            JobRecord::submitted(JobId(4), "bob", "ml", vec![7], Ts(0)),
        ];
        let key = |comp| SeriesKey::new(MetricId(0), comp);
        let admin = Consumer::admin("ops");
        let alice = Consumer::user("alice-portal", "alice");

        // Admin reads everything, including infrastructure internals.
        for comp in [CompId::SYSTEM, CompId::node(7), CompId::job(4), CompId::router(1)] {
            assert!(p.series_visible(&admin, &key(comp), &jobs));
        }

        // System/environment scope is public.
        assert!(p.series_visible(&alice, &key(CompId::SYSTEM), &jobs));
        assert!(p.series_visible(&alice, &key(CompId::ENVIRONMENT), &jobs));

        // Own allocation's nodes and own job series: yes.
        assert!(p.series_visible(&alice, &key(CompId::node(5)), &jobs));
        assert!(p.series_visible(&alice, &key(CompId::node(6)), &jobs));
        assert!(p.series_visible(&alice, &key(CompId::job(3)), &jobs));

        // Foreign job's node/job series and unallocated nodes: no.
        assert!(!p.series_visible(&alice, &key(CompId::node(7)), &jobs), "bob's node");
        assert!(!p.series_visible(&alice, &key(CompId::job(4)), &jobs), "bob's job");
        assert!(!p.series_visible(&alice, &key(CompId::node(9)), &jobs), "idle node");

        // Infrastructure internals stay ops-only even for job owners.
        assert!(!p.series_visible(&alice, &key(CompId::router(1)), &jobs));
    }

    #[test]
    fn action_visibility() {
        let p = AccessPolicy;
        let action = |user: Option<&str>| ActionTaken {
            ts: Ts(0),
            rule: "r".into(),
            action: Action::NotifyUser,
            comp: CompId::job(1),
            detail: "d".into(),
            user: user.map(|u| u.to_owned()),
        };
        assert!(p.action_visible(&Consumer::admin("ops"), &action(None)));
        let alice = Consumer::user("p", "alice");
        assert!(p.action_visible(&alice, &action(Some("alice"))));
        assert!(!p.action_visible(&alice, &action(Some("bob"))));
        assert!(!p.action_visible(&alice, &action(None)));
    }
}
