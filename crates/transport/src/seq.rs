//! Consumer-side sequence-gap detection.
//!
//! The broker stamps every publish with a monotone sequence number.  A
//! consumer on a lossy subscription (or downstream of a relay restart)
//! can therefore *know* what it missed instead of guessing — the paper's
//! complaint about vendor pipelines is precisely that losses are
//! invisible.  [`SeqTracker`] folds observed sequence numbers and reports
//! gaps.

use crate::message::Envelope;

/// Tracks observed broker sequence numbers and counts gaps.
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    last: Option<u64>,
    observed: u64,
    missed: u64,
    out_of_order: u64,
}

impl SeqTracker {
    /// Fresh tracker.
    pub fn new() -> SeqTracker {
        SeqTracker::default()
    }

    /// Observe an envelope; returns the number of messages skipped since
    /// the previous observation (0 for in-order delivery).
    pub fn observe(&mut self, env: &Envelope) -> u64 {
        self.observe_seq(env.seq)
    }

    /// Observe a raw sequence number.
    pub fn observe_seq(&mut self, seq: u64) -> u64 {
        self.observed += 1;
        let gap = match self.last {
            Some(prev) if seq > prev => seq - prev - 1,
            Some(_) => {
                // Stale or duplicate delivery; count it but no gap.
                self.out_of_order += 1;
                0
            }
            None => 0, // first message: unknown history, assume no gap
        };
        self.missed += gap;
        if self.last.is_none_or(|prev| seq > prev) {
            self.last = Some(seq);
        }
        gap
    }

    /// Messages observed.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Total messages known to be missing.
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Stale/duplicate deliveries seen.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order
    }

    /// Delivery completeness in `(0, 1]`; 1.0 when nothing was missed.
    pub fn completeness(&self) -> f64 {
        let expected = self.observed + self.missed;
        if expected == 0 {
            1.0
        } else {
            self.observed as f64 / expected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{BackpressurePolicy, Broker};
    use crate::message::Payload;
    use crate::topic::TopicFilter;
    use bytes::Bytes;

    #[test]
    fn contiguous_sequence_has_no_gaps() {
        let mut t = SeqTracker::new();
        for s in 10..20 {
            assert_eq!(t.observe_seq(s), 0);
        }
        assert_eq!(t.observed(), 10);
        assert_eq!(t.missed(), 0);
        assert_eq!(t.completeness(), 1.0);
    }

    #[test]
    fn gaps_are_counted() {
        let mut t = SeqTracker::new();
        t.observe_seq(0);
        assert_eq!(t.observe_seq(5), 4);
        assert_eq!(t.missed(), 4);
        assert!((t.completeness() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn first_message_is_not_a_gap() {
        let mut t = SeqTracker::new();
        assert_eq!(t.observe_seq(1_000), 0);
        assert_eq!(t.missed(), 0);
    }

    #[test]
    fn duplicates_and_stale_are_tracked_separately() {
        let mut t = SeqTracker::new();
        t.observe_seq(5);
        assert_eq!(t.observe_seq(5), 0);
        assert_eq!(t.observe_seq(3), 0);
        assert_eq!(t.out_of_order(), 2);
        assert_eq!(t.missed(), 0);
        // Forward progress resumes correctly.
        assert_eq!(t.observe_seq(6), 0);
    }

    #[test]
    fn lossy_subscription_gaps_match_broker_drop_count() {
        let broker = Broker::new();
        let sub = broker.subscribe(TopicFilter::all(), 4, BackpressurePolicy::DropNewest);
        for i in 0..20 {
            broker.publish("t", Payload::Raw(Bytes::from(vec![i as u8])));
        }
        let mut tracker = SeqTracker::new();
        for env in sub.drain() {
            tracker.observe(&env);
        }
        // 4 delivered, 16 dropped; first message seq=0 so all drops are
        // interior gaps... but DropNewest keeps the *first* 4, so the
        // tracker sees 0..3 contiguous and knows nothing of the tail.
        assert_eq!(tracker.observed(), 4);
        assert_eq!(tracker.missed(), 0, "tail loss is invisible to seq alone");
        assert_eq!(sub.dropped(), 16, "...which is why the broker counts drops too");
    }

    #[test]
    fn drop_oldest_gaps_are_visible() {
        let broker = Broker::new();
        let sub = broker.subscribe(TopicFilter::all(), 4, BackpressurePolicy::DropOldest);
        for i in 0..20 {
            broker.publish("t", Payload::Raw(Bytes::from(vec![i as u8])));
        }
        let mut tracker = SeqTracker::new();
        for env in sub.drain() {
            tracker.observe(&env);
        }
        // Keeps the last 4 (16..19): no interior gaps, but combined with
        // the broker's counter the consumer knows exactly what happened.
        assert_eq!(tracker.observed(), 4);
        assert_eq!(sub.dropped() + tracker.observed(), 20);
    }
}
