//! Topic names and subscription filters.
//!
//! Topics are `/`-separated paths, e.g. `metrics/node/42` or `logs/hwerr`.
//! Filters support `*` (exactly one segment) and a trailing `#` (zero or
//! more segments), matching AMQP/MQTT conventions the paper's sites already
//! use with RabbitMQ.

use serde::{Deserialize, Serialize};

/// Well-known topic roots used across the workspace.
pub mod topics {
    /// Numeric frames from synchronized collection.
    pub const METRICS: &str = "metrics";
    /// Log records.
    pub const LOGS: &str = "logs";
    /// Analysis results re-published for downstream consumers.
    pub const ANALYSIS: &str = "analysis";
    /// Alerts from the response engine.
    pub const ALERTS: &str = "alerts";
    /// Scheduler/job events.
    pub const JOBS: &str = "jobs";
    /// Federation plane: cross-site rollups and control traffic.
    pub const FED: &str = "fed";
    /// Monitoring-plane health: SLO alert lifecycle events.
    pub const HEALTH: &str = "health";

    /// Topic for a metric frame from a collector.
    pub fn metrics(collector: &str) -> String {
        format!("{METRICS}/{collector}")
    }

    /// Topic for logs from a given source subsystem.
    pub fn logs(source: &str) -> String {
        format!("{LOGS}/{source}")
    }

    /// Topic a member site's rollup batches arrive on at the federation
    /// head after crossing the WAN link.
    pub fn fed_rollup(site: &str) -> String {
        format!("{FED}/rollup/{site}")
    }

    /// Topic the health plane publishes alert lifecycle transitions on.
    pub fn health_alerts() -> String {
        format!("{HEALTH}/alerts")
    }
}

/// A parsed subscription filter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopicFilter {
    pattern: String,
}

impl TopicFilter {
    /// Parse a filter.  Panics on an empty pattern or a `#` that is not the
    /// final segment.
    pub fn new(pattern: &str) -> TopicFilter {
        assert!(!pattern.is_empty(), "empty topic filter");
        let segs: Vec<&str> = pattern.split('/').collect();
        for (i, s) in segs.iter().enumerate() {
            assert!(!s.is_empty(), "empty segment in filter {pattern:?}");
            if *s == "#" {
                assert_eq!(i, segs.len() - 1, "'#' must be the last segment in {pattern:?}");
            }
        }
        TopicFilter { pattern: pattern.to_owned() }
    }

    /// Match-all filter.
    pub fn all() -> TopicFilter {
        TopicFilter::new("#")
    }

    /// The raw pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Whether this filter matches a concrete topic.
    pub fn matches(&self, topic: &str) -> bool {
        let mut f = self.pattern.split('/');
        let mut t = topic.split('/');
        loop {
            match (f.next(), t.next()) {
                (Some("#"), _) => return true,
                (Some("*"), Some(_)) => continue,
                (Some(fs), Some(ts)) if fs == ts => continue,
                (None, None) => return true,
                _ => return false,
            }
        }
    }
}

impl std::fmt::Display for TopicFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        let f = TopicFilter::new("metrics/node");
        assert!(f.matches("metrics/node"));
        assert!(!f.matches("metrics/node/1"));
        assert!(!f.matches("metrics"));
        assert!(!f.matches("logs/node"));
    }

    #[test]
    fn single_segment_wildcard() {
        let f = TopicFilter::new("metrics/*/power");
        assert!(f.matches("metrics/node/power"));
        assert!(f.matches("metrics/cabinet/power"));
        assert!(!f.matches("metrics/power"));
        assert!(!f.matches("metrics/node/cpu"));
        assert!(!f.matches("metrics/node/power/extra"));
    }

    #[test]
    fn trailing_hash_matches_subtree() {
        let f = TopicFilter::new("logs/#");
        assert!(f.matches("logs/console"));
        assert!(f.matches("logs/hwerr/link"));
        assert!(!f.matches("metrics/node"));
        // '#' also matches zero further segments.
        assert!(f.matches("logs"));
    }

    #[test]
    fn all_matches_everything() {
        let f = TopicFilter::all();
        for t in ["a", "a/b", "a/b/c", "metrics/node/99"] {
            assert!(f.matches(t));
        }
    }

    #[test]
    #[should_panic(expected = "last segment")]
    fn interior_hash_rejected() {
        TopicFilter::new("logs/#/x");
    }

    #[test]
    #[should_panic(expected = "empty topic filter")]
    fn empty_filter_rejected() {
        TopicFilter::new("");
    }

    #[test]
    #[should_panic(expected = "empty segment")]
    fn empty_segment_rejected() {
        TopicFilter::new("a//b");
    }

    #[test]
    fn topic_helpers() {
        assert_eq!(topics::metrics("power"), "metrics/power");
        assert_eq!(topics::logs("hwerr"), "logs/hwerr");
        assert_eq!(topics::health_alerts(), "health/alerts");
        assert!(TopicFilter::new("metrics/#").matches(&topics::metrics("node")));
        // The store's ingest filter must NOT see alert events — health
        // on/off must leave store contents untouched.
        assert!(!TopicFilter::new("metrics/#").matches(&topics::health_alerts()));
        assert!(TopicFilter::new("health/#").matches(&topics::health_alerts()));
    }
}
