//! Synchronized collection scheduling.
//!
//! NCSA: "collection times are synchronized across the entire system"
//! (paper §II-2) — because system-wide snapshots are only comparable when
//! every component was sampled at the same instant.  [`CollectionSync`]
//! computes those aligned instants, and the `abl_clocksync` ablation bench
//! shows what breaks without them.

use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// An aligned-tick generator for one collection cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectionSync {
    interval_ms: u64,
}

impl CollectionSync {
    /// A cadence of `interval_ms` between synchronized ticks.
    pub fn new(interval_ms: u64) -> CollectionSync {
        assert!(interval_ms > 0, "interval must be positive");
        CollectionSync { interval_ms }
    }

    /// The NCSA cadence: one minute.
    pub fn minutely() -> CollectionSync {
        CollectionSync::new(hpcmon_metrics::MINUTE_MS)
    }

    /// The cadence in ms.
    pub fn interval_ms(&self) -> u64 {
        self.interval_ms
    }

    /// The first aligned tick at or after `t`.
    pub fn next_tick(&self, t: Ts) -> Ts {
        t.align_up(self.interval_ms)
    }

    /// The last aligned tick at or before `t`.
    pub fn current_tick(&self, t: Ts) -> Ts {
        t.align_down(self.interval_ms)
    }

    /// Whether `t` is exactly an aligned tick.
    pub fn is_tick(&self, t: Ts) -> bool {
        t.0.is_multiple_of(self.interval_ms)
    }

    /// All aligned ticks in `[from, to]`, inclusive on both ends.
    pub fn ticks_between(&self, from: Ts, to: Ts) -> Vec<Ts> {
        let mut out = Vec::new();
        let mut t = self.next_tick(from);
        while t <= to {
            out.push(t);
            t = t.add_ms(self.interval_ms);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::MINUTE_MS;

    #[test]
    fn next_and_current() {
        let s = CollectionSync::minutely();
        assert_eq!(s.next_tick(Ts(1)), Ts(MINUTE_MS));
        assert_eq!(s.next_tick(Ts(MINUTE_MS)), Ts(MINUTE_MS));
        assert_eq!(s.current_tick(Ts(MINUTE_MS + 5)), Ts(MINUTE_MS));
        assert!(s.is_tick(Ts(2 * MINUTE_MS)));
        assert!(!s.is_tick(Ts(MINUTE_MS + 1)));
    }

    #[test]
    fn ticks_between_inclusive() {
        let s = CollectionSync::new(10);
        assert_eq!(s.ticks_between(Ts(5), Ts(35)), vec![Ts(10), Ts(20), Ts(30)]);
        assert_eq!(s.ticks_between(Ts(10), Ts(10)), vec![Ts(10)]);
        assert!(s.ticks_between(Ts(11), Ts(19)).is_empty());
    }

    #[test]
    fn zero_is_a_tick() {
        let s = CollectionSync::new(60_000);
        assert!(s.is_tick(Ts::ZERO));
        assert_eq!(s.next_tick(Ts::ZERO), Ts::ZERO);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        CollectionSync::new(0);
    }
}
