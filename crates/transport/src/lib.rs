#![warn(missing_docs)]

//! `hpcmon-transport` — data transport for monitoring pipelines.
//!
//! Table I of the paper (Architecture) demands: multiple flexible data
//! paths; platform owners choosing their own transport/storage tradeoffs;
//! native-format transport; and extensibility.  This crate provides the
//! pieces:
//!
//! * [`broker::Broker`] — a topic-based publish/subscribe event router (the
//!   role Cray's ERD, LDMS, or RabbitMQ play at the paper's sites), with
//!   per-subscriber bounded queues, explicit backpressure policies, and
//!   drop accounting (a transport that silently loses data is exactly the
//!   vendor failure mode the paper complains about).
//! * [`relay::Relay`] — store-and-forward between brokers (ERD forwarding
//!   off the SMW).
//! * [`syslog`] — the one transport the sites actually had in common:
//!   line-oriented log forwarding, with render/parse round-tripping.
//! * [`sync::CollectionSync`] — the NCSA-style synchronized collection
//!   schedule: all collectors sample at the same aligned instants.

pub mod broker;
pub mod message;
pub mod relay;
pub mod seq;
pub mod sync;
pub mod syslog;
pub mod topic;

pub use broker::{BackpressurePolicy, Broker, BrokerStats, Subscription, TopicStats};
pub use message::{DecodeError, Envelope, Payload};
pub use relay::Relay;
pub use seq::SeqTracker;
pub use sync::CollectionSync;
pub use topic::{topics, TopicFilter};
