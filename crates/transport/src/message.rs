//! Message envelope and payloads.
//!
//! Payloads travel in **native form** — typed frames and log records, or
//! raw bytes for anything else — honoring the Table I requirement that
//! "tools to transport and store the data in native format are highly
//! desirable" (ALCF's Deluge exists because Cray's translation/filtration
//! lost information).

use bytes::Bytes;
use hpcmon_metrics::{ColumnFrame, Frame, JobRecord, LogRecord};
use hpcmon_trace::TraceContext;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The content of a message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Payload {
    /// A synchronized frame of numeric samples (legacy row form).
    Frame(Arc<Frame>),
    /// A synchronized frame in columnar (SoA) form — the arena-backed hot
    /// path hands these to transport by `Arc` swap, no copy.
    Columns(Arc<ColumnFrame>),
    /// One log record.
    Log(Arc<LogRecord>),
    /// A job record (scheduler stream).
    Job(Arc<JobRecord>),
    /// Uninterpreted bytes (vendor-native blobs pass through untouched).
    #[serde(with = "raw_bytes")]
    Raw(Bytes),
}

mod raw_bytes {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        b.as_ref().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        Ok(Bytes::from(Vec::<u8>::deserialize(d)?))
    }
}

impl Payload {
    /// Approximate in-memory size, for throughput accounting.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Payload::Frame(f) => f.samples.len() * std::mem::size_of::<hpcmon_metrics::Sample>(),
            Payload::Columns(c) => c.len() * std::mem::size_of::<hpcmon_metrics::Sample>(),
            Payload::Log(l) => l.message.len() + l.source.len() + 32,
            Payload::Job(j) => j.nodes.len() * 4 + j.user.len() + j.name.len() + 48,
            Payload::Raw(b) => b.len(),
        }
    }

    /// The frame, if this is a frame payload.
    pub fn as_frame(&self) -> Option<&Frame> {
        match self {
            Payload::Frame(f) => Some(f),
            _ => None,
        }
    }

    /// The columnar frame, if this is a columns payload.
    pub fn as_columns(&self) -> Option<&Arc<ColumnFrame>> {
        match self {
            Payload::Columns(c) => Some(c),
            _ => None,
        }
    }

    /// Number of samples carried, if this is either frame form.
    pub fn frame_len(&self) -> Option<usize> {
        match self {
            Payload::Frame(f) => Some(f.len()),
            Payload::Columns(c) => Some(c.len()),
            _ => None,
        }
    }

    /// The log record, if this is a log payload.
    pub fn as_log(&self) -> Option<&LogRecord> {
        match self {
            Payload::Log(l) => Some(l),
            _ => None,
        }
    }

    /// The job record, if this is a job payload.
    pub fn as_job(&self) -> Option<&JobRecord> {
        match self {
            Payload::Job(j) => Some(j),
            _ => None,
        }
    }
}

/// A routed message: topic + sequence number + payload.
///
/// Payloads are `Arc`-shared, so fanning out to N subscribers costs N
/// reference bumps, not N copies — the broker stays cheap at high rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// The topic it was published on.
    pub topic: String,
    /// Broker-assigned sequence number (gap detection at consumers).
    pub seq: u64,
    /// Causal trace context, when the datum was stamped at the head of
    /// the pipeline.  `None` for untraced messages; absent in serialized
    /// envelopes from older producers (deserializes as `None`).
    pub trace: Option<TraceContext>,
    /// The content.
    pub payload: Payload,
}

/// Why a serialized envelope was rejected at decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "envelope decode failed: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl Envelope {
    /// Serialize to the JSON wire form (relays, cross-process bridges).
    pub fn encode(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// The hardened wire-decode path: parses JSON bytes into an envelope
    /// and sanity-checks it.  Truncated, bit-flipped, or otherwise mangled
    /// payloads return an error — they must be **counted and skipped** by
    /// the caller (see `Broker::decode_envelope`), never unwrapped.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, DecodeError> {
        let env: Envelope =
            serde_json::from_slice(bytes).map_err(|e| DecodeError(e.to_string()))?;
        // Valid JSON can still be a mangled envelope: a flipped bit inside
        // a string literal survives parsing.  Reject the observably absurd.
        if env.topic.is_empty() {
            return Err(DecodeError("empty topic".to_owned()));
        }
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::{CompId, MetricId, Severity, Ts};

    #[test]
    fn accessors_are_exclusive() {
        let mut frame = Frame::new(Ts(1));
        frame.push(MetricId(0), CompId::node(0), 1.0);
        let p = Payload::Frame(Arc::new(frame));
        assert!(p.as_frame().is_some());
        assert!(p.as_columns().is_none());
        assert!(p.as_log().is_none());
        assert!(p.as_job().is_none());
        assert_eq!(p.frame_len(), Some(1));

        let mut cf = ColumnFrame::new(Ts(1));
        cf.push(MetricId(0), CompId::node(0), 1.0);
        cf.push(MetricId(0), CompId::node(1), 2.0);
        let c = Payload::Columns(Arc::new(cf));
        assert!(c.as_columns().is_some());
        assert!(c.as_frame().is_none());
        assert_eq!(c.frame_len(), Some(2));
        assert!(c.approx_bytes() > 0);

        let l = Payload::Log(Arc::new(LogRecord::new(
            Ts(1),
            CompId::node(0),
            Severity::Info,
            "console",
            "hello",
        )));
        assert!(l.as_log().is_some());
        assert!(l.as_frame().is_none());
    }

    #[test]
    fn approx_bytes_positive_for_content() {
        let mut frame = Frame::new(Ts(1));
        frame.push(MetricId(0), CompId::node(0), 1.0);
        assert!(Payload::Frame(Arc::new(frame)).approx_bytes() > 0);
        assert_eq!(Payload::Raw(Bytes::from_static(b"abc")).approx_bytes(), 3);
    }

    #[test]
    fn clone_shares_frame_storage() {
        let mut frame = Frame::new(Ts(1));
        for i in 0..1_000 {
            frame.push(MetricId(0), CompId::node(i), i as f64);
        }
        let p = Payload::Frame(Arc::new(frame));
        let q = p.clone();
        match (&p, &q) {
            (Payload::Frame(a), Payload::Frame(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn envelope_serde_round_trip() {
        let env = Envelope {
            topic: "logs/console".into(),
            seq: 7,
            trace: None,
            payload: Payload::Raw(Bytes::from_static(b"\x00\x01\x02")),
        };
        let s = serde_json::to_string(&env).unwrap();
        let back: Envelope = serde_json::from_str(&s).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn envelope_with_trace_context_round_trips() {
        use hpcmon_trace::{SpanId, TraceId};
        let env = Envelope {
            topic: "metrics/frame".into(),
            seq: 3,
            trace: Some(TraceContext { trace_id: TraceId(17), span_id: SpanId(4), sampled: true }),
            payload: Payload::Raw(Bytes::from_static(b"x")),
        };
        let s = serde_json::to_string(&env).unwrap();
        let back: Envelope = serde_json::from_str(&s).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn decode_rejects_truncated_and_bit_flipped_payloads() {
        let mut frame = Frame::new(Ts(9));
        frame.push(MetricId(1), CompId::node(4), 2.5);
        let env = Envelope {
            topic: "metrics/frame".into(),
            seq: 11,
            trace: None,
            payload: Payload::Frame(Arc::new(frame)),
        };
        let wire = env.encode().unwrap();
        assert_eq!(Envelope::decode(&wire).unwrap(), env, "clean bytes round-trip");

        // Truncation at every prefix length: must error, never panic.
        for cut in 0..wire.len() {
            assert!(Envelope::decode(&wire[..cut]).is_err(), "truncated at {cut} must fail");
        }

        // Single-bit flips at every position: must decode, error, or (for
        // flips inside string content) yield a *different* envelope —
        // never panic.
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut mangled = wire.clone();
                mangled[byte] ^= 1 << bit;
                let _ = Envelope::decode(&mangled);
            }
        }

        // Structurally valid JSON that is not a sane envelope.
        assert!(Envelope::decode(br#"{"topic":"","seq":1,"payload":{"Raw":[]}}"#).is_err());
        assert!(Envelope::decode(b"\xff\xfe not utf8").is_err());
        assert!(Envelope::decode(b"").is_err());
    }

    #[test]
    fn envelope_without_trace_key_deserializes_as_none() {
        // An envelope serialized before the trace field existed: the key
        // is simply absent, and must decode as `trace: None`.
        let legacy = r#"{"topic":"t","seq":1,"payload":{"Raw":[9]}}"#;
        let back: Envelope = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.trace, None);
        assert_eq!(back.seq, 1);
    }
}
