//! The topic-based publish/subscribe event router.
//!
//! Design points taken from the paper's requirements table:
//!
//! * **Multiple consumers per topic** — fan-out is a reference-count bump
//!   per subscriber, so "directing the data and analysis results to
//!   multiple consumers" is cheap.
//! * **Explicit backpressure** — every subscriber has a bounded queue and a
//!   declared policy ([`BackpressurePolicy::Block`] for must-not-lose
//!   consumers like the store, [`BackpressurePolicy::DropOldest`] for
//!   dashboards).  Drops are *counted*, never silent.
//! * **Reconfigurable data paths** — subscriptions can be added and dropped
//!   at any time; a dropped receiver is pruned on the next publish.

use crate::message::{DecodeError, Envelope, Payload};
use crate::topic::TopicFilter;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use hpcmon_trace::{DropReason, Stage, TraceContext, Tracer};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to do when a subscriber's queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the publisher until there is room (lossless; can stall).
    Block,
    /// Drop the oldest queued message to make room (lossy; never stalls).
    DropOldest,
    /// Drop the new message (lossy; never stalls, preserves history).
    DropNewest,
}

/// Counters describing broker activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Messages published.
    pub published: u64,
    /// Deliveries made (one per matching subscriber).
    pub delivered: u64,
    /// Messages dropped due to backpressure policies.
    pub dropped: u64,
    /// Approximate payload bytes published.
    pub bytes_published: u64,
    /// Serialized envelopes that failed [`Envelope::decode`] at a broker
    /// consumer (truncated / bit-flipped payloads, counted and skipped).
    pub decode_errors: u64,
}

/// Per-topic counters: the drop/publish breakdown the global
/// [`BrokerStats`] totals hide.  A transport that only reports "some
/// messages were dropped" is the vendor failure mode the paper complains
/// about — operators need to know *which* data path is lossy.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopicStats {
    /// Topic string as published.
    pub topic: String,
    /// Messages published on this topic.
    pub published: u64,
    /// Deliveries made for this topic (one per matching subscriber).
    pub delivered: u64,
    /// Messages dropped under backpressure while fanning out this topic
    /// (`queue_full + drop_oldest`; pruned deliveries are tracked apart
    /// because no queued datum was lost, the consumer just went away).
    pub dropped: u64,
    /// Drops where a `DropNewest` queue was full (the new message lost).
    pub queue_full: u64,
    /// Drops where a `DropOldest` queue evicted its oldest message.
    pub drop_oldest: u64,
    /// Deliveries skipped because the subscriber had disconnected.
    pub pruned_receiver: u64,
    /// Approximate payload bytes published on this topic.
    pub bytes_published: u64,
}

#[derive(Default)]
struct TopicCounters {
    published: AtomicU64,
    delivered: AtomicU64,
    queue_full: AtomicU64,
    drop_oldest: AtomicU64,
    pruned: AtomicU64,
    bytes_published: AtomicU64,
}

struct SubscriberEntry {
    filter: TopicFilter,
    sender: Sender<Envelope>,
    receiver_for_drop_oldest: Receiver<Envelope>,
    policy: BackpressurePolicy,
    // Shared with the Subscription; a strong count of 1 means the
    // Subscription handle was dropped and this entry is dead.
    dropped: Arc<AtomicU64>,
}

impl SubscriberEntry {
    fn is_closed(&self) -> bool {
        Arc::strong_count(&self.dropped) == 1
    }
}

/// A subscription handle: a bounded receiver plus drop accounting.
pub struct Subscription {
    receiver: Receiver<Envelope>,
    dropped: Arc<AtomicU64>,
    filter: TopicFilter,
}

impl Subscription {
    /// Blocking receive; `None` when the broker is gone.
    pub fn recv(&self) -> Option<Envelope> {
        self.receiver.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.receiver.try_recv().ok()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Envelope> {
        let mut out = Vec::new();
        while let Some(env) = self.try_recv() {
            out.push(env);
        }
        out
    }

    /// Messages dropped for this subscriber so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Messages currently queued.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }

    /// The filter this subscription was created with.
    pub fn filter(&self) -> &TopicFilter {
        &self.filter
    }
}

/// The event router.
///
/// ```
/// use hpcmon_transport::{BackpressurePolicy, Broker, Payload, TopicFilter};
/// use bytes::Bytes;
///
/// let broker = Broker::new();
/// let sub = broker.subscribe(TopicFilter::new("logs/#"), 16, BackpressurePolicy::Block);
/// broker.publish("logs/console", Payload::Raw(Bytes::from_static(b"hello")));
/// broker.publish("metrics/node", Payload::Raw(Bytes::from_static(b"ignored")));
/// assert_eq!(sub.drain().len(), 1);
/// assert_eq!(broker.stats().published, 2);
/// ```
pub struct Broker {
    subscribers: RwLock<Vec<SubscriberEntry>>,
    // Serializes DropOldest pop+push so concurrent publishers cannot
    // interleave into a double-drop.
    drop_oldest_lock: Mutex<()>,
    seq: AtomicU64,
    published: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes_published: AtomicU64,
    decode_errors: AtomicU64,
    // First-seen order; counters are atomics so publish only needs the
    // read lock once the topic exists.
    topics: RwLock<Vec<(String, Arc<TopicCounters>)>>,
    // When set, drops during fan-out are recorded as trace spans with
    // full provenance (which subscriber, which reason).
    tracer: RwLock<Option<Arc<Tracer>>>,
}

impl Broker {
    /// A broker with no subscribers.
    pub fn new() -> Arc<Broker> {
        Arc::new(Broker::default())
    }

    /// Subscribe with a filter, queue capacity, and backpressure policy.
    pub fn subscribe(
        &self,
        filter: TopicFilter,
        capacity: usize,
        policy: BackpressurePolicy,
    ) -> Subscription {
        assert!(capacity > 0, "subscription capacity must be positive");
        let (tx, rx) = bounded(capacity);
        let dropped = Arc::new(AtomicU64::new(0));
        self.subscribers.write().push(SubscriberEntry {
            filter: filter.clone(),
            sender: tx,
            receiver_for_drop_oldest: rx.clone(),
            policy,
            dropped: dropped.clone(),
        });
        Subscription { receiver: rx, dropped, filter }
    }

    /// Attach a tracer: from here on, every drop during fan-out is also
    /// recorded as a trace span naming the subscriber and reason.
    pub fn set_tracer(&self, tracer: Arc<Tracer>) {
        *self.tracer.write() = Some(tracer);
    }

    /// The next envelope sequence number this broker would assign.
    /// Chaos corruption keys on envelope sequence numbers, so replay must
    /// checkpoint and restore this counter exactly.
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Restore the envelope sequence counter (replay seek).  Publishes
    /// after this call continue numbering from `seq`.
    pub fn set_seq(&self, seq: u64) {
        self.seq.store(seq, Ordering::Relaxed);
    }

    /// Publish a payload on a topic, fanning out to matching subscribers.
    /// Returns the number of deliveries.
    pub fn publish(&self, topic: &str, payload: Payload) -> usize {
        self.publish_traced(topic, payload, None)
    }

    /// [`Broker::publish`] with a trace context stamped on the envelope.
    /// Every matching subscriber receives the same context; any drop on
    /// the way records a provenance span against it.
    pub fn publish_traced(
        &self,
        topic: &str,
        payload: Payload,
        trace: Option<TraceContext>,
    ) -> usize {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let bytes = payload.approx_bytes() as u64;
        self.published.fetch_add(1, Ordering::Relaxed);
        self.bytes_published.fetch_add(bytes, Ordering::Relaxed);
        let per_topic = self.topic_counters(topic);
        per_topic.published.fetch_add(1, Ordering::Relaxed);
        per_topic.bytes_published.fetch_add(bytes, Ordering::Relaxed);
        let tracer = self.tracer.read().clone();
        let trace_drop = |ctx: Option<&TraceContext>, reason: DropReason, pattern: &str| {
            if let (Some(t), Some(ctx)) = (tracer.as_deref(), ctx) {
                t.record_drop(ctx, Stage::Transport, reason, &format!("{topic} -> {pattern}"));
            }
        };
        let mut delivered = 0usize;
        let mut saw_closed = false;
        {
            let subs = self.subscribers.read();
            for sub in subs.iter() {
                if sub.is_closed() {
                    if sub.filter.matches(topic) {
                        per_topic.pruned.fetch_add(1, Ordering::Relaxed);
                        trace_drop(
                            trace.as_ref(),
                            DropReason::PrunedReceiver,
                            sub.filter.pattern(),
                        );
                    }
                    saw_closed = true;
                    continue;
                }
                if !sub.filter.matches(topic) {
                    continue;
                }
                let env =
                    Envelope { topic: topic.to_owned(), seq, trace, payload: payload.clone() };
                match sub.policy {
                    BackpressurePolicy::Block => {
                        if sub.sender.send(env).is_ok() {
                            delivered += 1;
                        } else {
                            per_topic.pruned.fetch_add(1, Ordering::Relaxed);
                            trace_drop(
                                trace.as_ref(),
                                DropReason::PrunedReceiver,
                                sub.filter.pattern(),
                            );
                            saw_closed = true;
                        }
                    }
                    BackpressurePolicy::DropNewest => match sub.sender.try_send(env) {
                        Ok(()) => delivered += 1,
                        Err(TrySendError::Full(_)) => {
                            sub.dropped.fetch_add(1, Ordering::Relaxed);
                            self.dropped.fetch_add(1, Ordering::Relaxed);
                            per_topic.queue_full.fetch_add(1, Ordering::Relaxed);
                            trace_drop(trace.as_ref(), DropReason::QueueFull, sub.filter.pattern());
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            per_topic.pruned.fetch_add(1, Ordering::Relaxed);
                            trace_drop(
                                trace.as_ref(),
                                DropReason::PrunedReceiver,
                                sub.filter.pattern(),
                            );
                            saw_closed = true;
                        }
                    },
                    BackpressurePolicy::DropOldest => {
                        let mut env = env;
                        loop {
                            match sub.sender.try_send(env) {
                                Ok(()) => {
                                    delivered += 1;
                                    break;
                                }
                                Err(TrySendError::Full(e)) => {
                                    let _g = self.drop_oldest_lock.lock();
                                    if let Ok(victim) = sub.receiver_for_drop_oldest.try_recv() {
                                        sub.dropped.fetch_add(1, Ordering::Relaxed);
                                        self.dropped.fetch_add(1, Ordering::Relaxed);
                                        per_topic.drop_oldest.fetch_add(1, Ordering::Relaxed);
                                        // Provenance belongs to the evicted
                                        // datum, not the one being pushed.
                                        trace_drop(
                                            victim.trace.as_ref(),
                                            DropReason::DropOldest,
                                            sub.filter.pattern(),
                                        );
                                    }
                                    env = e;
                                }
                                Err(TrySendError::Disconnected(_)) => {
                                    per_topic.pruned.fetch_add(1, Ordering::Relaxed);
                                    trace_drop(
                                        trace.as_ref(),
                                        DropReason::PrunedReceiver,
                                        sub.filter.pattern(),
                                    );
                                    saw_closed = true;
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
        if saw_closed {
            self.prune_closed();
        }
        self.delivered.fetch_add(delivered as u64, Ordering::Relaxed);
        per_topic.delivered.fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }

    fn topic_counters(&self, topic: &str) -> Arc<TopicCounters> {
        if let Some((_, c)) = self.topics.read().iter().find(|(t, _)| t == topic) {
            return c.clone();
        }
        let mut topics = self.topics.write();
        if let Some((_, c)) = topics.iter().find(|(t, _)| t == topic) {
            return c.clone();
        }
        let c = Arc::new(TopicCounters::default());
        topics.push((topic.to_owned(), c.clone()));
        c
    }

    fn prune_closed(&self) {
        self.subscribers.write().retain(|s| !s.is_closed());
    }

    /// Detach `sub` from delivery without consuming it: the write lock
    /// waits out any in-flight publish, and afterwards no new message can
    /// reach the subscription — but everything already queued remains
    /// drainable.  Returns false if `sub` was not attached here.
    pub fn detach(&self, sub: &Subscription) -> bool {
        let mut subs = self.subscribers.write();
        let before = subs.len();
        subs.retain(|s| !Arc::ptr_eq(&s.dropped, &sub.dropped));
        before != subs.len()
    }

    /// Remove subscribers matching a predicate on their filter pattern
    /// (explicit data-path reconfiguration).
    pub fn unsubscribe_where(&self, pred: impl Fn(&TopicFilter) -> bool) -> usize {
        let mut subs = self.subscribers.write();
        let before = subs.len();
        subs.retain(|s| !pred(&s.filter));
        before - subs.len()
    }

    /// Current subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.read().len()
    }

    /// Activity counters.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            bytes_published: self.bytes_published.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
        }
    }

    /// The audited wire-decode path for broker consumers: a malformed
    /// envelope is **counted and skipped** — the error is returned for the
    /// caller to log or trace, never unwrapped.
    pub fn decode_envelope(&self, bytes: &[u8]) -> Result<Envelope, DecodeError> {
        Envelope::decode(bytes).inspect_err(|_| {
            self.decode_errors.fetch_add(1, Ordering::Relaxed);
        })
    }

    /// Count a decode failure observed outside [`Broker::decode_envelope`]
    /// (e.g. a consumer that parses on its own thread).
    pub fn count_decode_error(&self) {
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Per-topic publish/deliver/drop breakdown, in first-publish order.
    pub fn topic_stats(&self) -> Vec<TopicStats> {
        self.topics
            .read()
            .iter()
            .map(|(topic, c)| {
                let queue_full = c.queue_full.load(Ordering::Relaxed);
                let drop_oldest = c.drop_oldest.load(Ordering::Relaxed);
                TopicStats {
                    topic: topic.clone(),
                    published: c.published.load(Ordering::Relaxed),
                    delivered: c.delivered.load(Ordering::Relaxed),
                    dropped: queue_full + drop_oldest,
                    queue_full,
                    drop_oldest,
                    pruned_receiver: c.pruned.load(Ordering::Relaxed),
                    bytes_published: c.bytes_published.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Current queue depth per live subscriber, keyed by filter pattern.
    pub fn queue_depths(&self) -> Vec<(String, usize)> {
        self.subscribers
            .read()
            .iter()
            .filter(|s| !s.is_closed())
            .map(|s| (s.filter.pattern().to_owned(), s.receiver_for_drop_oldest.len()))
            .collect()
    }
}

impl Default for Broker {
    fn default() -> Self {
        Broker {
            subscribers: RwLock::new(Vec::new()),
            drop_oldest_lock: Mutex::new(()),
            seq: AtomicU64::new(0),
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes_published: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            topics: RwLock::new(Vec::new()),
            tracer: RwLock::new(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn raw(n: u8) -> Payload {
        Payload::Raw(Bytes::from(vec![n]))
    }

    #[test]
    fn fan_out_to_matching_subscribers() {
        let b = Broker::new();
        let s1 = b.subscribe(TopicFilter::new("metrics/#"), 16, BackpressurePolicy::Block);
        let s2 = b.subscribe(TopicFilter::new("logs/#"), 16, BackpressurePolicy::Block);
        let s3 = b.subscribe(TopicFilter::all(), 16, BackpressurePolicy::Block);
        let n = b.publish("metrics/node", raw(1));
        assert_eq!(n, 2);
        assert!(s1.try_recv().is_some());
        assert!(s2.try_recv().is_none());
        assert!(s3.try_recv().is_some());
    }

    #[test]
    fn sequence_numbers_increase() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::all(), 16, BackpressurePolicy::Block);
        b.publish("a", raw(0));
        b.publish("a", raw(1));
        let e1 = s.recv().unwrap();
        let e2 = s.recv().unwrap();
        assert!(e2.seq > e1.seq);
        assert_eq!(e1.topic, "a");
    }

    #[test]
    fn drop_newest_counts_drops() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::all(), 2, BackpressurePolicy::DropNewest);
        for i in 0..5 {
            b.publish("t", raw(i));
        }
        assert_eq!(s.dropped(), 3);
        assert_eq!(b.stats().dropped, 3);
        // Oldest two survive.
        let got: Vec<u8> = s
            .drain()
            .iter()
            .map(|e| match &e.payload {
                Payload::Raw(b) => b[0],
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn per_topic_stats_track_publish_deliver_drop() {
        let b = Broker::new();
        let _all = b.subscribe(TopicFilter::all(), 2, BackpressurePolicy::DropNewest);
        for i in 0..4 {
            b.publish("metrics/node", raw(i));
        }
        b.publish("logs/syslog", raw(9));
        let stats = b.topic_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].topic, "metrics/node");
        assert_eq!(stats[0].published, 4);
        assert_eq!(stats[0].delivered, 2);
        assert_eq!(stats[0].dropped, 2);
        assert!(stats[0].bytes_published > 0);
        assert_eq!(stats[1].topic, "logs/syslog");
        assert_eq!(stats[1].published, 1);
        assert_eq!(stats[1].dropped, 1);
        // Per-topic totals reconcile with the aggregate counters.
        let agg = b.stats();
        assert_eq!(stats.iter().map(|t| t.published).sum::<u64>(), agg.published);
        assert_eq!(stats.iter().map(|t| t.dropped).sum::<u64>(), agg.dropped);
        assert_eq!(stats.iter().map(|t| t.delivered).sum::<u64>(), agg.delivered);
    }

    #[test]
    fn per_topic_drop_reasons_are_split() {
        let b = Broker::new();
        let _newest = b.subscribe(TopicFilter::new("a/#"), 1, BackpressurePolicy::DropNewest);
        let _oldest = b.subscribe(TopicFilter::new("b/#"), 1, BackpressurePolicy::DropOldest);
        let gone = b.subscribe(TopicFilter::new("a/#"), 4, BackpressurePolicy::Block);
        drop(gone);
        for i in 0..3 {
            b.publish("a/x", raw(i));
            b.publish("b/x", raw(i));
        }
        let stats = b.topic_stats();
        let a = stats.iter().find(|t| t.topic == "a/x").unwrap();
        let bt = stats.iter().find(|t| t.topic == "b/x").unwrap();
        assert_eq!(a.queue_full, 2);
        assert_eq!(a.drop_oldest, 0);
        assert_eq!(a.pruned_receiver, 1, "first publish hits the dead Block sub");
        assert_eq!(bt.queue_full, 0);
        assert_eq!(bt.drop_oldest, 2);
        assert_eq!(bt.pruned_receiver, 0);
        // The aggregate `dropped` remains backpressure-only on both levels.
        assert_eq!(a.dropped, a.queue_full + a.drop_oldest);
        assert_eq!(stats.iter().map(|t| t.dropped).sum::<u64>(), b.stats().dropped);
    }

    #[test]
    fn traced_publish_stamps_context_and_records_drop_spans() {
        use hpcmon_trace::{Sampler, SpanStatus, Tracer};
        let b = Broker::new();
        let tracer = Arc::new(Tracer::new(Sampler::always()));
        b.set_tracer(tracer.clone());
        let sub = b.subscribe(TopicFilter::all(), 1, BackpressurePolicy::DropNewest);
        let ctx1 = tracer.context_for(0).unwrap();
        let ctx2 = tracer.context_for(1).unwrap();
        assert_eq!(b.publish_traced("t", raw(0), Some(ctx1)), 1);
        // Queue is now full: the second publish drops and records a span.
        assert_eq!(b.publish_traced("t", raw(1), Some(ctx2)), 0);
        let env = sub.try_recv().unwrap();
        assert_eq!(env.trace, Some(ctx1), "context rides the envelope");
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace_id, ctx2.trace_id);
        assert_eq!(spans[0].status, SpanStatus::Dropped(DropReason::QueueFull));
        assert!(spans[0].note.contains("t -> #"), "note names topic and subscriber");
    }

    #[test]
    fn drop_oldest_span_blames_the_evicted_datum() {
        use hpcmon_trace::{Sampler, Tracer};
        let b = Broker::new();
        let tracer = Arc::new(Tracer::new(Sampler::always()));
        b.set_tracer(tracer.clone());
        let sub = b.subscribe(TopicFilter::all(), 1, BackpressurePolicy::DropOldest);
        let victim = tracer.context_for(0).unwrap();
        let survivor = tracer.context_for(1).unwrap();
        b.publish_traced("t", raw(0), Some(victim));
        b.publish_traced("t", raw(1), Some(survivor));
        let spans = tracer.drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace_id, victim.trace_id, "evicted datum owns the drop");
        assert_eq!(spans[0].status.drop_reason(), Some(DropReason::DropOldest));
        assert_eq!(sub.try_recv().unwrap().trace, Some(survivor));
    }

    #[test]
    fn queue_depths_report_backlog() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::new("metrics/#"), 8, BackpressurePolicy::Block);
        b.publish("metrics/node", raw(0));
        b.publish("metrics/node", raw(1));
        let depths = b.queue_depths();
        assert_eq!(depths, vec![(String::from("metrics/#"), 2)]);
        s.drain();
        assert_eq!(b.queue_depths(), vec![(String::from("metrics/#"), 0)]);
    }

    #[test]
    fn drop_oldest_keeps_latest() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::all(), 2, BackpressurePolicy::DropOldest);
        for i in 0..5 {
            b.publish("t", raw(i));
        }
        assert_eq!(s.dropped(), 3);
        let got: Vec<u8> = s
            .drain()
            .iter()
            .map(|e| match &e.payload {
                Payload::Raw(b) => b[0],
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn stats_track_published_and_delivered() {
        let b = Broker::new();
        let _s1 = b.subscribe(TopicFilter::all(), 16, BackpressurePolicy::Block);
        let _s2 = b.subscribe(TopicFilter::all(), 16, BackpressurePolicy::Block);
        b.publish("x", raw(0));
        b.publish("x", raw(1));
        let st = b.stats();
        assert_eq!(st.published, 2);
        assert_eq!(st.delivered, 4);
        assert_eq!(st.dropped, 0);
        assert!(st.bytes_published >= 2);
    }

    #[test]
    fn unsubscribe_where_removes_paths() {
        let b = Broker::new();
        let _s1 = b.subscribe(TopicFilter::new("metrics/#"), 4, BackpressurePolicy::Block);
        let _s2 = b.subscribe(TopicFilter::new("logs/#"), 4, BackpressurePolicy::Block);
        assert_eq!(b.subscriber_count(), 2);
        let removed = b.unsubscribe_where(|f| f.pattern().starts_with("logs"));
        assert_eq!(removed, 1);
        assert_eq!(b.subscriber_count(), 1);
        assert_eq!(b.publish("logs/x", raw(0)), 0);
        assert_eq!(b.publish("metrics/x", raw(0)), 1);
    }

    #[test]
    fn no_subscribers_is_fine() {
        let b = Broker::new();
        assert_eq!(b.publish("anything", raw(9)), 0);
        assert_eq!(b.stats().published, 1);
    }

    #[test]
    fn concurrent_publishers_lose_nothing_with_block() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::all(), 1_024, BackpressurePolicy::Block);
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = b.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    b.publish(&format!("t/{t}"), raw(i as u8));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.drain().len(), 400);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn drain_empties_queue() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::all(), 16, BackpressurePolicy::Block);
        for i in 0..5 {
            b.publish("t", raw(i));
        }
        assert_eq!(s.queued(), 5);
        assert_eq!(s.drain().len(), 5);
        assert_eq!(s.queued(), 0);
        assert!(s.try_recv().is_none());
    }

    #[test]
    fn decode_errors_are_counted_and_skipped() {
        let b = Broker::new();
        assert_eq!(b.stats().decode_errors, 0);
        // A clean envelope decodes without touching the counter.
        let env = Envelope { topic: "t".into(), seq: 0, trace: None, payload: raw(1) };
        let wire = env.encode().unwrap();
        assert_eq!(b.decode_envelope(&wire).unwrap(), env);
        assert_eq!(b.stats().decode_errors, 0);
        // Truncated and bit-flipped forms are counted, never panic.
        assert!(b.decode_envelope(&wire[..wire.len() / 2]).is_err());
        let mut mangled = wire.clone();
        mangled[0] ^= 0x04; // '{' -> '\x7f': structurally broken JSON
        assert!(b.decode_envelope(&mangled).is_err());
        b.count_decode_error();
        assert_eq!(b.stats().decode_errors, 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let b = Broker::new();
        b.subscribe(TopicFilter::all(), 0, BackpressurePolicy::Block);
    }

    #[test]
    fn dropped_subscription_is_pruned_and_never_blocks() {
        let b = Broker::new();
        let s = b.subscribe(TopicFilter::all(), 1, BackpressurePolicy::Block);
        drop(s);
        assert_eq!(b.subscriber_count(), 1);
        // A dead Block subscriber with a full queue must not stall
        // publishers; it is skipped and pruned instead.
        b.publish("t", raw(0));
        b.publish("t", raw(1));
        assert_eq!(b.subscriber_count(), 0);
    }
}
