//! Line-oriented log transport.
//!
//! "The only standard is use of some version of syslog for transport of
//! log messages" (paper §IV-B).  This module renders [`LogRecord`]s to the
//! canonical single-line format and parses them back, tolerating the kinds
//! of real-world damage the sites describe: unknown severities, missing
//! template ids, and junk lines (which are counted, not silently skipped).

use hpcmon_metrics::{CompId, CompKind, LogRecord, Severity, Ts};

/// Render a record to one transport line.
/// Format: `<ts_ms> <SEV> <kind>/<index> <source>: <message>`, with an
/// optional ` #t<id>` template suffix.
pub fn render_line(rec: &LogRecord) -> String {
    match rec.template {
        Some(t) => format!("{} #t{}", rec.render(), t),
        None => rec.render(),
    }
}

/// Outcome of parsing a batch of lines.
#[derive(Debug, Default)]
pub struct ParseReport {
    /// Successfully parsed records.
    pub records: Vec<LogRecord>,
    /// Lines that could not be parsed (kept for forensics, per the paper's
    /// "new or infrequent events may be missed" warning).
    pub rejected: Vec<String>,
}

/// Parse one line in the canonical format.
pub fn parse_line(line: &str) -> Option<LogRecord> {
    // Split off an optional template suffix.
    let (body, template) = match line.rfind(" #t") {
        Some(pos) => {
            let (b, t) = line.split_at(pos);
            match t[3..].parse::<u32>() {
                Ok(id) => (b, Some(id)),
                Err(_) => (line, None),
            }
        }
        None => (line, None),
    };
    let mut parts = body.splitn(4, ' ');
    let ts: u64 = parts.next()?.parse().ok()?;
    let severity = Severity::parse(parts.next()?)?;
    let comp = parse_comp(parts.next()?)?;
    let rest = parts.next()?;
    let (source, message) = rest.split_once(": ")?;
    let mut rec = LogRecord::new(Ts(ts), comp, severity, source, message);
    rec.template = template;
    Some(rec)
}

/// Parse a whole batch, partitioning good and bad lines.
pub fn parse_lines<'a>(lines: impl Iterator<Item = &'a str>) -> ParseReport {
    let mut report = ParseReport::default();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(rec) => report.records.push(rec),
            None => report.rejected.push(line.to_owned()),
        }
    }
    report
}

fn parse_comp(s: &str) -> Option<CompId> {
    let (kind_s, idx_s) = s.split_once('/')?;
    let index: u32 = idx_s.parse().ok()?;
    let kind = CompKind::ALL.iter().copied().find(|k| k.label() == kind_s)?;
    Some(CompId { kind, index })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> LogRecord {
        LogRecord::new(Ts(12_345), CompId::node(7), Severity::Error, "hsn", "link down")
            .with_template(3)
    }

    #[test]
    fn round_trip_with_template() {
        let r = rec();
        let line = render_line(&r);
        assert_eq!(line, "12345 ERROR node/7 hsn: link down #t3");
        let back = parse_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trip_without_template() {
        let mut r = rec();
        r.template = None;
        let line = render_line(&r);
        let back = parse_line(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn message_with_colons_survives() {
        let r =
            LogRecord::new(Ts(1), CompId::SYSTEM, Severity::Info, "console", "mount: /scratch: ok");
        let back = parse_line(&render_line(&r)).unwrap();
        assert_eq!(back.message, "mount: /scratch: ok");
    }

    #[test]
    fn junk_lines_are_rejected_not_dropped() {
        let input = "12345 ERROR node/7 hsn: link down #t3\n\
                     this is not a log line\n\
                     99 NOPE node/1 x: y\n\
                     \n\
                     50 WARN ost/3 fs: slow";
        let report = parse_lines(input.lines());
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.rejected.len(), 2);
        assert!(report.rejected[0].contains("not a log line"));
    }

    #[test]
    fn all_comp_kinds_parse() {
        for kind in CompKind::ALL {
            let c = CompId { kind, index: 9 };
            let r = LogRecord::new(Ts(0), c, Severity::Debug, "s", "m");
            assert_eq!(parse_line(&render_line(&r)).unwrap().comp, c);
        }
    }

    #[test]
    fn bad_component_rejected() {
        assert!(parse_line("1 INFO widget/3 s: m").is_none());
        assert!(parse_line("1 INFO node/x s: m").is_none());
        assert!(parse_line("1 INFO node s: m").is_none());
    }

    #[test]
    fn message_ending_in_hash_t_like_text() {
        // A message that happens to end in " #tXYZ" where XYZ is not a
        // number must not lose its tail.
        let r = LogRecord::new(Ts(1), CompId::node(0), Severity::Info, "s", "weird #tail");
        let back = parse_line(&render_line(&r)).unwrap();
        assert_eq!(back.message, "weird #tail");
        assert_eq!(back.template, None);
    }
}
