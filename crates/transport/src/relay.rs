//! Store-and-forward relay between brokers.
//!
//! Cray's PMDB "can be stored separately via ERD forwarding capabilities"
//! (paper §IV-C); sites likewise forward syslog off-system.  [`Relay`]
//! plays that role: a worker thread consumes a subscription on a source
//! broker and republishes every envelope into a destination broker,
//! optionally rewriting the topic prefix (so a site can mount a remote
//! machine's stream under `remote/<site>/...`).

use crate::broker::{BackpressurePolicy, Broker, Subscription};
use crate::topic::TopicFilter;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running relay.  Dropping it stops the worker.
pub struct Relay {
    stop: Arc<AtomicBool>,
    forwarded: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
    // Kept alive here (shared with the worker) so `stop` can detach the
    // subscription from the source broker and re-drain it after the join:
    // a publish racing the stop may deliver into the queue after the
    // worker's own final drain — those stragglers must be forwarded, not
    // silently lost.
    sub: Arc<Subscription>,
    src: Arc<Broker>,
    dst: Arc<Broker>,
    prefix: String,
}

fn forward(dst: &Broker, prefix: &str, env: crate::message::Envelope, forwarded: &AtomicU64) {
    let topic = if prefix.is_empty() { env.topic } else { format!("{prefix}/{}", env.topic) };
    dst.publish(&topic, env.payload);
    forwarded.fetch_add(1, Ordering::Relaxed);
}

impl Relay {
    /// Start forwarding messages matching `filter` from `src` to `dst`.
    /// If `prefix` is non-empty, forwarded topics become
    /// `<prefix>/<original topic>`.
    pub fn start(src: &Arc<Broker>, dst: Arc<Broker>, filter: TopicFilter, prefix: &str) -> Relay {
        // The relay must not lose data between brokers: Block policy with a
        // deep queue is the store-and-forward buffer.
        let sub: Arc<Subscription> =
            Arc::new(src.subscribe(filter, 4_096, BackpressurePolicy::Block));
        let stop = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));
        let prefix = prefix.to_owned();
        let stop2 = stop.clone();
        let forwarded2 = forwarded.clone();
        let sub2 = sub.clone();
        let dst2 = dst.clone();
        let prefix2 = prefix.clone();
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                // Poll with a short timeout so stop requests are honored.
                match sub2.try_recv() {
                    Some(env) => forward(&dst2, &prefix2, env, &forwarded2),
                    None => std::thread::sleep(std::time::Duration::from_millis(1)),
                }
            }
            // Drain what is left so a graceful stop is lossless.
            for env in sub2.drain() {
                forward(&dst2, &prefix2, env, &forwarded2);
            }
        });
        Relay { stop, forwarded, handle: Some(handle), sub, src: src.clone(), dst, prefix }
    }

    /// Messages forwarded so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Stop the worker, drain in-flight messages, and return the forwarded
    /// count.  Every message the source broker delivered to this relay
    /// before the stop completed is forwarded and counted.
    pub fn stop(mut self) -> u64 {
        self.stop_inner();
        self.forwarded()
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
            // The worker's final drain can race a concurrent publish: the
            // broker delivers into our (still-subscribed) queue after that
            // drain returned empty, and the message would be lost with its
            // count understated.  Detach first — the broker's write lock
            // waits out in-flight publishes, after which nothing new can
            // arrive — then drain what remains.  Every message the source
            // delivered to this relay is thereby forwarded and counted.
            self.src.detach(&self.sub);
            for env in self.sub.drain() {
                forward(&self.dst, &self.prefix, env, &self.forwarded);
            }
        }
    }
}

impl Drop for Relay {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Payload;
    use bytes::Bytes;

    fn raw(n: u8) -> Payload {
        Payload::Raw(Bytes::from(vec![n]))
    }

    #[test]
    fn forwards_matching_messages() {
        let src = Broker::new();
        let dst = Broker::new();
        let sink = dst.subscribe(TopicFilter::all(), 1_024, BackpressurePolicy::Block);
        let relay = Relay::start(&src, dst.clone(), TopicFilter::new("logs/#"), "");
        for i in 0..50 {
            src.publish("logs/console", raw(i));
            src.publish("metrics/node", raw(i)); // filtered out
        }
        let n = relay.stop();
        assert_eq!(n, 50);
        let got = sink.drain();
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|e| e.topic == "logs/console"));
    }

    #[test]
    fn prefix_rewrites_topics() {
        let src = Broker::new();
        let dst = Broker::new();
        let sink = dst.subscribe(TopicFilter::all(), 64, BackpressurePolicy::Block);
        let relay = Relay::start(&src, dst.clone(), TopicFilter::all(), "remote/siteA");
        src.publish("logs/console", raw(1));
        relay.stop();
        let got = sink.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].topic, "remote/siteA/logs/console");
    }

    #[test]
    fn drop_stops_worker() {
        let src = Broker::new();
        let dst = Broker::new();
        {
            let _relay = Relay::start(&src, dst.clone(), TopicFilter::all(), "");
            src.publish("x", raw(0));
        } // drop joins the thread without hanging
        assert!(src.subscriber_count() <= 1);
    }

    #[test]
    fn stop_racing_a_publisher_never_undercounts_or_drops() {
        // Regression: a publish concurrent with `stop` could deliver into
        // the relay queue after the worker's final drain — the message was
        // lost and the returned count understated.  Now `stop` detaches
        // the subscription (waiting out in-flight publishes) and drains it
        // after the join, so every message the source broker delivered to
        // the relay is forwarded: the count must exactly match both what
        // the destination received and what the source delivered to us.
        for round in 0..25 {
            let src = Broker::new();
            let dst = Broker::new();
            let sink = dst.subscribe(TopicFilter::all(), 4_096, BackpressurePolicy::Block);
            let relay = Relay::start(&src, dst.clone(), TopicFilter::all(), "");
            let src2 = src.clone();
            let publisher = std::thread::spawn(move || {
                for i in 0..200u32 {
                    src2.publish("logs/x", raw(i as u8));
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
            // Stop while the publisher is (very likely) still running.
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            let forwarded = relay.stop();
            publisher.join().unwrap();
            let received = sink.drain().len() as u64;
            assert_eq!(
                forwarded, received,
                "round {round}: count must match what the destination got"
            );
            // The relay's subscription was the only subscriber on src, and
            // after the detach inside `stop` no further delivery could
            // land: everything src delivered was forwarded.
            assert_eq!(
                src.stats().delivered,
                forwarded,
                "round {round}: every message delivered to the relay must be forwarded"
            );
        }
    }

    #[test]
    fn chained_relays_compose() {
        // src -> mid -> dst, as in SMW -> site store -> offsite.
        let src = Broker::new();
        let mid = Broker::new();
        let dst = Broker::new();
        let sink = dst.subscribe(TopicFilter::all(), 64, BackpressurePolicy::Block);
        let r1 = Relay::start(&src, mid.clone(), TopicFilter::all(), "");
        let r2 = Relay::start(&mid, dst.clone(), TopicFilter::all(), "archive");
        for i in 0..10 {
            src.publish("metrics/power", raw(i));
        }
        r1.stop();
        r2.stop();
        let got = sink.drain();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].topic, "archive/metrics/power");
    }
}
