//! Circuit breaker + bounded spill queue in front of the store's
//! `insert_frame`.
//!
//! While shard writes fail, frames spill to a bounded in-memory WAL instead
//! of being dropped; the breaker opens, backs off, and periodically
//! half-opens to probe.  A successful probe drains the spill *in arrival
//! order* before admitting new work, so no accepted datum is lost while the
//! breaker is closed — and when the queue overflows, the evicted
//! (drop-oldest) victims are handed back to the caller so their loss is
//! recorded with provenance, never silent.

use hpcmon_metrics::StateHash;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Breaker state, in the classic three-state scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Writes flow straight through.
    Closed,
    /// Writes spill; a probe is scheduled.
    Open,
    /// A probe write is in flight this tick.
    HalfOpen,
}

impl BreakerState {
    /// Numeric encoding for the `store.breaker_state` gauge:
    /// 0 closed, 1 half-open, 2 open.
    pub fn as_gauge(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// What one [`IngestBreaker::submit`] call did.
#[derive(Debug)]
pub struct SubmitReport<T> {
    /// Items successfully written this call (drained spill + the offered
    /// item when it went through).
    pub inserted: usize,
    /// Whether the offered item went to the spill queue.
    pub spilled: bool,
    /// Oldest items evicted to make room (the caller must record their
    /// loss: they are gone).
    pub evicted: Vec<T>,
}

/// Circuit breaker owning a bounded FIFO spill queue of `T`.
#[derive(Debug)]
pub struct IngestBreaker<T> {
    state: BreakerState,
    spill: VecDeque<T>,
    capacity: usize,
    dropped: u64,
    /// Backoff applied after the next probe failure, in ticks.
    backoff: u64,
    probe_at: u64,
    max_backoff: u64,
}

impl<T> IngestBreaker<T> {
    /// Breaker with a spill queue holding at most `capacity` items and
    /// probe backoff capped at `max_backoff_ticks`.
    pub fn new(capacity: usize, max_backoff_ticks: u64) -> IngestBreaker<T> {
        IngestBreaker {
            state: BreakerState::Closed,
            spill: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            backoff: 1,
            probe_at: 0,
            max_backoff: max_backoff_ticks.max(1),
        }
    }

    /// Offer one item at `tick`; `write` attempts the actual store write
    /// (all-or-nothing per item).  Depending on state this writes through,
    /// spills, or probes-and-drains.  The report says what happened.
    pub fn submit<E>(
        &mut self,
        item: T,
        tick: u64,
        mut write: impl FnMut(&T) -> Result<(), E>,
    ) -> SubmitReport<T> {
        let mut report = SubmitReport { inserted: 0, spilled: false, evicted: Vec::new() };
        match self.state {
            BreakerState::Closed => {
                if write(&item).is_ok() {
                    report.inserted = 1;
                } else {
                    // Trip: probe next tick, then back off 1 → 2 → 4 …
                    self.state = BreakerState::Open;
                    self.probe_at = tick + 1;
                    self.backoff = 2.min(self.max_backoff);
                    self.push_spill(item, &mut report);
                }
            }
            BreakerState::Open if tick < self.probe_at => {
                self.push_spill(item, &mut report);
            }
            BreakerState::Open | BreakerState::HalfOpen => {
                // Probe due: drain the spill from the front (arrival order),
                // then the new item — it is the newest, so order holds.
                self.state = BreakerState::HalfOpen;
                while let Some(front) = self.spill.front() {
                    if write(front).is_ok() {
                        self.spill.pop_front();
                        report.inserted += 1;
                    } else {
                        self.reopen(tick);
                        self.push_spill(item, &mut report);
                        return report;
                    }
                }
                if write(&item).is_ok() {
                    report.inserted += 1;
                    self.state = BreakerState::Closed;
                    self.backoff = 1;
                } else {
                    self.reopen(tick);
                    self.push_spill(item, &mut report);
                }
            }
        }
        report
    }

    /// Probe failed: back off exponentially and reopen.
    fn reopen(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        let applied = self.backoff.clamp(1, self.max_backoff);
        self.probe_at = tick + applied;
        self.backoff = (applied * 2).min(self.max_backoff);
    }

    fn push_spill(&mut self, item: T, report: &mut SubmitReport<T>) {
        if self.spill.len() >= self.capacity {
            if let Some(victim) = self.spill.pop_front() {
                self.dropped += 1;
                report.evicted.push(victim);
            }
        }
        self.spill.push_back(item);
        report.spilled = true;
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Items currently spilled.
    pub fn depth(&self) -> usize {
        self.spill.len()
    }

    /// Total items evicted (drop-oldest) over the breaker's lifetime.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The spilled items in arrival order, for checkpointing (the item type
    /// is generic, so the caller serializes them alongside
    /// [`IngestBreaker::control_snapshot`]).
    pub fn spill_items(&self) -> impl Iterator<Item = &T> {
        self.spill.iter()
    }

    /// Capture the breaker's control state (everything except the queued
    /// items) for a flight-recorder checkpoint.
    pub fn control_snapshot(&self) -> BreakerSnapshot {
        BreakerSnapshot {
            state: self.state,
            capacity: self.capacity,
            dropped: self.dropped,
            backoff: self.backoff,
            probe_at: self.probe_at,
            max_backoff: self.max_backoff,
        }
    }

    /// Rebuild a breaker from a control snapshot plus the checkpointed
    /// spill contents (in arrival order).
    pub fn restore(snap: BreakerSnapshot, items: Vec<T>) -> IngestBreaker<T> {
        IngestBreaker {
            state: snap.state,
            spill: items.into(),
            capacity: snap.capacity,
            dropped: snap.dropped,
            backoff: snap.backoff,
            probe_at: snap.probe_at,
            max_backoff: snap.max_backoff,
        }
    }

    /// 64-bit digest of the breaker control state and queue depth, for
    /// per-tick replay verification.
    pub fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0xB2);
        h.u64(match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        })
        .usize(self.spill.len())
        .u64(self.dropped)
        .u64(self.backoff)
        .u64(self.probe_at);
        h.finish()
    }
}

/// Serializable breaker control state (the spill contents travel
/// separately: the item type is generic).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    state: BreakerState,
    capacity: usize,
    dropped: u64,
    backoff: u64,
    probe_at: u64,
    max_backoff: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted store: fails while `failing` is true.
    struct FakeStore {
        failing: bool,
        written: Vec<u32>,
    }

    impl FakeStore {
        fn write(&mut self, v: &u32) -> Result<(), ()> {
            if self.failing {
                Err(())
            } else {
                self.written.push(*v);
                Ok(())
            }
        }
    }

    #[test]
    fn closed_writes_through() {
        let mut store = FakeStore { failing: false, written: Vec::new() };
        let mut br: IngestBreaker<u32> = IngestBreaker::new(8, 4);
        let r = br.submit(1, 0, |v| store.write(v));
        assert_eq!(r.inserted, 1);
        assert!(!r.spilled && r.evicted.is_empty());
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(store.written, vec![1]);
    }

    #[test]
    fn trip_spill_probe_drain_preserves_order() {
        let mut store = FakeStore { failing: true, written: Vec::new() };
        let mut br: IngestBreaker<u32> = IngestBreaker::new(8, 4);
        // Tick 0: trip; item spills.
        let r = br.submit(1, 0, |v| store.write(v));
        assert!(r.spilled && r.inserted == 0);
        assert_eq!(br.state(), BreakerState::Open);
        // Tick 1: probe due but still failing — backoff doubles to 2.
        let r = br.submit(2, 1, |v| store.write(v));
        assert!(r.spilled);
        assert_eq!(br.state(), BreakerState::Open);
        // Tick 2: probe not due; spills without touching the store.
        let r = br.submit(3, 2, |v| store.write(v));
        assert!(r.spilled && r.inserted == 0);
        assert_eq!(br.depth(), 3);
        // Tick 3: store heals; probe drains everything in arrival order.
        store.failing = false;
        let r = br.submit(4, 3, |v| store.write(v));
        assert_eq!(r.inserted, 4);
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.depth(), 0);
        assert_eq!(store.written, vec![1, 2, 3, 4], "arrival order preserved");
        assert_eq!(br.dropped(), 0);
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut store = FakeStore { failing: true, written: Vec::new() };
        let mut br: IngestBreaker<u32> = IngestBreaker::new(64, 4);
        br.submit(0, 0, |v| store.write(v)); // trip; probe at 1
        let mut probes = Vec::new();
        for tick in 1..20 {
            let before = store.failing; // always true
            let _ = before;
            let attempted = br.state() == BreakerState::Open && {
                let r = br.submit(tick, tick as u64, |v| store.write(v));
                let _ = r;
                true
            };
            if attempted && br.state() == BreakerState::Open {
                probes.push(tick);
            }
        }
        // Probes happened at 1 (backoff→2), 3 (→4), 7 (→4, capped), 11, 15, 19.
        assert!(br.depth() > 0);
        assert_eq!(br.state(), BreakerState::Open);
    }

    #[test]
    fn overflow_evicts_oldest_with_provenance() {
        let mut store = FakeStore { failing: true, written: Vec::new() };
        let mut br: IngestBreaker<u32> = IngestBreaker::new(2, 64);
        br.submit(10, 0, |v| store.write(v));
        // Backoff is now 2 (tick-1 probe would double it); submit within the
        // closed window so everything spills.
        let r = br.submit(11, 0, |v| store.write(v));
        assert!(r.evicted.is_empty());
        let r = br.submit(12, 0, |v| store.write(v));
        assert_eq!(r.evicted, vec![10], "oldest evicted first");
        let r = br.submit(13, 0, |v| store.write(v));
        assert_eq!(r.evicted, vec![11]);
        assert_eq!(br.dropped(), 2);
        assert_eq!(br.depth(), 2);
        // Heal: the two survivors drain in order.
        store.failing = false;
        let r = br.submit(14, 5, |v| store.write(v));
        assert_eq!(r.inserted, 3);
        assert_eq!(store.written, vec![12, 13, 14]);
    }

    #[test]
    fn gauge_encoding() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0.0);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 1.0);
        assert_eq!(BreakerState::Open.as_gauge(), 2.0);
    }
}
