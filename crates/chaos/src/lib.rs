//! Fault injection for the monitoring plane — and the supervision
//! machinery that survives it.
//!
//! The paper's sites learned that monitoring must keep working *while the
//! system it watches is failing*: collectors hang, transports stall, and
//! stores fill up at the worst possible moments.  `hpcmon-sim` already
//! breaks the simulated cluster; this crate breaks the *observers*, on a
//! deterministic, seeded schedule, so the pipeline's self-healing paths are
//! exercised under test instead of discovered in production:
//!
//! * [`ChaosPlan`] / [`ChaosEngine`] — tick-keyed fault script and the
//!   seeded engine that activates it (collector panic/hang/slow, broker
//!   topic stall, envelope corruption, shard write failure, gateway worker
//!   death).  Same seed + same plan ⇒ bit-identical damage at any worker
//!   count.
//! * [`CollectorSupervisor`] — quarantine with exponential-backoff
//!   re-probe (1 → 2 → 4 … ticks, capped); quarantined collectors are
//!   handed to the deadman detector so the gap is reported, never silent.
//! * [`IngestBreaker`] — circuit breaker + bounded spill queue in front of
//!   the store: on write failure frames spill to an in-memory WAL with
//!   drop-oldest provenance, drained in order when a half-open probe
//!   succeeds.

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod spill;
pub mod supervisor;

pub use engine::{
    ChaosEngine, ChaosSnapshot, CollectorFault, DiskInjectedCounts, InjectedCounts,
    WanInjectedCounts,
};
pub use fault::{ChaosFault, ChaosPlan, ScheduledFault};
pub use spill::{BreakerSnapshot, BreakerState, IngestBreaker, SubmitReport};
pub use supervisor::{CollectorSupervisor, SupervisorConfig, SupervisorSnapshot};
