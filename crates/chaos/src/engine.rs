//! The seeded chaos engine: activates scheduled faults at tick boundaries
//! and answers point queries from the pipeline ("is this collector wedged
//! right now?", "does this envelope get corrupted?").
//!
//! Everything here is deterministic.  Durations are measured in ticks and
//! decay at tick boundaries; per-envelope corruption decisions hash the
//! broker sequence number (allocated deterministically regardless of worker
//! count) against the engine seed, so the same seed and plan reproduce the
//! same damage bit-for-bit at any parallelism.

use crate::fault::{ChaosFault, ChaosPlan};
use hpcmon_metrics::StateHash;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The fault currently active on one collector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CollectorFault {
    /// Panics when invoked this tick.
    Panic,
    /// Exceeds its budget and produces nothing.
    Hang,
    /// Runs this many times slower than normal.
    Slow(f64),
}

/// Per-kind counts of injected fault events.
///
/// Scheduled faults count once at activation; `envelope_corrupt` counts
/// each envelope actually corrupted (the per-envelope rate draw), and
/// `gateway_worker_death` counts each death delivered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedCounts {
    /// Collector panics activated.
    pub collector_panic: u64,
    /// Collector hangs activated.
    pub collector_hang: u64,
    /// Collector slowdowns activated.
    pub collector_slow: u64,
    /// Broker topic stalls activated.
    pub topic_stall: u64,
    /// Envelopes actually corrupted.
    pub envelope_corrupt: u64,
    /// Store shard write-fail windows activated.
    pub store_write_fail: u64,
    /// Gateway worker deaths delivered.
    pub gateway_worker_death: u64,
}

impl InjectedCounts {
    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.collector_panic
            + self.collector_hang
            + self.collector_slow
            + self.topic_stall
            + self.envelope_corrupt
            + self.store_write_fail
            + self.gateway_worker_death
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct ActiveCollectorFault {
    fault: CollectorFault,
    expires_at: u64,
}

/// Per-kind counts of injected WAN-link fault windows (federation plane).
/// Kept separate from [`InjectedCounts`] so single-site pipelines — whose
/// telemetry mirrors `InjectedCounts` field-for-field — are untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WanInjectedCounts {
    /// Partition windows activated.
    pub partition: u64,
    /// Added-latency windows activated.
    pub delay: u64,
    /// Bandwidth-squeeze windows activated.
    pub bandwidth: u64,
}

impl WanInjectedCounts {
    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.partition + self.delay + self.bandwidth
    }
}

/// Per-kind counts of injected storage-medium fault events (durability
/// plane).  Kept separate from [`InjectedCounts`] for the same reason as
/// [`WanInjectedCounts`]: pipelines without a durability plane keep their
/// existing telemetry shape untouched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskInjectedCounts {
    /// Write-fail (EIO) windows activated.
    pub write_fail: u64,
    /// Torn-write arms delivered.
    pub torn_write: u64,
    /// Corrupt-byte strikes delivered.
    pub corrupt_byte: u64,
    /// Disk-full (ENOSPC) windows activated.
    pub full: u64,
}

impl DiskInjectedCounts {
    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.write_fail + self.torn_write + self.corrupt_byte + self.full
    }
}

/// The WAN faults active on one member site's link.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct ActiveWanFault {
    /// Partition window end (tick), if partitioned.
    partitioned_until: Option<u64>,
    /// (added one-way latency in ticks, window end).
    delay: Option<(u64, u64)>,
    /// (bytes-per-tick cap, window end).
    bandwidth: Option<(u64, u64)>,
}

impl ActiveWanFault {
    fn expire(&mut self, tick: u64) {
        if self.partitioned_until.is_some_and(|t| t <= tick) {
            self.partitioned_until = None;
        }
        if self.delay.is_some_and(|(_, t)| t <= tick) {
            self.delay = None;
        }
        if self.bandwidth.is_some_and(|(_, t)| t <= tick) {
            self.bandwidth = None;
        }
    }

    fn is_clear(&self) -> bool {
        self.partitioned_until.is_none() && self.delay.is_none() && self.bandwidth.is_none()
    }
}

/// Complete serializable state of the chaos engine at a tick boundary.
/// The active-fault maps and the plan cursor round-trip exactly, so a
/// restored engine makes the same corruption draws and expiry decisions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosSnapshot {
    seed: u64,
    plan: ChaosPlan,
    tick: u64,
    collectors: BTreeMap<String, ActiveCollectorFault>,
    topics: BTreeMap<String, u64>,
    corrupt: Option<(f64, u64)>,
    // Vec-of-pairs rather than the engine's BTreeMap: the serde layer only
    // supports string map keys.
    shards: Vec<(usize, u64)>,
    pending_worker_deaths: u64,
    counts: InjectedCounts,
    wan: BTreeMap<String, ActiveWanFault>,
    wan_counts: WanInjectedCounts,
    // Disk-fault fields postdate the snapshot format; defaults keep older
    // recordings loadable.
    #[serde(default)]
    disk_write_fail_until: Option<u64>,
    #[serde(default)]
    disk_full_until: Option<u64>,
    #[serde(default)]
    pending_torn: Vec<u64>,
    #[serde(default)]
    pending_corrupt: Vec<u64>,
    #[serde(default)]
    disk_counts: DiskInjectedCounts,
}

/// Deterministic fault injector for the monitoring plane.
#[derive(Debug)]
pub struct ChaosEngine {
    seed: u64,
    plan: ChaosPlan,
    tick: u64,
    collectors: BTreeMap<String, ActiveCollectorFault>,
    topics: BTreeMap<String, u64>,
    corrupt: Option<(f64, u64)>,
    shards: BTreeMap<usize, u64>,
    pending_worker_deaths: u64,
    counts: InjectedCounts,
    wan: BTreeMap<String, ActiveWanFault>,
    wan_counts: WanInjectedCounts,
    disk_write_fail_until: Option<u64>,
    disk_full_until: Option<u64>,
    /// Seeds for torn-write arms due this tick, drawn at activation.
    pending_torn: Vec<u64>,
    /// Seeds for corrupt-byte strikes due this tick, drawn at activation.
    pending_corrupt: Vec<u64>,
    disk_counts: DiskInjectedCounts,
}

/// SplitMix64 finalizer — the same mixer the simulator's `Rng` uses, inlined
/// so a corruption decision is a pure function of `(seed, seq)`.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaosEngine {
    /// Engine over `plan`, with `seed` keying per-envelope decisions.
    pub fn new(seed: u64, plan: ChaosPlan) -> ChaosEngine {
        ChaosEngine {
            seed,
            plan,
            tick: 0,
            collectors: BTreeMap::new(),
            topics: BTreeMap::new(),
            corrupt: None,
            shards: BTreeMap::new(),
            pending_worker_deaths: 0,
            counts: InjectedCounts::default(),
            wan: BTreeMap::new(),
            wan_counts: WanInjectedCounts::default(),
            disk_write_fail_until: None,
            disk_full_until: None,
            pending_torn: Vec::new(),
            pending_corrupt: Vec::new(),
            disk_counts: DiskInjectedCounts::default(),
        }
    }

    /// Advance to `tick`: expire elapsed faults, then activate everything
    /// scheduled at or before it.  Call once per tick, before the collect
    /// stage.
    pub fn begin_tick(&mut self, tick: u64) {
        self.tick = tick;
        self.collectors.retain(|_, f| f.expires_at > tick);
        self.topics.retain(|_, expires| *expires > tick);
        if let Some((_, expires)) = self.corrupt {
            if expires <= tick {
                self.corrupt = None;
            }
        }
        self.shards.retain(|_, expires| *expires > tick);
        if self.disk_write_fail_until.is_some_and(|t| t <= tick) {
            self.disk_write_fail_until = None;
        }
        if self.disk_full_until.is_some_and(|t| t <= tick) {
            self.disk_full_until = None;
        }
        self.wan.retain(|_, f| {
            f.expire(tick);
            !f.is_clear()
        });
        for scheduled in self.plan.pop_due(tick) {
            match scheduled.fault {
                ChaosFault::CollectorPanic { collector } => {
                    self.counts.collector_panic += 1;
                    self.collectors.insert(
                        collector,
                        ActiveCollectorFault { fault: CollectorFault::Panic, expires_at: tick + 1 },
                    );
                }
                ChaosFault::CollectorHang { collector, ticks } => {
                    self.counts.collector_hang += 1;
                    self.collectors.insert(
                        collector,
                        ActiveCollectorFault {
                            fault: CollectorFault::Hang,
                            expires_at: tick + ticks.max(1),
                        },
                    );
                }
                ChaosFault::CollectorSlow { collector, factor, ticks } => {
                    self.counts.collector_slow += 1;
                    self.collectors.insert(
                        collector,
                        ActiveCollectorFault {
                            fault: CollectorFault::Slow(factor),
                            expires_at: tick + ticks.max(1),
                        },
                    );
                }
                ChaosFault::BrokerTopicStall { topic, ticks } => {
                    self.counts.topic_stall += 1;
                    self.topics.insert(topic, tick + ticks.max(1));
                }
                ChaosFault::EnvelopeCorrupt { rate, ticks } => {
                    self.corrupt = Some((rate.clamp(0.0, 1.0), tick + ticks.max(1)));
                }
                ChaosFault::StoreWriteFail { shard, ticks } => {
                    self.counts.store_write_fail += 1;
                    self.shards.insert(shard, tick + ticks.max(1));
                }
                ChaosFault::GatewayWorkerDeath => {
                    self.pending_worker_deaths += 1;
                }
                ChaosFault::WanPartition { site, ticks } => {
                    self.wan_counts.partition += 1;
                    self.wan.entry(site).or_default().partitioned_until = Some(tick + ticks.max(1));
                }
                ChaosFault::WanDelay { site, added_ticks, ticks } => {
                    self.wan_counts.delay += 1;
                    self.wan.entry(site).or_default().delay =
                        Some((added_ticks, tick + ticks.max(1)));
                }
                ChaosFault::WanBandwidth { site, bytes_per_tick, ticks } => {
                    self.wan_counts.bandwidth += 1;
                    self.wan.entry(site).or_default().bandwidth =
                        Some((bytes_per_tick, tick + ticks.max(1)));
                }
                ChaosFault::DiskWriteFail { ticks } => {
                    self.disk_counts.write_fail += 1;
                    self.disk_write_fail_until = Some(tick + ticks.max(1));
                }
                ChaosFault::DiskFull { ticks } => {
                    self.disk_counts.full += 1;
                    self.disk_full_until = Some(tick + ticks.max(1));
                }
                ChaosFault::DiskTornWrite => {
                    self.disk_counts.torn_write += 1;
                    self.pending_torn.push(mix64(self.seed ^ tick.rotate_left(23) ^ 0xD15C_70A1));
                }
                ChaosFault::DiskCorruptByte => {
                    self.disk_counts.corrupt_byte += 1;
                    self.pending_corrupt
                        .push(mix64(self.seed ^ tick.rotate_left(29) ^ 0xD15C_C0DE));
                }
            }
        }
    }

    /// The fault active on the named collector this tick, if any.
    pub fn collector_fault(&self, name: &str) -> Option<CollectorFault> {
        self.collectors.get(name).map(|f| f.fault)
    }

    /// Whether publishes on `topic` are stalled this tick.
    pub fn topic_stalled(&self, topic: &str) -> bool {
        self.topics.contains_key(topic)
    }

    /// Corruption decision for the envelope with broker sequence `seq`.
    /// `Some(bits)` means corrupt it, with `bits` a deterministic value the
    /// caller uses to pick which bit to flip.  Counts each hit.
    pub fn corruption(&mut self, seq: u64) -> Option<u64> {
        let (rate, _) = self.corrupt?;
        let bits = mix64(self.seed ^ seq.rotate_left(17));
        let draw = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if draw < rate {
            self.counts.envelope_corrupt += 1;
            Some(mix64(bits))
        } else {
            None
        }
    }

    /// Whether writes to `shard` fail this tick.
    pub fn shard_failing(&self, shard: usize) -> bool {
        self.shards.contains_key(&shard)
    }

    /// Shards failing this tick, ascending.
    pub fn failing_shards(&self) -> Vec<usize> {
        self.shards.keys().copied().collect()
    }

    /// Take (and count) the gateway worker deaths due this tick.
    pub fn take_worker_deaths(&mut self) -> u64 {
        let n = self.pending_worker_deaths;
        self.pending_worker_deaths = 0;
        self.counts.gateway_worker_death += n;
        n
    }

    /// Whether durability-medium appends fail (EIO) this tick.
    pub fn disk_write_failing(&self) -> bool {
        self.disk_write_fail_until.is_some()
    }

    /// Whether the durability medium reports ENOSPC this tick.
    pub fn disk_full(&self) -> bool {
        self.disk_full_until.is_some()
    }

    /// Take the seeds for torn-write arms due this tick.  Call exactly
    /// once per tick (whether or not a medium is attached) so the digest
    /// stays identical across durable and non-durable runs.
    pub fn take_torn_writes(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_torn)
    }

    /// Take the seeds for corrupt-byte strikes due this tick.  Same
    /// once-per-tick discipline as [`ChaosEngine::take_torn_writes`].
    pub fn take_corrupt_bytes(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_corrupt)
    }

    /// Per-kind storage-medium fault counts so far.
    pub fn disk_counts(&self) -> DiskInjectedCounts {
        self.disk_counts
    }

    /// Whether the WAN link to `site` is partitioned this tick.
    pub fn wan_partitioned(&self, site: &str) -> bool {
        self.wan.get(site).is_some_and(|f| f.partitioned_until.is_some())
    }

    /// Extra one-way latency (in ticks) on the link to `site` this tick.
    pub fn wan_added_latency_ticks(&self, site: &str) -> u64 {
        self.wan.get(site).and_then(|f| f.delay).map_or(0, |(added, _)| added)
    }

    /// Bandwidth cap (bytes per tick) on the link to `site` this tick, if
    /// one is active.
    pub fn wan_bandwidth_cap(&self, site: &str) -> Option<u64> {
        self.wan.get(site).and_then(|f| f.bandwidth).map(|(cap, _)| cap)
    }

    /// Per-kind WAN fault-window counts so far.
    pub fn wan_counts(&self) -> WanInjectedCounts {
        self.wan_counts
    }

    /// Per-kind injection counts so far.
    pub fn counts(&self) -> InjectedCounts {
        self.counts
    }

    /// Number of fault states active this tick (collectors + topics +
    /// corruption window + shards + disturbed WAN links).  Zero means the
    /// plane is currently undisturbed (pending scheduled faults may still
    /// exist).
    pub fn active_faults(&self) -> usize {
        self.collectors.len()
            + self.topics.len()
            + usize::from(self.corrupt.is_some())
            + self.shards.len()
            + self.wan.len()
            + usize::from(self.disk_write_fail_until.is_some())
            + usize::from(self.disk_full_until.is_some())
    }

    /// Scheduled faults not yet fired.
    pub fn plan_remaining(&self) -> usize {
        self.plan.remaining()
    }

    /// Capture the full injector state for a flight-recorder checkpoint.
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            seed: self.seed,
            plan: self.plan.clone(),
            tick: self.tick,
            collectors: self.collectors.clone(),
            topics: self.topics.clone(),
            corrupt: self.corrupt,
            shards: self.shards.iter().map(|(&k, &v)| (k, v)).collect(),
            pending_worker_deaths: self.pending_worker_deaths,
            counts: self.counts,
            wan: self.wan.clone(),
            wan_counts: self.wan_counts,
            disk_write_fail_until: self.disk_write_fail_until,
            disk_full_until: self.disk_full_until,
            pending_torn: self.pending_torn.clone(),
            pending_corrupt: self.pending_corrupt.clone(),
            disk_counts: self.disk_counts,
        }
    }

    /// Rebuild an injector from a checkpoint.
    pub fn restore(snap: ChaosSnapshot) -> ChaosEngine {
        ChaosEngine {
            seed: snap.seed,
            plan: snap.plan,
            tick: snap.tick,
            collectors: snap.collectors,
            topics: snap.topics,
            corrupt: snap.corrupt,
            shards: snap.shards.into_iter().collect(),
            pending_worker_deaths: snap.pending_worker_deaths,
            counts: snap.counts,
            wan: snap.wan,
            wan_counts: snap.wan_counts,
            disk_write_fail_until: snap.disk_write_fail_until,
            disk_full_until: snap.disk_full_until,
            pending_torn: snap.pending_torn,
            pending_corrupt: snap.pending_corrupt,
            disk_counts: snap.disk_counts,
        }
    }

    /// 64-bit digest of the injector state, for per-tick replay
    /// verification.
    pub fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0xC4);
        h.u64(self.seed).u64(self.tick).usize(self.plan.remaining());
        h.usize(self.collectors.len());
        for (name, f) in &self.collectors {
            let kind = match f.fault {
                CollectorFault::Panic => 0u64,
                CollectorFault::Hang => 1,
                CollectorFault::Slow(factor) => 2u64 ^ factor.to_bits().rotate_left(2),
            };
            h.str(name).u64(kind).u64(f.expires_at);
        }
        h.usize(self.topics.len());
        for (topic, expires) in &self.topics {
            h.str(topic).u64(*expires);
        }
        match self.corrupt {
            Some((rate, expires)) => h.f64(rate).u64(expires),
            None => h.u64(u64::MAX),
        };
        h.usize(self.shards.len());
        for (&shard, &expires) in &self.shards {
            h.usize(shard).u64(expires);
        }
        h.u64(self.pending_worker_deaths);
        h.usize(self.wan.len());
        for (site, f) in &self.wan {
            h.str(site);
            h.u64(f.partitioned_until.unwrap_or(u64::MAX));
            let (added, delay_until) = f.delay.unwrap_or((u64::MAX, u64::MAX));
            h.u64(added).u64(delay_until);
            let (cap, bw_until) = f.bandwidth.unwrap_or((u64::MAX, u64::MAX));
            h.u64(cap).u64(bw_until);
        }
        let w = self.wan_counts;
        h.u64(w.partition).u64(w.delay).u64(w.bandwidth);
        let c = self.counts;
        h.u64(c.collector_panic)
            .u64(c.collector_hang)
            .u64(c.collector_slow)
            .u64(c.topic_stall)
            .u64(c.envelope_corrupt)
            .u64(c.store_write_fail)
            .u64(c.gateway_worker_death);
        h.u64(self.disk_write_fail_until.unwrap_or(u64::MAX));
        h.u64(self.disk_full_until.unwrap_or(u64::MAX));
        h.usize(self.pending_torn.len());
        for seed in &self.pending_torn {
            h.u64(*seed);
        }
        h.usize(self.pending_corrupt.len());
        for seed in &self.pending_corrupt {
            h.u64(*seed);
        }
        let d = self.disk_counts;
        h.u64(d.write_fail).u64(d.torn_write).u64(d.corrupt_byte).u64(d.full);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ScheduledFault;

    fn plan(faults: Vec<(u64, ChaosFault)>) -> ChaosPlan {
        ChaosPlan::from_faults(
            faults.into_iter().map(|(at_tick, fault)| ScheduledFault { at_tick, fault }).collect(),
        )
    }

    #[test]
    fn collector_faults_activate_and_expire() {
        let mut eng = ChaosEngine::new(
            1,
            plan(vec![
                (2, ChaosFault::CollectorHang { collector: "node".into(), ticks: 2 }),
                (3, ChaosFault::CollectorPanic { collector: "power".into() }),
            ]),
        );
        eng.begin_tick(0);
        assert!(eng.collector_fault("node").is_none());
        eng.begin_tick(2);
        assert_eq!(eng.collector_fault("node"), Some(CollectorFault::Hang));
        eng.begin_tick(3);
        assert_eq!(eng.collector_fault("node"), Some(CollectorFault::Hang), "2-tick hang");
        assert_eq!(eng.collector_fault("power"), Some(CollectorFault::Panic));
        eng.begin_tick(4);
        assert!(eng.collector_fault("node").is_none(), "hang expired");
        assert!(eng.collector_fault("power").is_none(), "panic is one-shot");
        assert_eq!(eng.counts().collector_hang, 1);
        assert_eq!(eng.counts().collector_panic, 1);
        assert_eq!(eng.active_faults(), 0);
    }

    #[test]
    fn corruption_is_deterministic_and_rate_bounded() {
        let p = plan(vec![(0, ChaosFault::EnvelopeCorrupt { rate: 0.3, ticks: 5 })]);
        let mut a = ChaosEngine::new(42, p.clone());
        let mut b = ChaosEngine::new(42, p.clone());
        a.begin_tick(0);
        b.begin_tick(0);
        let da: Vec<Option<u64>> = (0..1000).map(|s| a.corruption(s)).collect();
        let db: Vec<Option<u64>> = (0..1000).map(|s| b.corruption(s)).collect();
        assert_eq!(da, db, "same seed, same decisions");
        let hits = da.iter().filter(|d| d.is_some()).count();
        assert!((200..400).contains(&hits), "rate ~0.3, got {hits}/1000");
        // Different seed, different decisions.
        let mut c = ChaosEngine::new(43, p);
        c.begin_tick(0);
        let dc: Vec<Option<u64>> = (0..1000).map(|s| c.corruption(s)).collect();
        assert_ne!(da, dc);
        // Outside the window: no corruption.
        a.begin_tick(5);
        assert!((0..1000u64).all(|s| a.corruption(s).is_none()));
    }

    #[test]
    fn shard_and_topic_windows() {
        let mut eng = ChaosEngine::new(
            7,
            plan(vec![
                (1, ChaosFault::StoreWriteFail { shard: 3, ticks: 2 }),
                (1, ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 1 }),
            ]),
        );
        eng.begin_tick(1);
        assert!(eng.shard_failing(3));
        assert!(!eng.shard_failing(0));
        assert_eq!(eng.failing_shards(), vec![3]);
        assert!(eng.topic_stalled("metrics/frame"));
        eng.begin_tick(2);
        assert!(eng.shard_failing(3));
        assert!(!eng.topic_stalled("metrics/frame"));
        eng.begin_tick(3);
        assert!(!eng.shard_failing(3));
    }

    #[test]
    fn wan_faults_activate_overlap_and_expire() {
        let mut eng = ChaosEngine::new(
            11,
            plan(vec![
                (1, ChaosFault::WanPartition { site: "siteB".into(), ticks: 2 }),
                (1, ChaosFault::WanDelay { site: "siteB".into(), added_ticks: 3, ticks: 4 }),
                (
                    2,
                    ChaosFault::WanBandwidth { site: "siteC".into(), bytes_per_tick: 64, ticks: 1 },
                ),
            ]),
        );
        eng.begin_tick(0);
        assert!(!eng.wan_partitioned("siteB"));
        assert_eq!(eng.wan_added_latency_ticks("siteB"), 0);
        eng.begin_tick(1);
        assert!(eng.wan_partitioned("siteB"));
        assert_eq!(eng.wan_added_latency_ticks("siteB"), 3, "delay overlaps partition");
        assert_eq!(eng.wan_bandwidth_cap("siteC"), None);
        eng.begin_tick(2);
        assert!(eng.wan_partitioned("siteB"));
        assert_eq!(eng.wan_bandwidth_cap("siteC"), Some(64));
        assert_eq!(eng.active_faults(), 2, "two disturbed links");
        eng.begin_tick(3);
        assert!(!eng.wan_partitioned("siteB"), "partition expired");
        assert_eq!(eng.wan_added_latency_ticks("siteB"), 3, "delay still running");
        assert_eq!(eng.wan_bandwidth_cap("siteC"), None, "squeeze expired");
        eng.begin_tick(5);
        assert_eq!(eng.wan_added_latency_ticks("siteB"), 0);
        assert_eq!(eng.active_faults(), 0);
        let w = eng.wan_counts();
        assert_eq!((w.partition, w.delay, w.bandwidth), (1, 1, 1));
        assert_eq!(w.total(), 3);
        // Snapshot round-trips the WAN state.
        let mut restored = ChaosEngine::restore(eng.snapshot());
        assert_eq!(restored.state_digest(), eng.state_digest());
        restored.begin_tick(6);
        assert_eq!(restored.wan_counts().total(), 3);
    }

    #[test]
    fn disk_faults_window_arm_and_expire() {
        let mut eng = ChaosEngine::new(
            21,
            plan(vec![
                (1, ChaosFault::DiskWriteFail { ticks: 2 }),
                (2, ChaosFault::DiskTornWrite),
                (2, ChaosFault::DiskCorruptByte),
                (4, ChaosFault::DiskFull { ticks: 1 }),
            ]),
        );
        eng.begin_tick(0);
        assert!(!eng.disk_write_failing());
        assert!(eng.take_torn_writes().is_empty());
        eng.begin_tick(1);
        assert!(eng.disk_write_failing());
        assert!(!eng.disk_full());
        assert_eq!(eng.active_faults(), 1);
        eng.begin_tick(2);
        assert!(eng.disk_write_failing(), "2-tick window");
        let torn = eng.take_torn_writes();
        let corrupt = eng.take_corrupt_bytes();
        assert_eq!((torn.len(), corrupt.len()), (1, 1));
        assert_ne!(torn[0], corrupt[0], "independent seed streams");
        assert!(eng.take_torn_writes().is_empty(), "one-shots are taken once");
        eng.begin_tick(3);
        assert!(!eng.disk_write_failing(), "window expired");
        eng.begin_tick(4);
        assert!(eng.disk_full());
        let d = eng.disk_counts();
        assert_eq!((d.write_fail, d.torn_write, d.corrupt_byte, d.full), (1, 1, 1, 1));
        assert_eq!(d.total(), 4);
        // Same seed and plan re-draw identical torn/corrupt seeds.
        let mut twin = ChaosEngine::new(
            21,
            plan(vec![(2, ChaosFault::DiskTornWrite), (2, ChaosFault::DiskCorruptByte)]),
        );
        twin.begin_tick(2);
        assert_eq!(twin.take_torn_writes(), torn);
        assert_eq!(twin.take_corrupt_bytes(), corrupt);
        // Snapshot round-trips the disk state.
        let restored = ChaosEngine::restore(eng.snapshot());
        assert_eq!(restored.state_digest(), eng.state_digest());
    }

    #[test]
    fn worker_deaths_are_taken_once() {
        let mut eng = ChaosEngine::new(
            9,
            plan(vec![(0, ChaosFault::GatewayWorkerDeath), (0, ChaosFault::GatewayWorkerDeath)]),
        );
        eng.begin_tick(0);
        assert_eq!(eng.take_worker_deaths(), 2);
        assert_eq!(eng.take_worker_deaths(), 0);
        assert_eq!(eng.counts().gateway_worker_death, 2);
        assert_eq!(eng.counts().total(), 2);
    }
}
