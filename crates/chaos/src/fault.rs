//! Fault kinds for the monitoring plane and the tick-keyed schedule that
//! fires them.
//!
//! This mirrors `hpcmon_sim::failure::{FaultKind, FaultPlan}` — but where
//! the simulator breaks the *machine under observation*, these faults break
//! the *observers*: collectors wedge, broker topics stall, envelopes arrive
//! bit-flipped, store shards return EIO, gateway workers die.  Faults are
//! keyed by monitoring tick number (not simulated time) because that is the
//! unit the supervision machinery reasons in.

use serde::{Deserialize, Serialize};

/// A specific way the monitoring plane breaks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosFault {
    /// The named collector panics once when next invoked.
    CollectorPanic {
        /// Collector name (as returned by `Collector::name`).
        collector: String,
    },
    /// The named collector hangs — exceeds its tick budget and produces
    /// nothing — for the given number of ticks.
    CollectorHang {
        /// Collector name.
        collector: String,
        /// How many ticks the hang lasts.
        ticks: u64,
    },
    /// The named collector runs `factor`× slower than normal for the given
    /// number of ticks.  A factor beyond the supervisor's budget is treated
    /// as a deadline overrun (the frame segment is discarded).
    CollectorSlow {
        /// Collector name.
        collector: String,
        /// Slowdown multiplier (≥ 1).
        factor: f64,
        /// How many ticks the slowdown lasts.
        ticks: u64,
    },
    /// Publishes on the given topic stall (are buffered, not delivered)
    /// for the given number of ticks, then drain in order.
    BrokerTopicStall {
        /// Exact topic name.
        topic: String,
        /// How many ticks the stall lasts.
        ticks: u64,
    },
    /// Each envelope is independently corrupted (one bit flipped in its
    /// serialized form) with probability `rate` for the given number of
    /// ticks.  Corruption decisions are keyed on the broker sequence
    /// number, so they are identical across worker counts.
    EnvelopeCorrupt {
        /// Per-envelope corruption probability in `[0, 1]`.
        rate: f64,
        /// How many ticks the corruption window lasts.
        ticks: u64,
    },
    /// Writes to the given store shard fail (simulated disk-full / EIO)
    /// for the given number of ticks.
    StoreWriteFail {
        /// Target shard index.
        shard: usize,
        /// How many ticks writes fail.
        ticks: u64,
    },
    /// One gateway worker thread dies.  The gateway's tick-driven
    /// `ensure_workers` pass respawns it.
    GatewayWorkerDeath,
    /// The WAN link to the named federation member site partitions: no
    /// rollup batches are delivered and scatter queries to the site report
    /// `Partitioned` until the window expires.  Interpreted by
    /// `hpcmon-federation`; a single-site `MonitoringSystem` ignores it.
    WanPartition {
        /// Member site name.
        site: String,
        /// How many ticks the partition lasts.
        ticks: u64,
    },
    /// The WAN link to the named site runs with extra one-way latency for
    /// the window — a slow site a deadline-budgeted scatter may shed.
    WanDelay {
        /// Member site name.
        site: String,
        /// Added one-way latency, in ticks.
        added_ticks: u64,
        /// How many ticks the slowdown lasts.
        ticks: u64,
    },
    /// The WAN link to the named site is squeezed to the given bandwidth
    /// for the window; rollup batches queue behind the cap.
    WanBandwidth {
        /// Member site name.
        site: String,
        /// Effective link capacity, bytes per tick.
        bytes_per_tick: u64,
        /// How many ticks the squeeze lasts.
        ticks: u64,
    },
    /// Appends to the durability plane's storage medium fail (EIO) for the
    /// window.  Refused WAL records queue in the plane's backlog and retry,
    /// so the window is lossless unless the process crashes inside it.
    DiskWriteFail {
        /// How many ticks writes fail.
        ticks: u64,
    },
    /// Arms the storage medium so the *next crash* keeps a seeded partial
    /// prefix of the unsynced tail — a record cut mid-frame that recovery
    /// must truncate at the last valid CRC.
    DiskTornWrite,
    /// Flips one seeded durable byte on the storage medium — silent bit rot
    /// the scrub stage or recovery must diagnose, count, and fail closed
    /// on, never panic.
    DiskCorruptByte,
    /// The storage medium reports ENOSPC for the window; appends and
    /// checkpoints are refused until it ends.
    DiskFull {
        /// How many ticks the medium stays full.
        ticks: u64,
    },
}

impl ChaosFault {
    /// Stable label for telemetry and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosFault::CollectorPanic { .. } => "collector_panic",
            ChaosFault::CollectorHang { .. } => "collector_hang",
            ChaosFault::CollectorSlow { .. } => "collector_slow",
            ChaosFault::BrokerTopicStall { .. } => "topic_stall",
            ChaosFault::EnvelopeCorrupt { .. } => "envelope_corrupt",
            ChaosFault::StoreWriteFail { .. } => "store_write_fail",
            ChaosFault::GatewayWorkerDeath => "gateway_worker_death",
            ChaosFault::WanPartition { .. } => "wan_partition",
            ChaosFault::WanDelay { .. } => "wan_delay",
            ChaosFault::WanBandwidth { .. } => "wan_bandwidth",
            ChaosFault::DiskWriteFail { .. } => "disk_write_fail",
            ChaosFault::DiskTornWrite => "disk_torn_write",
            ChaosFault::DiskCorruptByte => "disk_corrupt_byte",
            ChaosFault::DiskFull { .. } => "disk_full",
        }
    }
}

/// A fault scheduled at an absolute monitoring tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Tick number at which the fault activates (compared against the
    /// tick passed to `ChaosEngine::begin_tick`; a monitoring system's
    /// first tick is 1).
    pub at_tick: u64,
    /// What breaks.
    pub fault: ChaosFault,
}

/// A tick-ordered script of monitoring-plane faults.
///
/// Same cursor discipline as `hpcmon_sim::FaultPlan`: firing is
/// monotonic, and scheduling after partial consumption keeps unfired
/// faults sorted.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    faults: Vec<ScheduledFault>,
    cursor: usize,
}

impl ChaosPlan {
    /// Empty plan.
    pub fn new() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Build from an unordered list.
    pub fn from_faults(mut faults: Vec<ScheduledFault>) -> ChaosPlan {
        faults.sort_by_key(|f| f.at_tick);
        ChaosPlan { faults, cursor: 0 }
    }

    /// Add a fault (keeps the plan sorted relative to unfired faults).
    pub fn schedule(&mut self, at_tick: u64, fault: ChaosFault) {
        let pos = self.faults[self.cursor..]
            .iter()
            .position(|f| f.at_tick > at_tick)
            .map(|p| self.cursor + p)
            .unwrap_or(self.faults.len());
        self.faults.insert(pos.max(self.cursor), ScheduledFault { at_tick, fault });
    }

    /// Pop every fault due at or before `tick`, in schedule order.
    pub fn pop_due(&mut self, tick: u64) -> Vec<ScheduledFault> {
        let start = self.cursor;
        while self.cursor < self.faults.len() && self.faults[self.cursor].at_tick <= tick {
            self.cursor += 1;
        }
        self.faults[start..self.cursor].to_vec()
    }

    /// Faults not yet fired.
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.cursor
    }

    /// Total number of scheduled faults (fired + pending).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan holds no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_in_tick_order() {
        let mut plan = ChaosPlan::from_faults(vec![
            ScheduledFault { at_tick: 5, fault: ChaosFault::GatewayWorkerDeath },
            ScheduledFault {
                at_tick: 2,
                fault: ChaosFault::CollectorPanic { collector: "node".into() },
            },
        ]);
        assert!(plan.pop_due(1).is_empty());
        let due = plan.pop_due(2);
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].fault, ChaosFault::CollectorPanic { .. }));
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.pop_due(100).len(), 1);
        assert_eq!(plan.remaining(), 0);
    }

    #[test]
    fn schedule_after_partial_consumption() {
        let mut plan = ChaosPlan::new();
        assert!(plan.is_empty());
        plan.schedule(10, ChaosFault::GatewayWorkerDeath);
        plan.schedule(3, ChaosFault::StoreWriteFail { shard: 0, ticks: 2 });
        assert_eq!(plan.pop_due(5).len(), 1);
        plan.schedule(7, ChaosFault::EnvelopeCorrupt { rate: 0.5, ticks: 1 });
        let due = plan.pop_due(20);
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0].fault, ChaosFault::EnvelopeCorrupt { .. }));
        assert!(matches!(due[1].fault, ChaosFault::GatewayWorkerDeath));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn serde_round_trip() {
        let plan = ChaosPlan::from_faults(vec![ScheduledFault {
            at_tick: 4,
            fault: ChaosFault::CollectorSlow { collector: "power".into(), factor: 3.0, ticks: 2 },
        }]);
        let s = serde_json::to_string(&plan).unwrap();
        let back: ChaosPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ChaosFault::GatewayWorkerDeath.label(), "gateway_worker_death");
        assert_eq!(
            ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 1 }.label(),
            "topic_stall"
        );
    }
}
