//! Per-collector supervision: quarantine with exponential-backoff re-probe.
//!
//! The tick loop asks the supervisor whether each collector slot should run
//! this tick.  A slot that fails (panic, budget overrun) is quarantined:
//! skipped for `backoff` ticks, then re-probed once.  A failed probe doubles
//! the backoff (1 → 2 → 4 … capped); a successful probe clears the slot
//! entirely.  Quarantined slots are handed to the deadman detector by the
//! caller, so the coverage gap is *reported*, never silent.

use hpcmon_metrics::StateHash;
use serde::{Deserialize, Serialize};

/// Supervisor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisorConfig {
    /// A chaos-injected slowdown factor at or beyond this budget is treated
    /// as a deadline overrun: the collector's segment is discarded and the
    /// slot quarantined.  Factors below it run slow but succeed.
    pub slow_budget_factor: f64,
    /// Backoff cap in ticks: re-probe intervals grow 1 → 2 → 4 … up to this.
    pub max_backoff_ticks: u64,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig { slow_budget_factor: 8.0, max_backoff_ticks: 16 }
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct SlotState {
    quarantined: bool,
    /// Next tick at which a quarantined slot is re-probed.
    probe_at: u64,
    /// Backoff applied on the *next* failure, in ticks.
    backoff: u64,
    consecutive_failures: u64,
}

/// Tracks per-collector health; slots are the collector registration
/// indices, so the mapping is stable for the life of the pipeline.
#[derive(Debug)]
pub struct CollectorSupervisor {
    config: SupervisorConfig,
    slots: Vec<SlotState>,
}

impl CollectorSupervisor {
    /// Supervisor over `n_slots` collectors with default policy.
    pub fn new(n_slots: usize) -> CollectorSupervisor {
        CollectorSupervisor::with_config(n_slots, SupervisorConfig::default())
    }

    /// Supervisor with explicit policy.
    pub fn with_config(n_slots: usize, config: SupervisorConfig) -> CollectorSupervisor {
        CollectorSupervisor { config, slots: vec![SlotState::default(); n_slots] }
    }

    /// Policy in force.
    pub fn config(&self) -> SupervisorConfig {
        self.config
    }

    /// Whether slot `slot` should run at `tick`.  False while quarantined
    /// and the re-probe is not yet due.
    pub fn should_run(&self, slot: usize, tick: u64) -> bool {
        let s = &self.slots[slot];
        !s.quarantined || tick >= s.probe_at
    }

    /// Whether a run at `tick` would be a quarantine re-probe.
    pub fn is_probe(&self, slot: usize, tick: u64) -> bool {
        let s = &self.slots[slot];
        s.quarantined && tick >= s.probe_at
    }

    /// Record a successful run: clears quarantine and resets backoff.
    pub fn record_success(&mut self, slot: usize) {
        self.slots[slot] = SlotState::default();
    }

    /// Record a failed run at `tick` (panic, hang, budget overrun).
    /// Quarantines the slot and schedules the next probe; returns the
    /// backoff applied, in ticks.
    pub fn record_failure(&mut self, slot: usize, tick: u64) -> u64 {
        let cap = self.config.max_backoff_ticks.max(1);
        let s = &mut self.slots[slot];
        let applied = s.backoff.clamp(1, cap);
        s.quarantined = true;
        s.probe_at = tick + applied;
        s.backoff = (applied * 2).min(cap);
        s.consecutive_failures += 1;
        applied
    }

    /// Drop a slot whose collector was uninstalled; later slots shift
    /// down, matching the caller's collector vector.
    pub fn remove_slot(&mut self, slot: usize) {
        if slot < self.slots.len() {
            self.slots.remove(slot);
        }
    }

    /// Number of slots currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.slots.iter().filter(|s| s.quarantined).count()
    }

    /// Indices of quarantined slots, ascending.
    pub fn quarantined_slots(&self) -> Vec<usize> {
        (0..self.slots.len()).filter(|&i| self.slots[i].quarantined).collect()
    }

    /// Consecutive failures recorded against `slot` (0 when healthy).
    pub fn consecutive_failures(&self, slot: usize) -> u64 {
        self.slots[slot].consecutive_failures
    }

    /// Capture the per-slot health state for a flight-recorder checkpoint.
    pub fn snapshot(&self) -> SupervisorSnapshot {
        SupervisorSnapshot { config: self.config, slots: self.slots.clone() }
    }

    /// Rebuild a supervisor from a checkpoint.
    pub fn restore(snap: SupervisorSnapshot) -> CollectorSupervisor {
        CollectorSupervisor { config: snap.config, slots: snap.slots }
    }

    /// 64-bit digest of the supervision state, for per-tick replay
    /// verification.
    pub fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0x5D);
        h.usize(self.slots.len());
        for s in &self.slots {
            h.bool(s.quarantined).u64(s.probe_at).u64(s.backoff).u64(s.consecutive_failures);
        }
        h.finish()
    }
}

/// Complete serializable supervision state at a tick boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SupervisorSnapshot {
    config: SupervisorConfig,
    slots: Vec<SlotState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_cap_and_probe_success_clears() {
        let mut sup = CollectorSupervisor::with_config(
            2,
            SupervisorConfig { slow_budget_factor: 8.0, max_backoff_ticks: 4 },
        );
        assert!(sup.should_run(0, 0));
        // Failure at tick 0: backoff 1 → probe at tick 1.
        assert_eq!(sup.record_failure(0, 0), 1);
        assert!(!sup.should_run(0, 0) || sup.is_probe(0, 0));
        assert!(sup.should_run(0, 1) && sup.is_probe(0, 1));
        // Probe fails: backoff 2 → probe at tick 3.
        assert_eq!(sup.record_failure(0, 1), 2);
        assert!(!sup.should_run(0, 2));
        assert!(sup.is_probe(0, 3));
        // Fails again: backoff 4 (capped) → probe at tick 7.
        assert_eq!(sup.record_failure(0, 3), 4);
        assert_eq!(sup.record_failure(0, 7), 4, "capped");
        assert_eq!(sup.consecutive_failures(0), 4);
        assert_eq!(sup.quarantined_slots(), vec![0]);
        // Probe at tick 11 succeeds: fully cleared.
        assert!(sup.is_probe(0, 11));
        sup.record_success(0);
        assert!(sup.should_run(0, 12) && !sup.is_probe(0, 12));
        assert_eq!(sup.quarantined_count(), 0);
        assert_eq!(sup.consecutive_failures(0), 0);
        // Slot 1 was never disturbed.
        assert!(sup.should_run(1, 0));
    }

    #[test]
    fn untouched_slots_always_run() {
        let sup = CollectorSupervisor::new(3);
        for tick in 0..10 {
            for slot in 0..3 {
                assert!(sup.should_run(slot, tick));
                assert!(!sup.is_probe(slot, tick));
            }
        }
        assert_eq!(sup.quarantined_count(), 0);
    }
}
