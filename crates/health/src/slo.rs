//! Declarative SLO specifications and the multi-window burn-rate math.
//!
//! An [`SloSpec`] names a good/bad event stream (a *feed*, wired up by the
//! embedding pipeline), a target good-ratio, and two rolling windows in
//! the Google-SRE multi-window multi-burn-rate style: the **fast** window
//! reacts within a few ticks and clears quickly after a heal, the **slow**
//! window confirms that real error budget was spent.  An alert condition
//! holds only while *both* windows burn above their thresholds, which is
//! what makes the lifecycle hysteretic without wall-clock timers.

use hpcmon_metrics::Severity;
use serde::{Deserialize, Serialize};

/// The monitoring-plane subsystem an SLO grades on the health board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// Collector fan-out and frame coverage.
    Collect,
    /// Broker publish/deliver path.
    Transport,
    /// Hot/warm store ingest.
    Store,
    /// Query gateway serving.
    Gateway,
    /// Fault-injection quiescence (fires while chaos is actively hurting us).
    Chaos,
    /// WAN links and rollup delivery in federation mode.
    Federation,
}

impl Subsystem {
    /// Every subsystem, in board render order.
    pub const ALL: [Subsystem; 6] = [
        Subsystem::Collect,
        Subsystem::Transport,
        Subsystem::Store,
        Subsystem::Gateway,
        Subsystem::Chaos,
        Subsystem::Federation,
    ];

    /// Lowercase label used in dedup keys, series names, and the board.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Collect => "collect",
            Subsystem::Transport => "transport",
            Subsystem::Store => "store",
            Subsystem::Gateway => "gateway",
            Subsystem::Chaos => "chaos",
            Subsystem::Federation => "federation",
        }
    }
}

/// One declarative service-level objective over a good/bad feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Short name, unique within a subsystem (`"ingest"`, `"coverage"`).
    pub name: String,
    /// Subsystem this SLO grades.
    pub subsystem: Subsystem,
    /// Key of the feed the embedding pipeline supplies each tick.
    pub feed: String,
    /// Target good-ratio in `[0, 1)`; the error budget is `1 - target`.
    pub target: f64,
    /// Fast burn-rate window, ticks.
    pub fast_window: usize,
    /// Slow burn-rate window, ticks.
    pub slow_window: usize,
    /// Firing threshold on the fast window's burn rate.
    pub fast_burn: f64,
    /// Firing threshold on the slow window's burn rate.
    pub slow_burn: f64,
    /// Consecutive violating ticks before Pending promotes to Firing.
    pub pending_ticks: u64,
    /// Consecutive clear ticks before Firing resolves.
    pub resolve_ticks: u64,
    /// Severity stamped on this SLO's alerts.
    pub severity: Severity,
    /// Federation site this SLO belongs to, if any.
    pub site: Option<String>,
}

impl SloSpec {
    /// A spec with the standard window/hysteresis defaults: fast window 5,
    /// slow window 60, burn thresholds 2.0 (fast) and 1.0 (slow), two
    /// pending ticks, five resolve ticks, `Warning` severity.
    pub fn new(name: &str, subsystem: Subsystem, feed: &str, target: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            subsystem,
            feed: feed.to_string(),
            target,
            fast_window: 5,
            slow_window: 60,
            fast_burn: 2.0,
            slow_burn: 1.0,
            pending_ticks: 2,
            resolve_ticks: 5,
            severity: Severity::Warning,
            site: None,
        }
    }

    /// Override both rolling windows.
    pub fn windows(mut self, fast: usize, slow: usize) -> SloSpec {
        self.fast_window = fast.max(1);
        self.slow_window = slow.max(self.fast_window);
        self
    }

    /// Override both burn-rate thresholds.
    pub fn burns(mut self, fast: f64, slow: f64) -> SloSpec {
        self.fast_burn = fast;
        self.slow_burn = slow;
        self
    }

    /// Override the Pending→Firing / Firing→Resolved hysteresis.
    pub fn hysteresis(mut self, pending_ticks: u64, resolve_ticks: u64) -> SloSpec {
        self.pending_ticks = pending_ticks.max(1);
        self.resolve_ticks = resolve_ticks.max(1);
        self
    }

    /// Override the alert severity.
    pub fn severity(mut self, severity: Severity) -> SloSpec {
        self.severity = severity;
        self
    }

    /// Attach the SLO to a federation site; the site joins the dedup key.
    pub fn site(mut self, site: &str) -> SloSpec {
        self.site = Some(site.to_string());
        self
    }

    /// Error budget: the tolerated bad fraction, floored so a `target` of
    /// exactly 1.0 still yields finite burn rates.
    pub fn budget(&self) -> f64 {
        (1.0 - self.target).max(1e-9)
    }

    /// Stable dedup key: `subsystem/name`, plus `@site` in federation mode.
    pub fn key(&self) -> String {
        match &self.site {
            Some(site) => format!("{}/{}@{}", self.subsystem.label(), self.name, site),
            None => format!("{}/{}", self.subsystem.label(), self.name),
        }
    }
}

/// Burn rate of a `(good, bad)` window against an error budget: the
/// observed bad-ratio divided by the tolerated one.  A window with no
/// events burns nothing (absence of traffic is not an outage).
pub fn burn_rate(good: f64, bad: f64, budget: f64) -> f64 {
    let total = good + bad;
    if total <= 0.0 {
        return 0.0;
    }
    (bad / total) / budget
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_floored() {
        let s = SloSpec::new("x", Subsystem::Store, "f", 1.0);
        assert!(s.budget() > 0.0);
        let s = SloSpec::new("x", Subsystem::Store, "f", 0.99);
        assert!((s.budget() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn burn_rate_basics() {
        // 1% bad against a 1% budget burns at exactly 1.0.
        assert!((burn_rate(99.0, 1.0, 0.01) - 1.0).abs() < 1e-12);
        // Total failure against a 0.1% budget burns at 1000x.
        assert!((burn_rate(0.0, 5.0, 0.001) - 1000.0).abs() < 1e-9);
        // No traffic: no burn.
        assert_eq!(burn_rate(0.0, 0.0, 0.01), 0.0);
    }

    #[test]
    fn keys_are_site_scoped() {
        let s = SloSpec::new("ingest", Subsystem::Store, "store.ingest", 0.999);
        assert_eq!(s.key(), "store/ingest");
        assert_eq!(s.site("alcf").key(), "store/ingest@alcf");
    }
}
