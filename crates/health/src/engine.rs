//! The health engine: feeds in, alert transitions out, one tick at a time.
//!
//! The engine is deliberately inert plumbing — it owns no clocks, no
//! threads, and reads no telemetry on its own.  Each tick the embedding
//! pipeline hands it a batch of named good/bad feeds sourced from
//! *deterministic* pipeline state (coverage bitmaps, breaker phase, spill
//! depths — never wall-clock instruments), and the engine updates every
//! SLO's rolling windows and phase machine.  That is what makes alert
//! timelines bit-identical at any worker count and exactly reproducible
//! from a snapshot.

use crate::alert::{
    ActiveAlert, AlertEvent, Grade, HealthReport, Silence, SiteHealth, SubsystemHealth, Transition,
};
use crate::slo::{burn_rate, SloSpec, Subsystem};
use hpcmon_metrics::{Severity, StateHash};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One tick's worth of evidence for a feed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FeedValue {
    /// Event counts that happened *this tick* (or a level resampled per
    /// tick, e.g. coverage percent as good and its complement as bad).
    Tick {
        /// Good events this tick.
        good: f64,
        /// Bad events this tick.
        bad: f64,
    },
    /// Lifetime totals; the engine diffs consecutive ticks internally, so
    /// monotonic counters can be fed without the caller tracking deltas.
    Total {
        /// Good events since startup.
        good: f64,
        /// Bad events since startup.
        bad: f64,
    },
}

/// Configuration for a [`HealthEngine`]: the SLOs to evaluate plus any
/// pre-declared silences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HealthConfig {
    /// SLOs, evaluated in order every tick.
    pub slos: Vec<SloSpec>,
    /// Tick-keyed silences.
    pub silences: Vec<Silence>,
}

impl HealthConfig {
    /// The standard single-site SLO set over the core pipeline feeds that
    /// `hpcmon`'s tick stage supplies (see `DESIGN.md` §13 for the feed
    /// sources):
    ///
    /// * `collect/coverage` — frame coverage percent vs its complement.
    /// * `transport/delivery` — frames delivered vs stalled + dropped +
    ///   decode-failed.
    /// * `store/ingest` — breaker-closed ticks vs spill depth and open
    ///   breakers.
    /// * `store/integrity` — samples ingested vs corrupt blocks + spill
    ///   drops.
    /// * `gateway/serving` — ticks served vs chaos-killed gateway workers.
    /// * `chaos/quiescence` — quiet ticks vs injected faults.
    /// * `trace/drops` (graded under transport) — assembled spans vs drop
    ///   provenance records.
    pub fn standard() -> HealthConfig {
        HealthConfig {
            slos: vec![
                SloSpec::new("coverage", Subsystem::Collect, "collect.coverage", 0.99)
                    .severity(Severity::Warning),
                SloSpec::new("delivery", Subsystem::Transport, "transport.delivery", 0.999)
                    .severity(Severity::Error),
                SloSpec::new("ingest", Subsystem::Store, "store.ingest", 0.999)
                    .severity(Severity::Error),
                SloSpec::new("integrity", Subsystem::Store, "store.integrity", 0.999)
                    .severity(Severity::Error),
                SloSpec::new("serving", Subsystem::Gateway, "gateway.serving", 0.99)
                    .severity(Severity::Warning),
                SloSpec::new("quiescence", Subsystem::Chaos, "chaos.quiescence", 0.999)
                    .severity(Severity::Notice),
                SloSpec::new("drops", Subsystem::Transport, "trace.drops", 0.99)
                    .severity(Severity::Notice),
            ],
            silences: Vec::new(),
        }
    }

    /// The standard set plus one WAN-delivery SLO per federation site,
    /// graded under [`Subsystem::Federation`] and keyed `…@site`.  Each
    /// site reads its own `fed.wan.<site>` feed (a partition or rollup
    /// drop on one link must not page the others).
    pub fn federation(site_names: &[String]) -> HealthConfig {
        let mut cfg = HealthConfig::standard();
        for site in site_names {
            cfg.slos.push(
                SloSpec::new(
                    "wan-delivery",
                    Subsystem::Federation,
                    &format!("fed.wan.{site}"),
                    0.99,
                )
                .severity(Severity::Error)
                .site(site),
            );
        }
        cfg
    }

    /// Add the durability SLO over the `store.durability` feed the core
    /// supplies when a crash-durability plane is attached: WAL records
    /// appended vs append failures + failed checkpoints + corruption
    /// events + scrub failures.  Graded under [`Subsystem::Store`] and
    /// keyed `store/durability`.  Without a plane the feed is absent and
    /// the SLO stays healthy (absence of a WAL is not an outage).
    pub fn durability(self) -> HealthConfig {
        self.slo(
            SloSpec::new("durability", Subsystem::Store, "store.durability", 0.999)
                .severity(Severity::Error),
        )
    }

    /// Append an SLO.
    pub fn slo(mut self, spec: SloSpec) -> HealthConfig {
        self.slos.push(spec);
        self
    }

    /// Append a silence.
    pub fn silence(mut self, silence: Silence) -> HealthConfig {
        self.silences.push(silence);
        self
    }
}

/// Lifecycle phase of one SLO's alert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Phase {
    /// Condition clear; nothing active.
    #[default]
    Ok,
    /// Violating, waiting out `pending_ticks` before firing.
    Pending {
        /// Tick the episode started violating.
        since: u64,
        /// Consecutive violating ticks so far.
        streak: u64,
    },
    /// Confirmed firing; waiting for `resolve_ticks` clear ticks.
    Firing {
        /// Tick the episode started violating.
        since: u64,
        /// Consecutive clear ticks so far.
        clear_streak: u64,
    },
}

/// Evaluation state of one SLO, serde-able for snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SloState {
    /// Per-tick `(good, bad)` ring, newest at the back, ≤ `slow_window`.
    pub ring: VecDeque<(f64, f64)>,
    /// Last lifetime totals seen, for diffing [`FeedValue::Total`] feeds.
    pub last_total: Option<(f64, f64)>,
    /// Current lifecycle phase.
    pub phase: Phase,
    /// Fast-window burn rate as of the last observed tick.
    pub fast_burn: f64,
    /// Slow-window burn rate as of the last observed tick.
    pub slow_burn: f64,
    /// Exemplar trace captured when the alert last fired.
    pub exemplar_trace: u64,
}

/// Snapshot of a [`HealthEngine`]'s mutable state (not its config).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct HealthSnapshot {
    /// Per-SLO evaluation state, parallel to the config's SLO list.
    pub states: Vec<SloState>,
    /// Full transition history, so restored runs replay alert timelines.
    pub events: Vec<AlertEvent>,
}

/// The deterministic SLO/alerting engine.
#[derive(Debug)]
pub struct HealthEngine {
    cfg: HealthConfig,
    states: Vec<SloState>,
    events: Vec<AlertEvent>,
}

impl HealthEngine {
    /// An engine with every SLO at Ok and an empty history.
    pub fn new(cfg: HealthConfig) -> HealthEngine {
        let states = cfg.slos.iter().map(|_| SloState::default()).collect();
        HealthEngine { cfg, states, events: Vec::new() }
    }

    /// The configuration this engine evaluates.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Add a silence at runtime (takes effect from its `from_tick`).
    pub fn add_silence(&mut self, silence: Silence) {
        self.cfg.silences.push(silence);
    }

    /// Evaluate one tick.  `feeds` maps feed keys to this tick's evidence;
    /// an SLO whose feed is absent sees a zero-traffic tick (no burn).
    /// `exemplar` is consulted once per *newly firing* alert to capture
    /// the trace id nearest the violating quantile for that subsystem.
    ///
    /// Returns the transitions that happened this tick, silenced ones
    /// included (callers filter on [`AlertEvent::silenced`] before
    /// publishing).
    pub fn observe_tick(
        &mut self,
        tick: u64,
        feeds: &[(&str, FeedValue)],
        exemplar: &dyn Fn(Subsystem) -> u64,
    ) -> Vec<AlertEvent> {
        let mut out = Vec::new();
        for (spec, st) in self.cfg.slos.iter().zip(self.states.iter_mut()) {
            let fed = feeds.iter().find(|(k, _)| *k == spec.feed).map(|(_, v)| *v);
            let (good, bad) = match fed {
                Some(FeedValue::Tick { good, bad }) => (good.max(0.0), bad.max(0.0)),
                Some(FeedValue::Total { good, bad }) => {
                    let (lg, lb) = st.last_total.unwrap_or((0.0, 0.0));
                    st.last_total = Some((good, bad));
                    ((good - lg).max(0.0), (bad - lb).max(0.0))
                }
                None => (0.0, 0.0),
            };
            st.ring.push_back((good, bad));
            while st.ring.len() > spec.slow_window {
                st.ring.pop_front();
            }
            let sum = |n: usize| -> (f64, f64) {
                st.ring.iter().rev().take(n).fold((0.0, 0.0), |(g, b), &(eg, eb)| (g + eg, b + eb))
            };
            let (fg, fb) = sum(spec.fast_window);
            let (sg, sb) = sum(spec.slow_window);
            st.fast_burn = burn_rate(fg, fb, spec.budget());
            st.slow_burn = burn_rate(sg, sb, spec.budget());
            let violating = st.fast_burn >= spec.fast_burn && st.slow_burn >= spec.slow_burn;

            let mut emit = |st: &SloState, transition: Transition, exemplar_trace: u64| {
                let key = spec.key();
                let silenced = self.cfg.silences.iter().any(|s| s.matches(&key, tick));
                out.push(AlertEvent {
                    tick,
                    key,
                    subsystem: spec.subsystem,
                    site: spec.site.clone(),
                    transition,
                    severity: spec.severity,
                    fast_burn: st.fast_burn,
                    slow_burn: st.slow_burn,
                    exemplar_trace,
                    silenced,
                });
            };

            match st.phase {
                Phase::Ok => {
                    if violating {
                        st.phase = Phase::Pending { since: tick, streak: 1 };
                        emit(st, Transition::Pending, 0);
                        if 1 >= spec.pending_ticks {
                            st.exemplar_trace = exemplar(spec.subsystem);
                            st.phase = Phase::Firing { since: tick, clear_streak: 0 };
                            emit(st, Transition::Firing, st.exemplar_trace);
                        }
                    }
                }
                Phase::Pending { since, streak } => {
                    if violating {
                        let streak = streak + 1;
                        if streak >= spec.pending_ticks {
                            st.exemplar_trace = exemplar(spec.subsystem);
                            st.phase = Phase::Firing { since, clear_streak: 0 };
                            emit(st, Transition::Firing, st.exemplar_trace);
                        } else {
                            st.phase = Phase::Pending { since, streak };
                        }
                    } else {
                        // Never fired — drop back silently, no Resolved spam.
                        st.phase = Phase::Ok;
                    }
                }
                Phase::Firing { since, clear_streak } => {
                    if violating {
                        st.phase = Phase::Firing { since, clear_streak: 0 };
                    } else {
                        let clear_streak = clear_streak + 1;
                        if clear_streak >= spec.resolve_ticks {
                            st.phase = Phase::Ok;
                            emit(st, Transition::Resolved, st.exemplar_trace);
                            st.exemplar_trace = 0;
                        } else {
                            st.phase = Phase::Firing { since, clear_streak };
                        }
                    }
                }
            }
        }
        self.events.extend(out.iter().cloned());
        out
    }

    /// Full transition history since startup (or snapshot restore).
    pub fn events(&self) -> &[AlertEvent] {
        &self.events
    }

    /// Count of Firing alerts right now.
    pub fn firing_count(&self) -> usize {
        self.states.iter().filter(|s| matches!(s.phase, Phase::Firing { .. })).count()
    }

    /// Count of Pending alerts right now.
    pub fn pending_count(&self) -> usize {
        self.states.iter().filter(|s| matches!(s.phase, Phase::Pending { .. })).count()
    }

    /// Build the operator report as of `tick`.
    pub fn report(&self, tick: u64) -> HealthReport {
        let mut active: Vec<ActiveAlert> = Vec::new();
        for (spec, st) in self.cfg.slos.iter().zip(self.states.iter()) {
            let (firing, since) = match st.phase {
                Phase::Ok => continue,
                Phase::Pending { since, .. } => (false, since),
                Phase::Firing { since, .. } => (true, since),
            };
            active.push(ActiveAlert {
                key: spec.key(),
                subsystem: spec.subsystem,
                site: spec.site.clone(),
                severity: spec.severity,
                firing,
                since_tick: since,
                age_ticks: tick.saturating_sub(since),
                fast_burn: st.fast_burn,
                slow_burn: st.slow_burn,
                exemplar_trace: st.exemplar_trace,
            });
        }
        active.sort_by(|a, b| b.firing.cmp(&a.firing).then_with(|| a.key.cmp(&b.key)));

        let grade_of = |firing_sev: Option<Severity>, pending: usize| -> Grade {
            match firing_sev {
                Some(sev) if sev >= Severity::Error => Grade::Critical,
                Some(_) => Grade::Degraded,
                None if pending > 0 => Grade::Degraded,
                None => Grade::Healthy,
            }
        };

        let subsystems = Subsystem::ALL
            .iter()
            .map(|&sub| {
                let of_sub: Vec<&ActiveAlert> =
                    active.iter().filter(|a| a.subsystem == sub).collect();
                let firing = of_sub.iter().filter(|a| a.firing).count();
                let pending = of_sub.len() - firing;
                let worst = of_sub.iter().filter(|a| a.firing).map(|a| a.severity).max();
                SubsystemHealth { subsystem: sub, grade: grade_of(worst, pending), firing, pending }
            })
            .collect();

        let mut sites: Vec<SiteHealth> = Vec::new();
        let mut site_names: Vec<&String> =
            self.cfg.slos.iter().filter_map(|s| s.site.as_ref()).collect();
        site_names.dedup();
        for site in site_names {
            let of_site: Vec<&ActiveAlert> =
                active.iter().filter(|a| a.site.as_ref() == Some(site)).collect();
            let firing = of_site.iter().filter(|a| a.firing).count();
            let pending = of_site.len() - firing;
            let worst = of_site.iter().filter(|a| a.firing).map(|a| a.severity).max();
            sites.push(SiteHealth {
                site: site.clone(),
                grade: grade_of(worst, pending),
                firing,
                pending,
            });
        }

        HealthReport { tick, subsystems, active, sites }
    }

    /// The canonical alert timeline: one JSON object per transition, in
    /// order, with `exemplar_trace` zeroed (exemplar selection rides
    /// wall-clock stage timings, so it is observability, not state).
    /// This is the artifact the determinism suites byte-diff.
    pub fn canonical_timeline(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            let mut canon = ev.clone();
            canon.exemplar_trace = 0;
            out.push_str(&serde_json::to_string(&canon).expect("AlertEvent serializes"));
            out.push('\n');
        }
        out
    }

    /// Capture the mutable state for a snapshot.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot { states: self.states.clone(), events: self.events.clone() }
    }

    /// Restore from a snapshot taken against the same config.
    pub fn restore(&mut self, snap: &HealthSnapshot) {
        assert_eq!(
            snap.states.len(),
            self.cfg.slos.len(),
            "health snapshot does not match the configured SLO set"
        );
        self.states = snap.states.clone();
        self.events = snap.events.clone();
    }

    /// Order-sensitive digest of phases, windows, and the event history,
    /// excluding exemplar ids (wall-clock-tainted) so the digest agrees
    /// across worker counts and telemetry settings.
    pub fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0x6E);
        h.usize(self.states.len());
        for st in &self.states {
            h.usize(st.ring.len());
            for &(g, b) in &st.ring {
                h.f64(g).f64(b);
            }
            match st.last_total {
                Some((g, b)) => h.bool(true).f64(g).f64(b),
                None => h.bool(false),
            };
            match st.phase {
                Phase::Ok => h.u64(0),
                Phase::Pending { since, streak } => h.u64(1).u64(since).u64(streak),
                Phase::Firing { since, clear_streak } => h.u64(2).u64(since).u64(clear_streak),
            };
            h.f64(st.fast_burn).f64(st.slow_burn);
        }
        h.usize(self.events.len());
        for ev in &self.events {
            h.u64(ev.tick).str(&ev.key);
            h.u64(match ev.transition {
                Transition::Pending => 0,
                Transition::Firing => 1,
                Transition::Resolved => 2,
            });
            h.f64(ev.fast_burn).f64(ev.slow_burn).bool(ev.silenced);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_exemplar(_: Subsystem) -> u64 {
        0
    }

    fn one_slo() -> HealthConfig {
        HealthConfig::default().slo(
            SloSpec::new("ingest", Subsystem::Store, "store.ingest", 0.999)
                .hysteresis(2, 3)
                .burns(2.0, 1.0)
                .windows(5, 60),
        )
    }

    fn tick_feed(good: f64, bad: f64) -> Vec<(&'static str, FeedValue)> {
        vec![("store.ingest", FeedValue::Tick { good, bad })]
    }

    #[test]
    fn pending_then_firing_then_resolved() {
        let mut eng = HealthEngine::new(one_slo());
        // Healthy warm-up.
        for t in 0..10 {
            assert!(eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar).is_empty());
        }
        // Outage: all bad.  Tick 10 → Pending, tick 11 → Firing.
        let ev = eng.observe_tick(10, &tick_feed(0.0, 10.0), &no_exemplar);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].transition, Transition::Pending);
        assert_eq!(ev[0].tick, 10);
        let ev = eng.observe_tick(11, &tick_feed(0.0, 10.0), &no_exemplar);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].transition, Transition::Firing);
        assert_eq!(eng.firing_count(), 1);
        // Heal.  Fast window (5 ticks) still holds outage ticks for a
        // while; violation clears once the fast burn drops below 2x, then
        // three clear ticks resolve.
        let mut resolved_at = None;
        for t in 12..40 {
            let ev = eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
            if let Some(e) = ev.first() {
                assert_eq!(e.transition, Transition::Resolved);
                resolved_at = Some(t);
                break;
            }
        }
        let resolved_at = resolved_at.expect("alert resolves after heal");
        assert!(resolved_at >= 14, "hysteresis holds at least resolve_ticks");
        assert_eq!(eng.firing_count(), 0);
        assert_eq!(eng.events().len(), 3);
    }

    #[test]
    fn pending_that_heals_never_fires() {
        let mut eng = HealthEngine::new(one_slo());
        for t in 0..10 {
            eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
        }
        let ev = eng.observe_tick(10, &tick_feed(0.0, 10.0), &no_exemplar);
        assert_eq!(ev[0].transition, Transition::Pending);
        // One blip only — drops straight back to Ok with no event.  The
        // fast window still carries the blip, but a single bad tick out of
        // five good ones (2/6 of budget-relative burn…) — force clarity by
        // feeding overwhelming good traffic.
        for t in 11..30 {
            let ev = eng.observe_tick(t, &tick_feed(10_000.0, 0.0), &no_exemplar);
            assert!(ev.is_empty(), "no Firing, no Resolved after a cleared Pending");
        }
        assert_eq!(eng.events().len(), 1);
    }

    #[test]
    fn total_feeds_are_diffed() {
        let mut eng = HealthEngine::new(HealthConfig::default().slo(
            SloSpec::new("x", Subsystem::Transport, "t", 0.9).hysteresis(1, 1).burns(1.0, 1.0),
        ));
        // Lifetime totals: 100 good always, bad jumps 0 → 50 at tick 3.
        for t in 0..3 {
            let ev = eng.observe_tick(
                t,
                &[("t", FeedValue::Total { good: 100.0 + t as f64, bad: 0.0 })],
                &no_exemplar,
            );
            assert!(ev.is_empty());
        }
        let ev = eng.observe_tick(
            3,
            &[("t", FeedValue::Total { good: 103.0, bad: 50.0 })],
            &no_exemplar,
        );
        // pending_ticks=1 → Pending and Firing the same tick.
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].transition, Transition::Pending);
        assert_eq!(ev[1].transition, Transition::Firing);
    }

    #[test]
    fn silences_mark_but_do_not_suppress_recording() {
        let cfg =
            one_slo().silence(Silence { key: "store/*".into(), from_tick: 0, until_tick: 100 });
        let mut eng = HealthEngine::new(cfg);
        for t in 0..5 {
            eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
        }
        let ev = eng.observe_tick(5, &tick_feed(0.0, 10.0), &no_exemplar);
        assert_eq!(ev.len(), 1);
        assert!(ev[0].silenced);
        assert_eq!(eng.events().len(), 1, "silenced events still recorded");
    }

    #[test]
    fn snapshot_restore_is_exact() {
        let mut eng = HealthEngine::new(one_slo());
        for t in 0..10 {
            eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
        }
        eng.observe_tick(10, &tick_feed(0.0, 10.0), &no_exemplar);
        eng.observe_tick(11, &tick_feed(0.0, 10.0), &no_exemplar);
        let snap = eng.snapshot();
        let digest = eng.state_digest();
        let timeline = eng.canonical_timeline();

        // Diverge, then restore: digest and timeline must match exactly.
        eng.observe_tick(12, &tick_feed(10.0, 0.0), &no_exemplar);
        assert_ne!(eng.state_digest(), digest);
        eng.restore(&snap);
        assert_eq!(eng.state_digest(), digest);
        assert_eq!(eng.canonical_timeline(), timeline);

        // And the restored engine evolves identically to a never-diverged
        // one.
        let mut fresh = HealthEngine::new(one_slo());
        fresh.restore(&snap);
        for t in 12..30 {
            let a = eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
            let b = fresh.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
            assert_eq!(a, b);
        }
        assert_eq!(eng.state_digest(), fresh.state_digest());
    }

    #[test]
    fn canonical_timeline_zeroes_exemplars() {
        let mut eng = HealthEngine::new(one_slo());
        for t in 0..5 {
            eng.observe_tick(t, &tick_feed(10.0, 0.0), &no_exemplar);
        }
        eng.observe_tick(5, &tick_feed(0.0, 10.0), &|_| 0xDEAD);
        eng.observe_tick(6, &tick_feed(0.0, 10.0), &|_| 0xDEAD);
        let firing = eng.events().iter().find(|e| e.transition == Transition::Firing).unwrap();
        assert_eq!(firing.exemplar_trace, 0xDEAD, "live event keeps the exemplar");
        assert!(
            !eng.canonical_timeline().contains("57005"),
            "canonical timeline zeroes exemplar ids"
        );
    }

    #[test]
    fn report_grades_worst_of() {
        let cfg = HealthConfig::default()
            .slo(
                SloSpec::new("ingest", Subsystem::Store, "s", 0.999)
                    .severity(Severity::Error)
                    .hysteresis(1, 5),
            )
            .slo(
                SloSpec::new("coverage", Subsystem::Collect, "c", 0.99)
                    .severity(Severity::Warning)
                    .hysteresis(10, 5),
            );
        let mut eng = HealthEngine::new(cfg);
        eng.observe_tick(
            0,
            &[
                ("s", FeedValue::Tick { good: 0.0, bad: 5.0 }),
                ("c", FeedValue::Tick { good: 0.0, bad: 5.0 }),
            ],
            &no_exemplar,
        );
        let rep = eng.report(0);
        let store = rep.subsystems.iter().find(|s| s.subsystem == Subsystem::Store).unwrap();
        assert_eq!(store.grade, Grade::Critical, "Error-severity firing is Critical");
        assert_eq!(store.firing, 1);
        let collect = rep.subsystems.iter().find(|s| s.subsystem == Subsystem::Collect).unwrap();
        assert_eq!(collect.grade, Grade::Degraded, "Pending is Degraded");
        assert_eq!(collect.pending, 1);
        let gw = rep.subsystems.iter().find(|s| s.subsystem == Subsystem::Gateway).unwrap();
        assert_eq!(gw.grade, Grade::Healthy);
        assert_eq!(rep.active.len(), 2);
        assert!(rep.active[0].firing, "firing sorts first");
    }
}
