//! Deterministic SLO engine and burn-rate alerting for the monitoring
//! plane itself.
//!
//! The source paper's operators all learned the same lesson: a monitoring
//! system that is not itself monitored fails silently, and raw series are
//! not actionable — operators need "the broker is degraded", not ten
//! thousand gauges.  This crate turns `hpcmon`'s self-telemetry and
//! pipeline state into exactly that:
//!
//! * [`SloSpec`] — declarative objectives (target good-ratio + fast/slow
//!   rolling windows) over named good/bad feeds, evaluated with
//!   Google-SRE-style multi-window multi-burn-rate logic: an alert
//!   condition holds only while both the fast (default 5-tick) and slow
//!   (default 60-tick) windows burn error budget above threshold.
//! * [`HealthEngine`] — the per-tick evaluator and alert state machine
//!   (`Ok → Pending → Firing → Resolved`) with dedup keys, tick-keyed
//!   [`Silence`]s, and hysteresis on both edges.  Every transition is an
//!   [`AlertEvent`]: a serde value the pipeline publishes on the broker
//!   (`health/alerts`), republishes as `hpcmon.self.health.*` series, and
//!   byte-diffs across worker counts via [`HealthEngine::canonical_timeline`].
//! * [`HealthReport`] — the per-subsystem grades, active alerts, and
//!   per-site rollup rows that `hpcmon-viz`'s health board renders.
//!
//! Everything is keyed by tick, never wall clock; state snapshots
//! ([`HealthSnapshot`]) restore bit-exactly so replay reproduces alert
//! histories, and [`HealthEngine::state_digest`] folds into the replay
//! hash chain.

#![warn(missing_docs)]

pub mod alert;
pub mod engine;
pub mod slo;

pub use alert::{
    ActiveAlert, AlertEvent, Grade, HealthReport, Silence, SiteHealth, SubsystemHealth, Transition,
};
pub use engine::{FeedValue, HealthConfig, HealthEngine, HealthSnapshot, Phase, SloState};
pub use slo::{burn_rate, SloSpec, Subsystem};
