//! Alert lifecycle: phases, transition events, silences, and the health
//! report types the operator console renders.
//!
//! The state machine is `Ok → Pending → Firing → Ok`, driven purely by
//! ticks: Pending promotes to Firing after `pending_ticks` consecutive
//! violating ticks, Firing resolves after `resolve_ticks` consecutive
//! clear ticks, and a Pending alert whose condition clears drops back to
//! Ok silently (it never fired, so there is nothing to resolve).  Every
//! *published* transition is an [`AlertEvent`] — a plain serde value, so
//! the broker payload, the stored series, and the byte-diffed canonical
//! timeline are all views of the same record.

use crate::slo::Subsystem;
use hpcmon_metrics::Severity;
use serde::{Deserialize, Serialize};

/// Published alert lifecycle transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transition {
    /// The condition started violating; not yet confirmed.
    Pending,
    /// Confirmed: violating for `pending_ticks` consecutive ticks.
    Firing,
    /// Healed: clear for `resolve_ticks` consecutive ticks after Firing.
    Resolved,
}

impl Transition {
    /// Uppercase label for rendered timelines.
    pub fn label(self) -> &'static str {
        match self {
            Transition::Pending => "PENDING",
            Transition::Firing => "FIRING",
            Transition::Resolved => "RESOLVED",
        }
    }
}

/// One alert lifecycle transition, keyed by tick.
///
/// `exemplar_trace` is observability garnish, not state: it links the
/// alert to the trace nearest the violating latency quantile when tracing
/// is on, but it is zeroed out of the canonical timeline and excluded
/// from state digests because exemplar selection rides wall-clock stage
/// timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertEvent {
    /// Tick the transition happened on.
    pub tick: u64,
    /// Dedup key (`subsystem/name` or `subsystem/name@site`).
    pub key: String,
    /// Subsystem the underlying SLO grades.
    pub subsystem: Subsystem,
    /// Federation site, if the SLO is site-scoped.
    pub site: Option<String>,
    /// Which lifecycle edge this is.
    pub transition: Transition,
    /// Severity from the SLO spec.
    pub severity: Severity,
    /// Fast-window burn rate at the transition tick.
    pub fast_burn: f64,
    /// Slow-window burn rate at the transition tick.
    pub slow_burn: f64,
    /// Trace id nearest the violating quantile (0 when tracing is off).
    pub exemplar_trace: u64,
    /// True if a silence matched: recorded but not broker-published.
    pub silenced: bool,
}

/// A tick-keyed silence window.  `key` is an exact dedup key or a
/// trailing-`*` glob (`"store/*"` silences every store alert).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Silence {
    /// Dedup key or trailing-`*` glob to match.
    pub key: String,
    /// First silenced tick (inclusive).
    pub from_tick: u64,
    /// First tick no longer silenced (exclusive).
    pub until_tick: u64,
}

impl Silence {
    /// Does this silence cover `key` at `tick`?
    pub fn matches(&self, key: &str, tick: u64) -> bool {
        if tick < self.from_tick || tick >= self.until_tick {
            return false;
        }
        match self.key.strip_suffix('*') {
            Some(prefix) => key.starts_with(prefix),
            None => self.key == key,
        }
    }
}

/// Per-subsystem health grade, worst-of over that subsystem's alerts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Grade {
    /// No active alerts.
    Healthy,
    /// Something is Pending, or Firing below `Error` severity.
    Degraded,
    /// Firing at `Error` severity or above.
    Critical,
}

impl Grade {
    /// Uppercase label for the board.
    pub fn label(self) -> &'static str {
        match self {
            Grade::Healthy => "OK",
            Grade::Degraded => "DEGRADED",
            Grade::Critical => "CRITICAL",
        }
    }
}

/// A currently Pending or Firing alert as shown on the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveAlert {
    /// Dedup key.
    pub key: String,
    /// Subsystem of the underlying SLO.
    pub subsystem: Subsystem,
    /// Federation site, if site-scoped.
    pub site: Option<String>,
    /// Severity from the SLO spec.
    pub severity: Severity,
    /// True if Firing, false if still Pending.
    pub firing: bool,
    /// Tick the current episode started violating.
    pub since_tick: u64,
    /// Ticks since `since_tick`, as of the report tick.
    pub age_ticks: u64,
    /// Current fast-window burn rate.
    pub fast_burn: f64,
    /// Current slow-window burn rate.
    pub slow_burn: f64,
    /// Exemplar trace captured when the alert fired (0 if none).
    pub exemplar_trace: u64,
}

/// One subsystem row of the board.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsystemHealth {
    /// Which subsystem.
    pub subsystem: Subsystem,
    /// Worst-of grade over its alerts.
    pub grade: Grade,
    /// Count of Firing alerts.
    pub firing: usize,
    /// Count of Pending alerts.
    pub pending: usize,
}

/// One federation-site row of the board (site-scoped SLOs only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteHealth {
    /// Site name.
    pub site: String,
    /// Worst-of grade over the site's alerts.
    pub grade: Grade,
    /// Count of Firing alerts.
    pub firing: usize,
    /// Count of Pending alerts.
    pub pending: usize,
}

/// Everything the operator console needs for one render.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Tick the report describes.
    pub tick: u64,
    /// One row per subsystem, in [`Subsystem::ALL`] order.
    pub subsystems: Vec<SubsystemHealth>,
    /// Active (Pending or Firing) alerts, Firing first, then by key.
    pub active: Vec<ActiveAlert>,
    /// Per-site rollup rows; empty outside federation mode.
    pub sites: Vec<SiteHealth>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silence_exact_and_glob() {
        let s = Silence { key: "store/ingest".into(), from_tick: 10, until_tick: 20 };
        assert!(s.matches("store/ingest", 10));
        assert!(s.matches("store/ingest", 19));
        assert!(!s.matches("store/ingest", 20), "until is exclusive");
        assert!(!s.matches("store/ingest", 9));
        assert!(!s.matches("store/other", 15));

        let g = Silence { key: "store/*".into(), from_tick: 0, until_tick: u64::MAX };
        assert!(g.matches("store/ingest", 5));
        assert!(g.matches("store/ingest@alcf", 5));
        assert!(!g.matches("transport/delivery", 5));
    }

    #[test]
    fn grades_order_worst_last() {
        assert!(Grade::Healthy < Grade::Degraded);
        assert!(Grade::Degraded < Grade::Critical);
    }

    #[test]
    fn alert_event_round_trips_serde() {
        let ev = AlertEvent {
            tick: 42,
            key: "store/ingest".into(),
            subsystem: Subsystem::Store,
            site: None,
            transition: Transition::Firing,
            severity: Severity::Error,
            fast_burn: 900.0,
            slow_burn: 75.0,
            exemplar_trace: 7,
            silenced: false,
        };
        let json = serde_json::to_string(&ev).expect("serialize");
        let back: AlertEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(ev, back);
    }
}
