//! Figure 5 (NCSA): per-job multi-metric panels with sum/mean condensation
//! and CSV download.
//!
//! Regenerates the panel and prints it, then benchmarks the per-job query
//! (allocation + timeframe extraction) and the CSV export.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::scenarios::fig5_perjob;
use hpcmon_bench::{populated_store, BENCH_SEED};
use hpcmon_metrics::{JobId, JobRecord, JobState, MetricId, Ts};
use hpcmon_store::QueryEngine;
use hpcmon_viz::series_to_csv;

fn regenerate() {
    let r = fig5_perjob(BENCH_SEED);
    println!("\n=== Figure 5: per-job multi-metric panel ===");
    println!("{}", r.panel_text);
    println!(
        "  CSV download: {} rows, header: {}",
        r.csv.lines().count() - 1,
        r.csv.lines().next().unwrap_or("")
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig5_perjob");
    group.sample_size(20);
    let store = populated_store(256, 240);
    let q = QueryEngine::new(&store);
    let job = JobRecord {
        id: JobId(1),
        user: "bob".into(),
        name: "climate".into(),
        nodes: (0..64).collect(),
        submit: Ts::ZERO,
        start: Some(Ts::from_mins(10)),
        end: Some(Ts::from_mins(200)),
        state: JobState::Completed,
    };
    group.bench_function("job_series_64_nodes_190min", |b| {
        b.iter(|| std::hint::black_box(q.job_series(&job, MetricId(0)).sum.len()))
    });
    let js = q.job_series(&job, MetricId(0));
    let series = vec![("sum".to_owned(), js.sum.clone()), ("mean".to_owned(), js.mean.clone())];
    group.bench_function("csv_export_2x190", |b| {
        b.iter(|| std::hint::black_box(series_to_csv(&series).len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
