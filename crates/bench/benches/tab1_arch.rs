//! Table I "Architecture": transport throughput, fan-out to multiple
//! consumers, and backpressure behaviour.
//!
//! Requirements exercised: "multiple flexible data paths", "direct the
//! data ... to multiple consumers", drop accounting instead of silent
//! loss, native-format payloads.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmon_metrics::{CompId, Frame, MetricId, Ts};
use hpcmon_transport::{BackpressurePolicy, Broker, Payload, TopicFilter};
use std::sync::Arc;

fn frame_payload(samples: u32) -> Payload {
    let mut frame = Frame::new(Ts(0));
    for i in 0..samples {
        frame.push(MetricId(0), CompId::node(i), i as f64);
    }
    Payload::Frame(Arc::new(frame))
}

fn print_capability() {
    println!("\n=== Table I (Architecture): transport capability ===");
    let broker = Broker::new();
    let subs: Vec<_> = (0..4)
        .map(|_| broker.subscribe(TopicFilter::all(), 1 << 14, BackpressurePolicy::Block))
        .collect();
    let lossy = broker.subscribe(TopicFilter::all(), 8, BackpressurePolicy::DropOldest);
    for i in 0..10_000 {
        broker.publish("metrics/frame", Payload::Raw(Bytes::from(vec![i as u8; 64])));
    }
    let stats = broker.stats();
    println!(
        "  published {}  delivered {}  dropped {} (all on the 8-deep lossy dashboard sub)",
        stats.published, stats.delivered, stats.dropped
    );
    println!(
        "  lossless consumers each queued {} msgs; lossy retained {} (dropped {})\n",
        subs[0].queued(),
        lossy.queued(),
        lossy.dropped()
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("tab1_arch");
    group.sample_size(30);

    for consumers in [1usize, 4, 16] {
        let broker = Broker::new();
        let _subs: Vec<_> = (0..consumers)
            .map(|_| broker.subscribe(TopicFilter::all(), 1 << 16, BackpressurePolicy::DropOldest))
            .collect();
        let payload = frame_payload(1_000);
        group.bench_with_input(
            BenchmarkId::new("publish_1k_sample_frame", consumers),
            &consumers,
            |b, _| {
                b.iter(|| std::hint::black_box(broker.publish("metrics/frame", payload.clone())))
            },
        );
    }

    // Topic matching cost with many selective subscribers.
    let broker = Broker::new();
    let _subs: Vec<_> = (0..64)
        .map(|i| {
            broker.subscribe(
                TopicFilter::new(&format!("metrics/src{i}/#")),
                1 << 10,
                BackpressurePolicy::DropOldest,
            )
        })
        .collect();
    let payload = Payload::Raw(Bytes::from_static(b"x"));
    group.bench_function("publish_64_selective_subs", |b| {
        b.iter(|| std::hint::black_box(broker.publish("metrics/src7/node", payload.clone())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
