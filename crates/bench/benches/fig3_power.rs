//! Figure 3 (KAUST): total and per-cabinet power during a load-imbalance
//! window.
//!
//! Regenerates the two panels and prints the paper's two headline numbers
//! (≈3× cabinet variation, ≈1.9× lower total draw), then benchmarks the
//! imbalance assessment and the power-profile comparison kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::scenarios::fig3_power;
use hpcmon_analysis::{ImbalanceDetector, PowerProfileLibrary};
use hpcmon_bench::{print_series_row, BENCH_SEED};

fn regenerate() {
    let r = fig3_power(BENCH_SEED);
    println!("\n=== Figure 3: power during load imbalance ===");
    print_series_row("total power W", &r.total_power);
    for (comp, pts) in r.cabinet_power.iter().take(4) {
        print_series_row(&format!("cabinet {} power W", comp.index), pts);
    }
    println!(
        "  window (job min {}..{}): cabinet max/min {:.2}x (paper: up to 3x); balanced/imbalanced total draw {:.2}x (paper: almost 1.9x)",
        r.window_mins.0, r.window_mins.1, r.window_cabinet_ratio, r.draw_ratio
    );
    println!(
        "  imbalance detector flagged at: {:?}\n",
        r.flagged_ticks.iter().map(|t| t.display_hms()).collect::<Vec<_>>()
    );
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig3_power");
    group.sample_size(30);

    let det = ImbalanceDetector::new();
    let cabinets: Vec<f64> =
        (0..64).map(|i| if i % 4 == 0 { 20_000.0 } else { 58_000.0 + i as f64 }).collect();
    group.bench_function("imbalance_assess_64_cabinets", |b| {
        b.iter(|| std::hint::black_box(det.assess(&cabinets).max_min_ratio))
    });

    let mut lib = PowerProfileLibrary::new();
    let reference: Vec<f64> = (0..600).map(|i| 300.0 + 30.0 * ((i / 60) % 2) as f64).collect();
    lib.record_reference("vasp", &reference);
    let run: Vec<f64> = (0..580).map(|i| 302.0 + 30.0 * ((i / 58) % 2) as f64).collect();
    group.bench_function("profile_compare_600pt", |b| {
        b.iter(|| std::hint::black_box(lib.compare("vasp", &run).unwrap().deviation))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
