//! Ablation: token inverted index vs full substring scan for log search.
//!
//! "In production most log analysis involves detection of well-known log
//! lines" — the indexed path is what makes that cheap at Splunk/ES scale;
//! the scan is the baseline every site starts with.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmon_metrics::{CompId, LogRecord, Severity, Ts};
use hpcmon_store::{LogQuery, LogStore};

fn build_store(n: u64) -> LogStore {
    let store = LogStore::new();
    for i in 0..n {
        let (sev, msg) = match i % 200 {
            0 => (Severity::Error, "LCB failure on link r4->r5".to_owned()),
            1..=9 => (Severity::Warning, format!("{} CRC retries on lane 0", i % 17)),
            _ => (Severity::Info, format!("systemd: Started Session {i} of user root")),
        };
        store.append(LogRecord::new(
            Ts::from_secs(i),
            CompId::node((i % 512) as u32),
            sev,
            "console",
            msg,
        ));
    }
    store
}

fn print_capability() {
    println!("\n=== Ablation: indexed vs scanned log search ===");
    let store = build_store(100_000);
    let hits = store.search(&LogQuery::tokens(&["lcb", "failure"]));
    let scanned = store.scan_substring("LCB failure");
    println!(
        "  100k records: indexed search {} hits, scan {} hits, index ~{} KiB",
        hits.len(),
        scanned.len(),
        store.index_bytes() / 1024
    );
    println!("  (both find the same well-known line; the bench shows the cost gap)\n");
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_logindex");
    group.sample_size(20);
    for n in [10_000u64, 100_000] {
        let store = build_store(n);
        group.bench_with_input(BenchmarkId::new("indexed_search", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(store.search(&LogQuery::tokens(&["lcb", "failure"])).len())
            })
        });
        group.bench_with_input(BenchmarkId::new("substring_scan", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(store.scan_substring("LCB failure").len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
