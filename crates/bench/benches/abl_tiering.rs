//! Ablation: tiered store (hot → compressed warm) vs a flat uncompressed
//! store.
//!
//! DESIGN.md calls out tiering as a design choice; this quantifies both
//! sides: memory footprint (compression) and the query-time cost of
//! decompressing warm blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon_metrics::{CompId, MetricId, Sample, SeriesKey, Ts};
use hpcmon_store::TimeSeriesStore;

fn fill(store: &TimeSeriesStore, series: u32, points: u64) {
    for n in 0..series {
        for m in 0..points {
            let v = 200.0 + ((m as f64) * 0.05).sin() * 10.0;
            store.insert(&Sample::new(MetricId(0), CompId::node(n), Ts::from_mins(m), v));
        }
    }
}

fn print_capability() {
    println!("\n=== Ablation: tiered vs flat storage ===");
    // Flat: huge seal threshold keeps everything hot (raw 16 B/point).
    let flat = TimeSeriesStore::with_options(16, usize::MAX / 2);
    fill(&flat, 64, 2_000);
    let fs = flat.stats();
    // Tiered: default sealing compresses.
    let tiered = TimeSeriesStore::new();
    fill(&tiered, 64, 2_000);
    tiered.seal_all();
    let ts = tiered.stats();
    println!("  flat:   {} hot points (~{} KiB raw)", fs.hot_points, fs.hot_points * 16 / 1024);
    println!(
        "  tiered: {} warm points in {} KiB ({:.2} B/pt, {:.1}x smaller)\n",
        ts.warm_points,
        ts.warm_bytes / 1024,
        ts.bytes_per_point,
        16.0 / ts.bytes_per_point.max(1e-9)
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_tiering");
    group.sample_size(20);

    let flat = TimeSeriesStore::with_options(16, usize::MAX / 2);
    fill(&flat, 64, 2_000);
    let tiered = TimeSeriesStore::new();
    fill(&tiered, 64, 2_000);
    tiered.seal_all();
    let key = SeriesKey::new(MetricId(0), CompId::node(7));

    group.bench_function("query_2k_points_hot_flat", |b| {
        b.iter(|| std::hint::black_box(flat.query(key, Ts::ZERO, Ts(u64::MAX)).len()))
    });
    group.bench_function("query_2k_points_warm_tiered", |b| {
        b.iter(|| std::hint::black_box(tiered.query(key, Ts::ZERO, Ts(u64::MAX)).len()))
    });
    group.bench_function("ingest_with_sealing", |b| {
        b.iter_with_setup(
            || TimeSeriesStore::with_options(16, 512),
            |store| {
                fill(&store, 4, 1_024);
                std::hint::black_box(store.stats().warm_points)
            },
        )
    });
    group.bench_function("ingest_flat", |b| {
        b.iter_with_setup(
            || TimeSeriesStore::with_options(16, usize::MAX / 2),
            |store| {
                fill(&store, 4, 1_024);
                std::hint::black_box(store.stats().hot_points)
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
