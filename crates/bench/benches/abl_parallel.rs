//! Ablation: the parallel tick pipeline.
//!
//! A 4,096-node machine (16×16×8 torus, 2 nodes/router — Gemini-flavored)
//! is ticked with the serial pipeline (`workers = 0`) and with a 4-worker
//! pool fanning the collect, analysis, and store stages.  Two claims:
//!
//! 1. Speed: on a multi-core host the pool should reach ≥1.5× serial
//!    throughput.  The ratio is printed, not asserted — CI containers
//!    often expose a single CPU, where the honest ratio is ~1.0×.
//! 2. Determinism: output is compared bit-for-bit (reports and every
//!    stored value) — the speedup must be free of result drift.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_metrics::Ts;
use hpcmon_replay::{FlightRecorder, RunSpec};
use hpcmon_sim::TopologySpec;
use std::time::Instant;

fn big_config() -> SimConfig {
    SimConfig {
        topology: TopologySpec::Torus3D { dims: [16, 16, 8], nodes_per_router: 2 },
        ..SimConfig::small()
    }
}

fn build(workers: usize) -> MonitoringSystem {
    MonitoringSystem::builder(big_config()).self_telemetry(false).workers(workers).build()
}

fn ticks_per_sec(workers: usize, ticks: u64) -> f64 {
    let mut mon = build(workers);
    mon.run_ticks(2); // warm-up: registries populated, stores primed
    let start = Instant::now();
    mon.run_ticks(ticks);
    ticks as f64 / start.elapsed().as_secs_f64()
}

/// Bit-exact digest of everything a run produced.
fn digest(mon: &MonitoringSystem) -> Vec<(String, Vec<(u64, u64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| {
            let pts = mon
                .store()
                .query(k, Ts::ZERO, Ts(u64::MAX))
                .into_iter()
                .map(|(t, v)| (t.0, v.to_bits()))
                .collect();
            (format!("{k:?}"), pts)
        })
        .collect()
}

fn print_capability() {
    println!("\n=== Ablation: parallel tick pipeline (4,096 nodes) ===");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("  host parallelism: {cores} core(s)");

    // Determinism first — a speedup that changes answers is a bug, not a
    // feature.  Short runs suffice: every stage output feeds the next
    // tick, so drift would compound and surface immediately.
    let mut serial = build(0);
    let mut par = build(4);
    let reports_serial: Vec<_> = (0..4).map(|_| serial.tick()).collect();
    let reports_par: Vec<_> = (0..4).map(|_| par.tick()).collect();
    assert_eq!(reports_serial, reports_par, "parallel TickReports must equal serial");
    assert_eq!(serial.signals(), par.signals(), "signal streams must be identical");
    assert_eq!(digest(&serial), digest(&par), "store contents must be bit-identical");
    println!("  determinism: 4 workers == serial, bit-for-bit (reports, signals, store)");

    // Best-of-N throughput: a single timing is at the mercy of whatever
    // else the machine is doing; best-of-N converges on the undisturbed
    // cost of each configuration.
    const TICKS: u64 = 6;
    const ROUNDS: usize = 3;
    let mut t_serial = f64::MIN;
    let mut t_par = f64::MIN;
    for _ in 0..ROUNDS {
        t_serial = t_serial.max(ticks_per_sec(0, TICKS));
        t_par = t_par.max(ticks_per_sec(4, TICKS));
    }
    println!("  serial (workers=0):   {t_serial:8.2} ticks/s");
    println!("  parallel (workers=4): {t_par:8.2} ticks/s");
    println!("  speedup: {:.2}x (target on >=4 cores: 1.5x)", t_par / t_serial);
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_parallel");
    group.sample_size(10);
    for workers in [0usize, 4] {
        group.bench_function(format!("tick_4096_nodes_workers_{workers}"), |b| {
            b.iter_with_setup(
                || {
                    let mut mon = build(workers);
                    mon.run_ticks(1);
                    mon
                },
                |mut mon| mon.run_ticks(3),
            )
        });
    }
    group.finish();

    // Flight-recorder overhead: the same machine ticked bare vs wrapped
    // in a FlightRecorder (per-tick state hashing + event-log append;
    // snapshots excluded — they are amortized over their cadence).
    // Baseline first, so BENCH_abl_parallel.json's
    // overhead_vs_group_baseline for "recorder_on" is the ≤5% budget the
    // flight-recorder design is held to (DESIGN.md §11).
    let mut group = c.benchmark_group("recording_overhead");
    group.sample_size(10);
    group.bench_function("baseline_off", |b| {
        b.iter_with_setup(
            || {
                let mut mon = build(0);
                mon.run_ticks(2);
                mon
            },
            |mut mon| mon.run_ticks(10),
        )
    });
    group.bench_function("recorder_on", |b| {
        b.iter_with_setup(
            || {
                let mut rec = FlightRecorder::new(RunSpec::new(big_config()).snapshot_every(0));
                rec.run_ticks(2);
                rec
            },
            |mut rec| rec.run_ticks(10),
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
