//! Table I "Data Storage and Formats": ingest rate, compression ratio,
//! query latency, and the archive→locate→reload cycle.
//!
//! Requirements exercised: "keep all data" (bytes/sample print),
//! "hierarchical storage models with the ability to locate and reload
//! data", "access historical data in conjunction with current data".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpcmon_bench::populated_store;
use hpcmon_metrics::{CompId, MetricId, Sample, SeriesKey, Ts};
use hpcmon_store::{Archive, TimeSeriesStore};

fn print_capability() {
    println!("\n=== Table I (Storage): tiering and compression ===");
    let store = populated_store(256, 1_000);
    store.seal_all();
    let stats = store.stats();
    println!(
        "  256 series x 1000 pts: {} warm bytes, {:.2} bytes/sample (raw is 16)",
        stats.warm_bytes, stats.bytes_per_point
    );
    let mut archive = Archive::new();
    let cat = archive.archive_before(&store, Ts::from_mins(1_000)).expect("archivable");
    println!(
        "  archived segment {}: {} blocks, {} points, {} bytes; catalog range {}..{}",
        cat.segment, cat.blocks, cat.points, cat.bytes, cat.start, cat.end
    );
    archive.reload_into(cat.segment, &store);
    let key = SeriesKey::new(MetricId(0), CompId::node(0));
    println!(
        "  after reload: historical query returns {} points\n",
        store.query(key, Ts::ZERO, Ts(u64::MAX)).len()
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("tab1_storage");
    group.sample_size(20);

    // Ingest throughput.
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("ingest_10k_samples", |b| {
        b.iter_with_setup(TimeSeriesStore::new, |store| {
            for i in 0..10_000u64 {
                store.insert(&Sample::new(
                    MetricId(0),
                    CompId::node((i % 100) as u32),
                    Ts(i * 1_000),
                    i as f64,
                ));
            }
            std::hint::black_box(store.stats().series)
        })
    });
    group.throughput(Throughput::Elements(1));

    // Query latency across tiers.
    let store = populated_store(256, 1_000);
    store.seal_all();
    let key = SeriesKey::new(MetricId(0), CompId::node(7));
    group.bench_function("query_1k_points_warm", |b| {
        b.iter(|| std::hint::black_box(store.query(key, Ts::ZERO, Ts(u64::MAX)).len()))
    });
    group.bench_function("query_range_100_points", |b| {
        b.iter(|| {
            std::hint::black_box(store.query(key, Ts::from_mins(400), Ts::from_mins(499)).len())
        })
    });

    // Archive + reload cycle.
    group.bench_function("archive_and_reload_cycle", |b| {
        b.iter_with_setup(
            || {
                let s = populated_store(32, 200);
                s.seal_all();
                s
            },
            |store| {
                let mut archive = Archive::new();
                let cat = archive.archive_before(&store, Ts(u64::MAX)).expect("archivable");
                archive.reload_into(cat.segment, &store);
                std::hint::black_box(cat.points)
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
