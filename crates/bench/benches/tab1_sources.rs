//! Table I "Data Sources": full-fidelity collection cost, the
//! fidelity/overhead tradeoff, and subsystem coverage.
//!
//! Requirements exercised: "expose all possible data sources for all
//! possible subsystems" (coverage print), "raw data at maximum fidelity
//! with the lowest possible overhead" (full sweep cost vs decimated).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmon_bench::BENCH_SEED;
use hpcmon_collect::collectors::standard_collectors;
use hpcmon_collect::{Collector, NetworkCollector, StdMetrics};
use hpcmon_metrics::{ColumnFrame, MetricRegistry, Ts, MINUTE_MS};
use hpcmon_sim::{AppProfile, JobSpec, SimConfig, SimEngine, TopologySpec};

fn busy_engine() -> SimEngine {
    let mut cfg = SimConfig::small();
    cfg.topology = TopologySpec::Torus3D { dims: [8, 8, 4], nodes_per_router: 2 };
    cfg.seed = BENCH_SEED;
    let mut engine = SimEngine::new(cfg);
    engine.submit_job(JobSpec::new(
        AppProfile::comm_heavy("fft"),
        "u",
        256,
        600 * MINUTE_MS,
        Ts::ZERO,
    ));
    engine.step();
    engine.step();
    engine
}

fn print_coverage(engine: &SimEngine, metrics: StdMetrics) {
    let mut frame = ColumnFrame::new(engine.now());
    for c in &mut standard_collectors(metrics) {
        c.collect(engine, &mut frame);
    }
    let kinds: std::collections::BTreeSet<&str> =
        frame.iter().map(|s| s.key.comp.kind.label()).collect();
    println!("\n=== Table I (Data Sources): coverage ===");
    println!("  one synchronized sweep: {} samples", frame.len());
    println!("  component kinds covered: {kinds:?}");
    println!("  (plus text logs via the harvester and test results via the bench suite)\n");
}

fn bench(c: &mut Criterion) {
    let engine = busy_engine();
    let registry = MetricRegistry::new();
    let metrics = StdMetrics::register(&registry);
    print_coverage(&engine, metrics);

    let mut group = c.benchmark_group("tab1_sources");
    group.sample_size(30);

    group.bench_function("full_sweep_512_nodes", |b| {
        let mut collectors = standard_collectors(metrics);
        b.iter(|| {
            let mut frame = ColumnFrame::new(engine.now());
            for col in &mut collectors {
                col.collect(&engine, &mut frame);
            }
            std::hint::black_box(frame.len())
        })
    });

    for stride in [1u32, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("hsn_collector_stride", stride),
            &stride,
            |b, &stride| {
                let mut col = NetworkCollector::with_stride(metrics, stride);
                b.iter(|| {
                    let mut frame = ColumnFrame::new(engine.now());
                    col.collect(&engine, &mut frame);
                    std::hint::black_box(frame.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
