//! Table I "Response": detect→action latency and the CSCS health-gating
//! outcome.
//!
//! Requirements exercised: "reporting and alerting ... easily
//! configurable", "triggered based on arbitrary locations", "results ...
//! exposed to applications and system software" (scheduler feedback via
//! gating).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpcmon::scenarios::gating_experiment;
use hpcmon_bench::BENCH_SEED;
use hpcmon_metrics::{CompId, Severity, Ts};
use hpcmon_response::{ResponseEngine, Signal, SignalKind};

fn print_capability() {
    println!("\n=== Table I (Response): CSCS health gating ===");
    let r = gating_experiment(BENCH_SEED);
    println!(
        "  gating OFF: {} failed / {} completed; gating ON: {} failed / {} completed",
        r.failed_without_gating,
        r.completed_without_gating,
        r.failed_with_gating,
        r.completed_with_gating
    );
    println!("  (paper goal: 'a problem should only be encountered by at most one batch job')\n");
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("tab1_response");
    group.sample_size(30);

    // Signal-handling throughput through the production rule set, with
    // storms (cooldown path) and distinct components (firing path).
    let signals: Vec<Signal> = (0..10_000u64)
        .map(|i| {
            Signal::new(
                Ts::from_secs(i),
                if i % 3 == 0 { SignalKind::HealthCheckFailure } else { SignalKind::MetricAnomaly },
                if i % 7 == 0 { Severity::Critical } else { Severity::Warning },
                CompId::node((i % 256) as u32),
                4.0,
                "bench signal",
            )
        })
        .collect();
    group.throughput(Throughput::Elements(signals.len() as u64));
    group.bench_function("handle_10k_signals_production_rules", |b| {
        b.iter(|| {
            let mut engine = ResponseEngine::new(ResponseEngine::production_rules());
            let actions: usize = signals.iter().map(|s| engine.handle(s).len()).sum();
            std::hint::black_box(actions)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
