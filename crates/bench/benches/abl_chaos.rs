//! Ablation: collector supervision and the store-ingest circuit breaker.
//!
//! PR 5's survival machinery (per-collector supervisors, the breaker +
//! spill queue, coverage stamping) sits on the hot tick path, so it must
//! be close to free when nothing is failing.  Two claims:
//!
//! 1. Cost: with supervision ON but no chaos plan, tick throughput stays
//!    within ~2% of the unsupervised pipeline.  The ratio is printed, not
//!    asserted — CI containers time too noisily for a hard 2% gate; the
//!    number is the artifact.
//! 2. Neutrality: supervision with no faults changes *nothing* — reports,
//!    signals, and every stored bit match the unsupervised run exactly.
//!    This one IS asserted: a supervisor that perturbs healthy results is
//!    a bug regardless of what the clock says.
//!
//! A third section runs a dense chaos schedule to show what the overhead
//! buys: faults surface as deadman gaps, frames spill and drain, and the
//! plane heals back to 100% coverage.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{BreakerState, ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_metrics::Ts;
use hpcmon_sim::TopologySpec;
use std::time::Instant;

fn big_config() -> SimConfig {
    SimConfig {
        topology: TopologySpec::Torus3D { dims: [16, 16, 8], nodes_per_router: 2 },
        ..SimConfig::small()
    }
}

fn build(supervised: bool) -> MonitoringSystem {
    MonitoringSystem::builder(big_config()).self_telemetry(false).supervision(supervised).build()
}

fn chaos_plan() -> ChaosPlan {
    ChaosPlan::from_faults(vec![
        ScheduledFault {
            at_tick: 2,
            fault: ChaosFault::CollectorHang { collector: "power".into(), ticks: 2 },
        },
        ScheduledFault { at_tick: 4, fault: ChaosFault::StoreWriteFail { shard: 0, ticks: 2 } },
        ScheduledFault { at_tick: 5, fault: ChaosFault::EnvelopeCorrupt { rate: 0.5, ticks: 3 } },
    ])
}

fn ticks_per_sec(supervised: bool, ticks: u64) -> f64 {
    let mut mon = build(supervised);
    mon.run_ticks(2); // warm-up: registries populated, stores primed
    let start = Instant::now();
    mon.run_ticks(ticks);
    ticks as f64 / start.elapsed().as_secs_f64()
}

/// Bit-exact digest of everything a run produced.
fn digest(mon: &MonitoringSystem) -> Vec<(String, Vec<(u64, u64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| {
            let pts = mon
                .store()
                .query(k, Ts::ZERO, Ts(u64::MAX))
                .into_iter()
                .map(|(t, v)| (t.0, v.to_bits()))
                .collect();
            (format!("{k:?}"), pts)
        })
        .collect()
}

fn print_capability() {
    println!("\n=== Ablation: supervision + ingest breaker (4,096 nodes) ===");

    // Neutrality first: supervision with no chaos plan must be invisible.
    let mut plain = build(false);
    let mut supervised = build(true);
    let reports_plain: Vec<_> = (0..4).map(|_| plain.tick()).collect();
    let reports_sup: Vec<_> = (0..4).map(|_| supervised.tick()).collect();
    assert_eq!(reports_plain, reports_sup, "supervised TickReports must equal unsupervised");
    assert_eq!(plain.signals(), supervised.signals(), "signal streams must be identical");
    assert_eq!(digest(&plain), digest(&supervised), "store contents must be bit-identical");
    println!("  neutrality: supervision on == off, bit-for-bit (reports, signals, store)");

    // Best-of-N throughput, same rationale as abl_parallel: best-of
    // converges on the undisturbed cost of each configuration.
    const TICKS: u64 = 6;
    const ROUNDS: usize = 3;
    let mut t_plain = f64::MIN;
    let mut t_sup = f64::MIN;
    for _ in 0..ROUNDS {
        t_plain = t_plain.max(ticks_per_sec(false, TICKS));
        t_sup = t_sup.max(ticks_per_sec(true, TICKS));
    }
    let overhead_pct = (t_plain / t_sup - 1.0) * 100.0;
    println!("  unsupervised:        {t_plain:8.2} ticks/s");
    println!("  supervised, no chaos:{t_sup:8.2} ticks/s");
    println!("  supervision overhead: {overhead_pct:+.2}% (target: <= 2%)");

    // What the overhead buys: a faulted run that heals itself.
    let mut mon = MonitoringSystem::builder(big_config())
        .self_telemetry(false)
        .chaos(42, chaos_plan())
        .build();
    mon.run_ticks(16);
    let counts = mon.chaos_counts().unwrap();
    assert_eq!(mon.quarantined_collectors(), 0, "collector re-admitted after the hang");
    assert_eq!(mon.breaker_state(), BreakerState::Closed, "breaker closed after the outage");
    assert_eq!(mon.spill_depth(), 0, "spill drained");
    assert_eq!(mon.spill_dropped(), 0, "no frames lost");
    println!(
        "  under chaos ({} faults injected): healed to {:.0}% coverage, 0 frames dropped",
        counts.total(),
        mon.last_coverage().map(|c| c.pct()).unwrap_or(0.0),
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_chaos");
    group.sample_size(10);
    for (label, supervised) in [("unsupervised", false), ("supervised_no_chaos", true)] {
        group.bench_function(format!("tick_4096_nodes_{label}"), |b| {
            b.iter_with_setup(
                || {
                    let mut mon = build(supervised);
                    mon.run_ticks(1);
                    mon
                },
                |mut mon| mon.run_ticks(3),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
