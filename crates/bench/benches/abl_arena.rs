//! Ablation: the columnar arena-backed frame hot path (DESIGN.md §14).
//!
//! One box, 65,536–131,072 simulated nodes, ~4 metrics per node.  The
//! question: what does replacing the per-sample row frame (build a
//! `Frame`, clone it into an `Arc` for transport, re-partition it into
//! per-shard sample vectors inside the store) with the columnar arena
//! (ping-pong buffer reuse, epoch-swap `Arc` handoff, routed column
//! ingest) buy per tick?  Three claims:
//!
//! 1. Allocation flatness: in steady state the columnar tick performs
//!    at most **one** heap allocation (the epoch-swap `Arc` control
//!    block), flat across ticks — asserted with the counting allocator
//!    and contrasted with the row path's hundreds.
//! 2. Speed: ≥2× tick throughput at 65k nodes — asserted; the win is
//!    algorithmic (no clone, no re-hash, no per-tick partition vectors),
//!    not parallelism, so it holds on a single-core CI box.
//! 3. Determinism: the full pipeline over the new path stays
//!    bit-identical at workers 0, 1, and 4 — reports, signals, store.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_bench::BENCH_SEED;
use hpcmon_metrics::alloc_count::{thread_allocations, CountingAllocator};
use hpcmon_metrics::{CompId, Frame, FrameArena, MetricId, Ts, MINUTE_MS};
use hpcmon_sim::TopologySpec;
use hpcmon_store::{IngestRoute, TimeSeriesStore};
use std::sync::Arc;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const METRICS_PER_NODE: u32 = 4;

/// Deterministic sample value: a cheap hash of (node, metric, tick) so
/// both paths ingest identical data and neither gets a branch-predictor
/// gift of constant values.
fn value(node: u32, metric: u32, tick: u64) -> f64 {
    let mix = (node as u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add((metric as u64) << 17)
        .wrapping_add(tick.wrapping_mul(BENCH_SEED));
    ((mix >> 16) & 0x3FFF) as f64 * 0.25
}

/// The pre-arena hot path, reproduced faithfully: push every sample into
/// a fresh row `Frame`, clone it into an `Arc` for the transport handoff
/// (what `tick()` did before the epoch swap), then `insert_frame` — which
/// re-hashes every key and rebuilds per-shard sample vectors.
struct RowHarness {
    store: TimeSeriesStore,
    nodes: u32,
    tick: u64,
}

impl RowHarness {
    fn new(nodes: u32, seal_threshold: usize) -> RowHarness {
        RowHarness { store: TimeSeriesStore::with_options(16, seal_threshold), nodes, tick: 0 }
    }

    fn tick(&mut self) {
        let ts = Ts(self.tick * MINUTE_MS);
        let mut frame = Frame::new(ts);
        for node in 0..self.nodes {
            for m in 0..METRICS_PER_NODE {
                frame.push(MetricId(m), CompId::node(node), value(node, m, self.tick));
            }
        }
        let shared = Arc::new(frame.clone()); // old transport handoff
        self.store.insert_frame(&shared);
        self.tick += 1;
    }
}

/// The arena-backed hot path: reuse the column buffers released two
/// ticks ago, publish by epoch swap (no copy), ingest via a cached route
/// (one slot lookup per sample, one lock per touched shard).
struct ColHarness {
    store: TimeSeriesStore,
    arena: FrameArena,
    route: IngestRoute,
    nodes: u32,
    tick: u64,
}

impl ColHarness {
    fn new(nodes: u32, seal_threshold: usize) -> ColHarness {
        ColHarness {
            store: TimeSeriesStore::with_options(16, seal_threshold),
            arena: FrameArena::new(),
            route: IngestRoute::new(),
            nodes,
            tick: 0,
        }
    }

    fn tick(&mut self) {
        let ts = Ts(self.tick * MINUTE_MS);
        let mut cf = self.arena.take_current(ts);
        for node in 0..self.nodes {
            for m in 0..METRICS_PER_NODE {
                cf.push(MetricId(m), CompId::node(node), value(node, m, self.tick));
            }
        }
        let shared = self.arena.publish(cf);
        self.store.ingest_columns(&shared, &mut self.route);
        self.tick += 1;
    }
}

/// Bit-exact digest of everything a full-system run produced.
fn digest(mon: &MonitoringSystem) -> Vec<(String, Vec<(u64, u64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| {
            let pts = mon
                .store()
                .query(k, Ts::ZERO, Ts(u64::MAX))
                .into_iter()
                .map(|(t, v)| (t.0, v.to_bits()))
                .collect();
            (format!("{k:?}"), pts)
        })
        .collect()
}

fn build(workers: usize) -> MonitoringSystem {
    let cfg = SimConfig {
        topology: TopologySpec::Torus3D { dims: [16, 16, 8], nodes_per_router: 2 },
        ..SimConfig::small()
    };
    MonitoringSystem::builder(cfg).self_telemetry(false).workers(workers).build()
}

fn ticks_per_sec(harness_tick: &mut dyn FnMut(), ticks: u64) -> f64 {
    let start = Instant::now();
    for _ in 0..ticks {
        harness_tick();
    }
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn print_capability() {
    println!("\n=== Ablation: columnar arena frame hot path ===");

    // --- Claim 1: steady-state allocation flatness at 65,536 nodes. ---
    // Seal threshold high enough that no block seals during the window:
    // what remains is the pure per-tick hot path.
    const NODES: u32 = 65_536;
    let samples_per_tick = NODES as u64 * METRICS_PER_NODE as u64;
    println!(
        "  scale: {NODES} nodes x {METRICS_PER_NODE} metrics = {samples_per_tick} samples/tick"
    );

    // Warm-up: column buffers at capacity, slabs resolved, route cached,
    // then `seal_all` so measured ticks append into retained hot-buffer
    // capacity (hot `Vec` doubling is the store's amortized cost, paid
    // identically by both paths — it is not what this ablation measures).
    let mut col = ColHarness::new(NODES, 1 << 20);
    for _ in 0..6 {
        col.tick();
    }
    col.store.seal_all();
    let mut col_deltas = Vec::new();
    for _ in 0..5 {
        let before = thread_allocations();
        col.tick();
        col_deltas.push(thread_allocations() - before);
    }

    let mut row = RowHarness::new(NODES, 1 << 20);
    for _ in 0..6 {
        row.tick();
    }
    row.store.seal_all();
    let mut row_deltas = Vec::new();
    for _ in 0..5 {
        let before = thread_allocations();
        row.tick();
        row_deltas.push(thread_allocations() - before);
    }

    println!("  row path allocations/tick (5 ticks):  {row_deltas:?}");
    println!("  columnar allocations/tick (5 ticks):  {col_deltas:?}");
    // Flat AND near-zero: every measured tick costs the same, and that
    // cost is at most the one `Arc` control block the epoch-swap handoff
    // allocates in `publish` (released next tick by `take_current`).
    assert!(
        col_deltas.iter().all(|&d| d == col_deltas[0]),
        "columnar per-tick allocation count must be flat, got {col_deltas:?}"
    );
    assert!(
        col_deltas[0] <= 1,
        "columnar steady-state tick allocates at most the Arc handoff, got {col_deltas:?}"
    );
    assert!(
        row_deltas.iter().all(|&d| d > col_deltas[0]),
        "the row path is the allocation-heavy contrast"
    );

    // Both paths must have produced the same store state (same series
    // set, same point counts; spot-check series bit-for-bit).
    assert_eq!(row.store.stats().series, col.store.stats().series);
    assert_eq!(row.store.op_counts().samples_ingested, col.store.op_counts().samples_ingested);
    let keys = row.store.all_series();
    for k in keys.iter().step_by(4099) {
        let a = row.store.query(*k, Ts::ZERO, Ts(u64::MAX));
        let b = col.store.query(*k, Ts::ZERO, Ts(u64::MAX));
        assert_eq!(a, b, "row and columnar ingest diverged on {k:?}");
    }
    println!("  equivalence: row and columnar stores bit-identical (spot-checked)");

    // --- Claim 2: ≥2x tick throughput, best-of-N at both scales. ---
    const ROUNDS: usize = 3;
    const TICKS: u64 = 4;
    for nodes in [65_536u32, 131_072] {
        let mut t_row = f64::MIN;
        let mut t_col = f64::MIN;
        for _ in 0..ROUNDS {
            let mut row = RowHarness::new(nodes, 64);
            row.tick(); // warm-up
            t_row = t_row.max(ticks_per_sec(&mut || row.tick(), TICKS));
            let mut col = ColHarness::new(nodes, 64);
            col.tick();
            t_col = t_col.max(ticks_per_sec(&mut || col.tick(), TICKS));
        }
        let speedup = t_col / t_row;
        println!("  {nodes} nodes: row {t_row:7.2} ticks/s, columnar {t_col:7.2} ticks/s ({speedup:.2}x)");
        if nodes == 65_536 {
            assert!(
                speedup >= 2.0,
                "columnar hot path must be >=2x the row path at 65k nodes, got {speedup:.2}x"
            );
        }
    }

    // --- Claim 3: full pipeline over the new path, workers 0/1/4. ---
    let mut runs: Vec<MonitoringSystem> = [0usize, 1, 4].into_iter().map(build).collect();
    let reports: Vec<Vec<_>> =
        runs.iter_mut().map(|m| (0..4).map(|_| m.tick()).collect()).collect();
    assert_eq!(reports[0], reports[1], "workers=1 TickReports must equal serial");
    assert_eq!(reports[0], reports[2], "workers=4 TickReports must equal serial");
    assert_eq!(runs[0].signals(), runs[1].signals());
    assert_eq!(runs[0].signals(), runs[2].signals());
    let digests: Vec<_> = runs.iter().map(digest).collect();
    assert_eq!(digests[0], digests[1], "workers=1 store must be bit-identical to serial");
    assert_eq!(digests[0], digests[2], "workers=4 store must be bit-identical to serial");
    println!("  determinism: workers 0/1/4 bit-identical (reports, signals, store)");
}

fn bench(c: &mut Criterion) {
    print_capability();

    // Timed comparison at 65k nodes.  Persistent harnesses (state carries
    // across iterations, as in production); seal threshold 64 keeps hot
    // buffers bounded, and both paths pay the identical sealing cost.
    let mut group = c.benchmark_group("abl_arena");
    group.sample_size(10);
    let mut row = RowHarness::new(65_536, 64);
    row.tick();
    group.bench_function("row_frame_tick_65536_nodes", |b| b.iter(|| row.tick()));
    let mut col = ColHarness::new(65_536, 64);
    col.tick();
    group.bench_function("arena_columnar_tick_65536_nodes", |b| b.iter(|| col.tick()));
    let mut col_big = ColHarness::new(131_072, 64);
    col_big.tick();
    group.bench_function("arena_columnar_tick_131072_nodes", |b| b.iter(|| col_big.tick()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
