//! Ablation: the crash-tolerant durability plane (DESIGN.md §15).
//!
//! The WAL earns its keep only if the hot path barely notices it.  Three
//! claims, printed as the artifact (`BENCH_abl_wal.json`):
//!
//! 1. Cost: the tick-overhead budget is 5%.  The measured ratio against a
//!    4,096-node tick is printed, not asserted: `SimDisk` charges every
//!    journaled byte to the tick as CPU (memcpy + CRC) where real
//!    hardware overlaps DMA with compute, and CI containers time too
//!    noisily for a hard gate.  The committed number is the artifact —
//!    regressions in the journaling hot path show up as the ratio
//!    drifting, not as a red build.
//! 2. Neutrality: the plane never feeds back into monitored state — the
//!    state-hash chain with durability ON equals the chain with it OFF.
//!    This one IS asserted: a journal that perturbs what it journals is a
//!    bug regardless of what the clock says.
//! 3. Recovery scales with the *unreplayed* tail: raw append throughput
//!    and recovery time at two log lengths are printed so regressions in
//!    either direction are visible in the committed artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_durability::{DurabilityConfig, DurabilityPlane, SimDisk, SyncPolicy};
use hpcmon_sim::TopologySpec;
use std::sync::Arc;
use std::time::Instant;

/// 4,096-node torus — the overhead claim is against a production-scale
/// tick; at `SimConfig::small` the tick is so cheap that journaling tens
/// of KiB could never look like 5%.
fn big_config() -> SimConfig {
    SimConfig {
        topology: TopologySpec::Torus3D { dims: [16, 16, 8], nodes_per_router: 2 },
        ..SimConfig::small()
    }
}

fn cfg(sync: SyncPolicy) -> DurabilityConfig {
    DurabilityConfig { sync, checkpoint_every: 32, scrub_every: 16 }
}

fn build(config: SimConfig, durability: Option<SyncPolicy>) -> MonitoringSystem {
    let mut b = MonitoringSystem::builder(config).self_telemetry(false);
    if let Some(sync) = durability {
        b = b.durability(Arc::new(SimDisk::new()), cfg(sync));
    }
    b.build()
}

fn ticks_per_sec(durability: Option<SyncPolicy>, ticks: u64) -> f64 {
    let mut mon = build(big_config(), durability);
    mon.run_ticks(2); // warm-up: registries populated, stores primed
    let start = Instant::now();
    mon.run_ticks(ticks);
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn print_capability() {
    println!("\n=== Ablation: durability plane (WAL + checkpoints) ===");

    // Neutrality first: the hash chain must not know the plane exists.
    let mut plain = build(SimConfig::small(), None);
    let mut durable = build(SimConfig::small(), Some(SyncPolicy::EveryTick));
    plain.set_state_hashing(true);
    durable.set_state_hashing(true);
    for _ in 0..8 {
        plain.tick();
        durable.tick();
        assert_eq!(
            plain.last_state_hash(),
            durable.last_state_hash(),
            "durability plane must be hash-neutral"
        );
    }
    let counts = durable.durability_counts().unwrap();
    assert_eq!(counts.records_appended, 8, "every tick journaled");
    println!("  neutrality: durability on == off, identical state-hash chain (8 ticks)");
    println!(
        "  record size: {:.1} KiB/tick ({} samples + inputs + hash)",
        counts.bytes_appended as f64 / 8.0 / 1024.0,
        durable.store().stats().series,
    );

    // Best-of-N throughput at production scale (4,096 nodes); best-of
    // converges on the undisturbed cost.
    const TICKS: u64 = 8;
    const ROUNDS: usize = 3;
    let mut t_plain = f64::MIN;
    let mut t_fsync = f64::MIN;
    let mut t_group = f64::MIN;
    for _ in 0..ROUNDS {
        t_plain = t_plain.max(ticks_per_sec(None, TICKS));
        t_fsync = t_fsync.max(ticks_per_sec(Some(SyncPolicy::EveryTick), TICKS));
        t_group = t_group.max(ticks_per_sec(Some(SyncPolicy::GroupCommit(8)), TICKS));
    }
    println!("  tick overhead at 4,096 nodes:");
    println!("  plain pipeline:      {t_plain:8.2} ticks/s");
    println!(
        "  fsync-per-tick:      {t_fsync:8.2} ticks/s ({:+.2}% vs plain, target <= 5%)",
        (t_plain / t_fsync - 1.0) * 100.0
    );
    println!(
        "  group-commit(8):     {t_group:8.2} ticks/s ({:+.2}% vs plain)",
        (t_plain / t_group - 1.0) * 100.0
    );

    // Raw WAL append throughput, plane-level: no pipeline, just records.
    let payload = vec![0xA5u8; 1024];
    let disk = Arc::new(SimDisk::new());
    let mut plane = DurabilityPlane::new(disk, cfg(SyncPolicy::GroupCommit(64)));
    const RECORDS: u64 = 20_000;
    let start = Instant::now();
    for tick in 0..RECORDS {
        plane.append_tick(tick, &payload);
        plane.end_tick(tick);
    }
    let secs = start.elapsed().as_secs_f64();
    let mb = plane.counts().bytes_appended as f64 / (1024.0 * 1024.0);
    println!(
        "  raw append: {RECORDS} x 1 KiB records in {:.1} ms ({:.0} rec/s, {:.1} MiB/s)",
        secs * 1e3,
        RECORDS as f64 / secs,
        mb / secs
    );

    // Recovery time vs log length: with checkpoints disabled the whole
    // log replays, so this is the worst case for each length.
    for ticks in [50u64, 200] {
        let no_ckpt =
            DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 0, scrub_every: 0 };
        let disk = Arc::new(SimDisk::new());
        let mut mon = MonitoringSystem::builder(SimConfig::small())
            .self_telemetry(false)
            .durability(disk.clone(), no_ckpt)
            .build();
        mon.run_ticks(ticks);
        drop(mon);
        disk.crash();
        let mut recovered =
            MonitoringSystem::builder(SimConfig::small()).self_telemetry(false).build();
        let start = Instant::now();
        let outcome = recovered.recover_from_medium(disk, no_ckpt);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(outcome.resumed_tick, ticks, "full replay, zero loss");
        println!(
            "  recovery, {ticks:3}-tick log, no checkpoint: {ms:7.1} ms ({:.2} ms/tick replayed)",
            ms / ticks as f64
        );
    }
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_wal");
    group.sample_size(10);
    for (label, durability) in [
        ("durability_off", None),
        ("fsync_every_tick", Some(SyncPolicy::EveryTick)),
        ("group_commit_8", Some(SyncPolicy::GroupCommit(8))),
    ] {
        group.bench_function(format!("tick_4096node_{label}"), |b| {
            b.iter_with_setup(
                || {
                    let mut mon = build(big_config(), durability);
                    mon.run_ticks(1);
                    mon
                },
                |mut mon| mon.run_ticks(3),
            )
        });
    }
    group.bench_function("wal_append_1kib_record", |b| {
        b.iter_with_setup(
            || {
                (
                    DurabilityPlane::new(
                        Arc::new(SimDisk::new()),
                        cfg(SyncPolicy::GroupCommit(64)),
                    ),
                    vec![0xA5u8; 1024],
                )
            },
            |(mut plane, payload)| {
                for tick in 0..256u64 {
                    plane.append_tick(tick, &payload);
                    plane.end_tick(tick);
                }
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
