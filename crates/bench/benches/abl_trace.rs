//! Ablation: cost of pipeline tracing.
//!
//! The tracing tentpole claims a head-sampled tracer is nearly free on
//! the tick loop: at the default 1-in-64 sampling an unsampled frame
//! pays one id allocation plus a hash, a sampled frame one ring push per
//! stage, and drop provenance only fires when something is actually
//! lost.  This bench measures ticks/s with tracing off, at 1/64, and
//! always-on, and prints the relative overhead against a 5% budget.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::trace::Sampler;
use hpcmon::{MonitoringSystem, SimConfig};
use std::time::Instant;

fn ticks_per_sec(sampler: Sampler, ticks: u64) -> f64 {
    let mut mon = MonitoringSystem::builder(SimConfig::small()).tracing(sampler).build();
    mon.run_ticks(5); // warm-up: registries populated, stores primed
    let start = Instant::now();
    mon.run_ticks(ticks);
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn print_capability() {
    println!("\n=== Ablation: pipeline tracing overhead ===");
    // Alternate fresh runs and keep the best of each configuration:
    // best-of-N converges on the undisturbed cost.
    const TICKS: u64 = 60;
    const ROUNDS: usize = 5;
    let mut off = f64::MIN;
    let mut sampled = f64::MIN;
    let mut always = f64::MIN;
    for _ in 0..ROUNDS {
        off = off.max(ticks_per_sec(Sampler::off(), TICKS));
        sampled = sampled.max(ticks_per_sec(Sampler::one_in(64), TICKS));
        always = always.max(ticks_per_sec(Sampler::always(), TICKS));
    }
    let sampled_pct = (off / sampled - 1.0) * 100.0;
    let always_pct = (off / always - 1.0) * 100.0;
    println!("  tracing off:      {off:8.1} ticks/s");
    println!("  tracing 1-in-64:  {sampled:8.1} ticks/s  ({sampled_pct:+.2}% vs off, budget 5%)");
    println!("  tracing always:   {always:8.1} ticks/s  ({always_pct:+.2}% vs off)");

    // What the traced run collected about itself.
    let mut mon = MonitoringSystem::builder(SimConfig::small()).tracing(Sampler::one_in(4)).build();
    mon.run_ticks(64);
    let stats = mon.tracer().stats();
    println!(
        "  1-in-4 over 64 ticks: {} sampled traces, {} spans, {} completed ({} with drops)",
        stats.traces_sampled,
        stats.spans_recorded,
        mon.traces().completed_total(),
        mon.traces().completed_with_drops(),
    );
    if let Some(t) = mon.traces().latest() {
        print!("{}", hpcmon::viz::render_span_tree(t));
    }
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_trace");
    group.sample_size(10);
    for (label, sampler) in [
        ("tick_tracing_off", Sampler::off()),
        ("tick_tracing_1in64", Sampler::one_in(64)),
        ("tick_tracing_always", Sampler::always()),
    ] {
        group.bench_function(label, |b| {
            b.iter_with_setup(
                || {
                    let mut mon =
                        MonitoringSystem::builder(SimConfig::small()).tracing(sampler).build();
                    mon.run_ticks(2);
                    mon
                },
                |mut mon| mon.run_ticks(10),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
