//! Ablation: minimal vs adaptive routing under hot-spot traffic.
//!
//! The SNL congestion work motivates caring about *where* congestion
//! forms; this ablation shows the routing policy's effect on achieved
//! throughput when many flows share a destination, and benchmarks the
//! route-computation kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon_sim::network::NetworkState;
use hpcmon_sim::routing::{minimal_route, route_with_policy, RoutePolicy};
use hpcmon_sim::topology::{Topology, TopologySpec};

/// Offer corridor flows (one source router → one distant destination)
/// under a policy; return total achieved bytes.  All minimal paths share
/// the source's first hop, so this is where load-informed detours pay:
/// on a ring, the detour direction reaches an antipodal destination over
/// a fully disjoint path.
fn corridor_throughput(topo: &Topology, dst: u32, policy: RoutePolicy) -> f64 {
    let mut net = NetworkState::new(topo, 1.0e9);
    net.begin_tick();
    let dt = 1_000u64;
    let src_node = topo.nodes_of_router(0).start;
    for _ in 0..16 {
        let loads = net.load_fractions(dt);
        let path = route_with_policy(topo, 0, dst, policy, &loads, 0.5);
        net.offer_flow(src_node, path, 2.0e8);
    }
    net.settle(dt).iter().sum()
}

/// Hot-spot flows (many sources → one destination): the bottleneck is at
/// the destination, where no routing policy can help — the negative
/// control that keeps the ablation honest.
fn hotspot_throughput(topo: &Topology, policy: RoutePolicy) -> f64 {
    let mut net = NetworkState::new(topo, 1.0e9);
    net.begin_tick();
    let dt = 1_000u64;
    for src_router in 1..topo.num_routers() {
        let loads = net.load_fractions(dt);
        let path = route_with_policy(topo, src_router, 0, policy, &loads, 0.5);
        let src_node = topo.nodes_of_router(src_router).start;
        net.offer_flow(src_node, path, 2.0e8);
    }
    net.settle(dt).iter().sum()
}

fn print_capability() {
    println!("\n=== Ablation: minimal vs adaptive routing ===");
    // Corridor on a ring: disjoint detour path exists → adaptive wins.
    let ring = Topology::build(TopologySpec::Torus3D { dims: [8, 1, 1], nodes_per_router: 2 });
    let minimal = corridor_throughput(&ring, 4, RoutePolicy::Minimal);
    let adaptive = corridor_throughput(&ring, 4, RoutePolicy::Adaptive);
    println!(
        "  corridor (ring, antipodal dst): minimal {:.3e} B, adaptive {:.3e} B ({:+.1}%)",
        minimal,
        adaptive,
        (adaptive / minimal - 1.0) * 100.0
    );
    // Destination hot spot: no policy can add capacity at the sink.
    let torus = Topology::build(TopologySpec::Torus3D { dims: [8, 8, 4], nodes_per_router: 2 });
    let minimal = hotspot_throughput(&torus, RoutePolicy::Minimal);
    let adaptive = hotspot_throughput(&torus, RoutePolicy::Adaptive);
    println!(
        "  destination hotspot (torus): minimal {:.3e} B, adaptive {:.3e} B ({:+.1}%) — sink-bound, as expected",
        minimal,
        adaptive,
        (adaptive / minimal - 1.0) * 100.0
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_routing");
    group.sample_size(30);
    let torus = Topology::build(TopologySpec::Torus3D { dims: [16, 16, 8], nodes_per_router: 2 });
    let dragonfly = Topology::build(TopologySpec::Dragonfly {
        groups: 16,
        routers_per_group: 16,
        nodes_per_router: 4,
    });

    group.bench_function("torus_minimal_route", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % torus.num_routers();
            std::hint::black_box(minimal_route(&torus, i, (i * 31) % torus.num_routers()).len())
        })
    });
    group.bench_function("dragonfly_minimal_route", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % dragonfly.num_routers();
            std::hint::black_box(
                minimal_route(&dragonfly, i, (i * 31) % dragonfly.num_routers()).len(),
            )
        })
    });
    group.bench_function("torus_adaptive_route_loaded", |b| {
        let loads = vec![0.9; torus.num_links() as usize];
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % torus.num_routers();
            std::hint::black_box(
                route_with_policy(
                    &torus,
                    i,
                    (i * 31) % torus.num_routers(),
                    RoutePolicy::Adaptive,
                    &loads,
                    0.5,
                )
                .len(),
            )
        })
    });
    group.bench_function("hotspot_settle_torus", |b| {
        b.iter(|| std::hint::black_box(hotspot_throughput(&torus, RoutePolicy::Minimal)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
