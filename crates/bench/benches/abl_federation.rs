//! Ablation: the federated scatter-gather query plane.
//!
//! Builds federations of 4, 10, and 25 member sites and measures the cost
//! of a global query answered by scattering to every member gateway and
//! merging centrally, against the baseline of the same query against one
//! member gateway directly.  Also reports the rollup-plane alternative: a
//! global dashboard read off the federation's O(sites) rollup store, which
//! does not touch member gateways at all.  The claim under test: federated
//! answers cost O(sites) over the single-site baseline, and partial
//! results under partition cost no more than complete ones.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_federation::{Federation, FederationConfig, SiteSpec};
use hpcmon_gateway::QueryRequest;
use hpcmon_metrics::Ts;
use hpcmon_response::Consumer;
use hpcmon_sim::{SimConfig, TopologySpec};
use hpcmon_store::{AggFn, TimeRange};
use std::time::Instant;

const WARM_TICKS: u64 = 30;

fn federation(num_sites: usize, partition_three: bool) -> Federation {
    let sites: Vec<SiteSpec> = (0..num_sites)
        .map(|i| {
            let mut cfg = SimConfig::small();
            cfg.topology = TopologySpec::Torus3D { dims: [2, 2, 2], nodes_per_router: 2 };
            cfg.seed = 500 + i as u64;
            SiteSpec::new(format!("site{i:02}"), cfg)
        })
        .collect();
    let plan = if partition_three {
        ChaosPlan::from_faults(
            (0..3)
                .map(|i| ScheduledFault {
                    at_tick: 5,
                    fault: ChaosFault::WanPartition {
                        site: format!("site{i:02}"),
                        ticks: WARM_TICKS * 2,
                    },
                })
                .collect(),
        )
    } else {
        ChaosPlan::new()
    };
    let mut fed = Federation::new(FederationConfig::new(sites).link_plan(13, plan));
    fed.run_ticks(WARM_TICKS);
    fed
}

fn top_cpu(fed: &Federation) -> QueryRequest {
    QueryRequest::TopComponentsAt {
        metric: fed.site_system(0).metrics().node_cpu,
        at: Ts(WARM_TICKS * fed.tick_ms()),
        tolerance_ms: fed.tick_ms(),
        limit: 10,
    }
}

fn power_sum(fed: &Federation) -> QueryRequest {
    QueryRequest::AggregateAcross {
        metric: fed.site_system(0).metrics().system_power,
        range: TimeRange::all(),
        agg: AggFn::Sum,
    }
}

fn print_capability() {
    println!("\n=== Ablation: federated scatter-gather (vs single-site direct) ===");
    let admin = Consumer::admin("bench");
    for &n in &[4usize, 10, 25] {
        let mut fed = federation(n, false);
        let request = top_cpu(&fed);
        let direct = fed.site_system(0).gateway().unwrap().clone();
        const REPS: usize = 500;

        let t0 = Instant::now();
        for _ in 0..REPS {
            direct.plan_query(&admin, &request).unwrap();
        }
        let direct_qps = REPS as f64 / t0.elapsed().as_secs_f64();

        let mut lat_ns: Vec<u64> = Vec::with_capacity(REPS);
        let t0 = Instant::now();
        for _ in 0..REPS {
            let q0 = Instant::now();
            let result = fed.federated_query(&admin, &request, 1_000);
            lat_ns.push(q0.elapsed().as_nanos() as u64);
            assert!(result.complete());
        }
        let scatter_qps = REPS as f64 / t0.elapsed().as_secs_f64();
        lat_ns.sort_unstable();
        let p99_us = lat_ns[(REPS - 1) * 99 / 100] as f64 / 1e3;

        // Rollup-plane read: the O(sites) dashboard path.
        let engine = fed.rollup_query();
        let t0 = Instant::now();
        for _ in 0..REPS {
            let _ = engine.aggregate_across_components(
                fed.metric_ids().power_w,
                TimeRange::all(),
                AggFn::Sum,
            );
        }
        let rollup_qps = REPS as f64 / t0.elapsed().as_secs_f64();

        println!(
            "  {n:>2} sites: direct={direct_qps:>9.0} qps  scatter={scatter_qps:>8.0} qps \
             (x{:.1} cost, p99={p99_us:.0}us)  rollup-read={rollup_qps:>9.0} qps",
            direct_qps / scatter_qps,
        );
    }
    // Partial results under partition: 10 sites, 3 partitioned.
    let mut fed = federation(10, true);
    let request = top_cpu(&fed);
    let result = fed.federated_query(&admin, &request, 1_000);
    println!(
        "  partition soak: {} of 10 answered, unreachable={:?}",
        result.outcomes.iter().filter(|o| o.answered()).count(),
        result.unreachable_sites(),
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let admin = Consumer::admin("bench");
    let mut group = c.benchmark_group("abl_federation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(1));

    // Baseline first: the same global-shaped query against one member
    // gateway directly (overhead_vs_group_baseline keys off this entry).
    let fed = federation(10, false);
    let request = top_cpu(&fed);
    let direct = fed.site_system(0).gateway().unwrap().clone();
    group.bench_function("direct_single_site", |b| {
        b.iter(|| direct.plan_query(&admin, &request).unwrap())
    });
    drop(fed);

    for &n in &[4usize, 10, 25] {
        let mut fed = federation(n, false);
        let request = top_cpu(&fed);
        group.bench_function(format!("scatter_topk_{n:02}_sites"), |b| {
            b.iter(|| fed.federated_query(&admin, &request, 1_000))
        });
        let request = power_sum(&fed);
        group.bench_function(format!("scatter_aggregate_{n:02}_sites"), |b| {
            b.iter(|| fed.federated_query(&admin, &request, 1_000))
        });
    }

    // The partial-result path: 10 sites with 3 partitioned must not cost
    // more than the complete scatter.
    let mut fed = federation(10, true);
    let request = top_cpu(&fed);
    group.bench_function("scatter_topk_10_sites_3_partitioned", |b| {
        b.iter(|| fed.federated_query(&admin, &request, 1_000))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
