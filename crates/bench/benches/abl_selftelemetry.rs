//! Ablation: cost of the self-telemetry layer.
//!
//! The tentpole claim is that watching the monitor is nearly free: stage
//! timers, per-collector counters, and the `SelfCollector` republishing
//! `hpcmon.self.*` each tick must cost under ~5% of tick throughput versus
//! the no-op baseline (`self_telemetry(false)`: inert instruments, no self
//! feed).  This bench measures both configurations on the same machine
//! config and prints the relative overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::{MonitoringSystem, SimConfig};
use std::time::Instant;

fn ticks_per_sec(self_telemetry: bool, ticks: u64) -> f64 {
    let mut mon =
        MonitoringSystem::builder(SimConfig::small()).self_telemetry(self_telemetry).build();
    mon.run_ticks(5); // warm-up: registries populated, stores primed
    let start = Instant::now();
    mon.run_ticks(ticks);
    ticks as f64 / start.elapsed().as_secs_f64()
}

fn print_capability() {
    println!("\n=== Ablation: self-telemetry overhead ===");
    // Alternate fresh runs of each configuration and keep the best of
    // each: a single timing is at the mercy of whatever else the machine
    // is doing, while best-of-N converges on the undisturbed cost.
    const TICKS: u64 = 60;
    const ROUNDS: usize = 5;
    let mut off = f64::MIN;
    let mut on = f64::MIN;
    for _ in 0..ROUNDS {
        off = off.max(ticks_per_sec(false, TICKS));
        on = on.max(ticks_per_sec(true, TICKS));
    }
    let overhead_pct = (off / on - 1.0) * 100.0;
    println!("  instrumentation off: {off:8.1} ticks/s");
    println!("  instrumentation on:  {on:8.1} ticks/s");
    println!("  overhead: {overhead_pct:.2}% (budget: 5%)");

    // What the instrumented run learned about itself, as the operator
    // would see it.
    let mut mon = MonitoringSystem::builder(SimConfig::small()).build();
    mon.run_ticks(30);
    let report = mon.telemetry_report();
    for h in report.histograms.iter().filter(|h| h.name.starts_with("stage.")) {
        println!(
            "  {:<24} p50={:>8.3}ms p95={:>8.3}ms",
            h.name,
            h.p50_ns as f64 / 1e6,
            h.p95_ns as f64 / 1e6
        );
    }
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_selftelemetry");
    group.sample_size(10);
    group.bench_function("tick_with_telemetry", |b| {
        b.iter_with_setup(
            || {
                let mut mon =
                    MonitoringSystem::builder(SimConfig::small()).self_telemetry(true).build();
                mon.run_ticks(2);
                mon
            },
            |mut mon| mon.run_ticks(10),
        )
    });
    group.bench_function("tick_without_telemetry", |b| {
        b.iter_with_setup(
            || {
                let mut mon =
                    MonitoringSystem::builder(SimConfig::small()).self_telemetry(false).build();
                mon.run_ticks(2);
                mon
            },
            |mut mon| mon.run_ticks(10),
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
