//! Figure 4 (NCSA): aggregate filesystem I/O spike → per-node drill-down
//! → job attribution.
//!
//! Regenerates the scenario and prints the drill-down table with the
//! attributed job, then benchmarks the two queries behind the view: the
//! system-wide aggregate and the top-k components at an instant.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::scenarios::fig4_drilldown;
use hpcmon_bench::{populated_store, print_series_row, BENCH_SEED};
use hpcmon_metrics::{MetricId, Ts};
use hpcmon_store::{AggFn, QueryEngine, TimeRange};

fn regenerate() {
    let r = fig4_drilldown(BENCH_SEED);
    println!("\n=== Figure 4: aggregate I/O spike drill-down ===");
    print_series_row("fs aggregate read B/s", &r.aggregate_read);
    println!("  spike at {}", r.peak.display_hms());
    for (i, (comp, v)) in r.top_nodes.iter().take(5).enumerate() {
        println!("  {:>2}. {:<10} {v:.3e} B/s", i + 1, comp.path());
    }
    match &r.attributed {
        Some(job) => println!(
            "  attributed: job {} ({}, user {}) — ground truth job {} => {}\n",
            job.id.0,
            job.name,
            job.user,
            r.culprit.id.0,
            if job.id == r.culprit.id { "CORRECT" } else { "WRONG" }
        ),
        None => println!("  attribution failed\n"),
    }
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig4_drilldown");
    group.sample_size(20);
    let store = populated_store(512, 240);
    let q = QueryEngine::new(&store);
    group.bench_function("aggregate_512_series_240pt", |b| {
        b.iter(|| {
            std::hint::black_box(
                q.aggregate_across_components(MetricId(0), TimeRange::all(), AggFn::Sum).len(),
            )
        })
    });
    group.bench_function("topk_at_instant_512_series", |b| {
        b.iter(|| {
            std::hint::black_box(
                q.top_components_at(MetricId(0), Ts::from_mins(120), 60_000, 10).len(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
