//! Table I "Analysis and Visualization": streaming detector throughput,
//! correlator rule matching rate, and trend fitting.
//!
//! Requirements exercised: "analysis capabilities ... as streaming
//! analysis", "concurrent conditions on disparate components should be
//! able to be identified", "high dimensional and long term data".

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hpcmon_analysis::{
    Correlator, CusumDetector, Detector, MadDetector, TrendTracker, ZScoreDetector,
};
use hpcmon_metrics::{CompId, LogRecord, Severity, Ts};

fn series(n: u64) -> Vec<(Ts, f64)> {
    (0..n).map(|i| (Ts::from_mins(i), 100.0 + ((i * 37) % 10) as f64 * 0.1)).collect()
}

fn log_stream(n: u64) -> Vec<LogRecord> {
    (0..n)
        .map(|i| {
            let template = match i % 50 {
                0 => 3,     // link failed
                1 => 11,    // job failed (pairs with 3)
                2..=7 => 5, // crc retries (threshold rule)
                _ => 14,    // routine
            };
            LogRecord::new(
                Ts::from_secs(i * 10),
                CompId::node((i % 64) as u32),
                Severity::Info,
                "console",
                "event text",
            )
            .with_template(template)
        })
        .collect()
}

fn print_capability() {
    println!("\n=== Table I (Analysis): streaming detection capability ===");
    let mut correlator = Correlator::new(Correlator::production_rules());
    let stream = log_stream(10_000);
    let findings: usize = stream.iter().map(|r| correlator.observe(r).len()).sum();
    println!("  10k-record log stream through 8 production rules: {findings} findings\n");
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("tab1_analysis");
    group.sample_size(20);
    let data = series(10_000);

    group.throughput(Throughput::Elements(10_000));
    group.bench_function("zscore_10k_points", |b| {
        b.iter(|| {
            let mut det = ZScoreDetector::new(60, 4.0);
            let mut hits = 0usize;
            for &(t, v) in &data {
                hits += det.observe(t, v).is_some() as usize;
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("mad_10k_points", |b| {
        b.iter(|| {
            let mut det = MadDetector::new(60, 6.0);
            let mut hits = 0usize;
            for &(t, v) in &data {
                hits += det.observe(t, v).is_some() as usize;
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("cusum_10k_points", |b| {
        b.iter(|| {
            let mut det = CusumDetector::new(60, 0.5, 8.0);
            let mut hits = 0usize;
            for &(t, v) in &data {
                hits += det.observe(t, v).is_some() as usize;
            }
            std::hint::black_box(hits)
        })
    });
    group.bench_function("trend_fit_10k_points", |b| {
        b.iter(|| {
            let mut tracker = TrendTracker::new();
            for &(t, v) in &data {
                tracker.push(t, v);
            }
            std::hint::black_box(tracker.fit().map(|f| f.slope_per_sec))
        })
    });

    let stream = log_stream(10_000);
    group.bench_function("correlator_10k_records_8_rules", |b| {
        b.iter(|| {
            let mut correlator = Correlator::new(Correlator::production_rules());
            let findings: usize = stream.iter().map(|r| correlator.observe(r).len()).sum();
            std::hint::black_box(findings)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
