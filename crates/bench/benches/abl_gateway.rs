//! Ablation: the query gateway under synthetic multi-principal load.
//!
//! Drives a fixed client mix (admin dashboards plus per-user portals)
//! against a populated system and reports qps, p99 latency, cache hit
//! rate, and shed count for a cold cache (capacity 0 — every query
//! evaluates) versus a warm cache (epoch-keyed LRU).  The claim under
//! test: result caching turns repeat dashboard traffic into O(1) lookups
//! without ever serving data across a store change.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_gateway::{GatewayConfig, QueryRequest};
use hpcmon_metrics::{CompId, CompKind, SeriesKey, Ts};
use hpcmon_response::Consumer;
use hpcmon_sim::{AppProfile, JobSpec};
use hpcmon_store::{AggFn, TimeRange};
use std::time::{Duration, Instant};

const CLIENTS: usize = 6;
const QUERIES_PER_CLIENT: usize = 400;

fn populated_system(cache_capacity: usize, rate_limit: bool) -> MonitoringSystem {
    let mut mon = MonitoringSystem::builder(SimConfig::small())
        .gateway(GatewayConfig {
            cache_capacity,
            default_deadline_ms: 10_000,
            rate_limit_burst: if rate_limit { 50.0 } else { 0.0 },
            rate_limit_per_sec: if rate_limit { 10.0 } else { 0.0 },
            ..GatewayConfig::default()
        })
        .build();
    mon.submit_job(JobSpec::new(AppProfile::compute_heavy("sim"), "alice", 8, 3_600_000, Ts::ZERO));
    mon.submit_job(JobSpec::new(AppProfile::compute_heavy("ml"), "bob", 8, 3_600_000, Ts::ZERO));
    mon.run_ticks(30);
    mon
}

/// The per-client request mix: a handful of dashboard-shaped queries
/// cycled per iteration (repeat traffic is what caches exist for).
fn request_mix(mon: &MonitoringSystem) -> Vec<QueryRequest> {
    let m = mon.metrics();
    let all = TimeRange::all();
    vec![
        QueryRequest::Series { key: SeriesKey::new(m.system_power, CompId::SYSTEM), range: all },
        QueryRequest::AggregateAcross { metric: m.node_power, range: all, agg: AggFn::Sum },
        QueryRequest::TopComponentsAt {
            metric: m.node_cpu,
            at: Ts::from_mins(20),
            tolerance_ms: 30_000,
            limit: 8,
        },
        QueryRequest::Downsample {
            key: SeriesKey::new(m.system_power, CompId::SYSTEM),
            range: all,
            bucket_ms: 300_000,
            agg: AggFn::Mean,
        },
        QueryRequest::ComponentsOfKind {
            metric: m.cabinet_power,
            kind: CompKind::Cabinet,
            range: all,
        },
    ]
}

struct LoadReport {
    qps: f64,
    p99_ms: f64,
    hit_rate: f64,
    shed: u64,
}

fn drive_load(mon: &MonitoringSystem) -> LoadReport {
    let gw = mon.gateway().unwrap().clone();
    let mix = request_mix(mon);
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let gw = gw.clone();
            let mix = mix.clone();
            std::thread::spawn(move || {
                // Half the clients are admin dashboards, half user portals.
                let me = if i % 2 == 0 {
                    Consumer::admin(&format!("dashboard-{i}"))
                } else {
                    Consumer::user(&format!("portal-{i}"), if i % 4 == 1 { "alice" } else { "bob" })
                };
                let mut latencies: Vec<Duration> = Vec::with_capacity(QUERIES_PER_CLIENT);
                let mut shed = 0u64;
                for k in 0..QUERIES_PER_CLIENT {
                    let req = mix[k % mix.len()].clone();
                    let t0 = Instant::now();
                    match gw.query(&me, req) {
                        Ok(_) => latencies.push(t0.elapsed()),
                        Err(_) => shed += 1,
                    }
                }
                (latencies, shed)
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut shed = 0u64;
    for h in handles {
        let (l, s) = h.join().unwrap();
        latencies.extend(l);
        shed += s;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort();
    let p99 =
        latencies.get((latencies.len().saturating_sub(1)) * 99 / 100).copied().unwrap_or_default();
    let stats = gw.cache_stats();
    let lookups = (stats.hits + stats.misses).max(1);
    LoadReport {
        qps: latencies.len() as f64 / elapsed,
        p99_ms: p99.as_secs_f64() * 1e3,
        hit_rate: stats.hits as f64 / lookups as f64,
        shed,
    }
}

fn print_capability() {
    println!("\n=== Ablation: query gateway (multi-principal load) ===");
    println!("  {CLIENTS} clients x {QUERIES_PER_CLIENT} queries, mixed admin/user principals");
    for (label, cache, limit) in
        [("cold cache", 0, false), ("warm cache", 512, false), ("rate-limited", 512, true)]
    {
        let mon = populated_system(cache, limit);
        let r = drive_load(&mon);
        println!(
            "  {label:<13} qps={:>9.0}  p99={:>7.3}ms  hit-rate={:>5.1}%  shed={}",
            r.qps,
            r.p99_ms,
            r.hit_rate * 100.0,
            r.shed
        );
    }
    // Self-telemetry view of the same activity.
    let mon = populated_system(512, false);
    let _ = drive_load(&mon);
    let report = mon.telemetry_report();
    for c in report.counters.iter().filter(|c| c.name.starts_with("gateway.")) {
        println!("  {:<32} {}", c.name, c.value);
    }
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_gateway");
    group.sample_size(10);
    for (label, cache) in [("cold_cache", 0usize), ("warm_cache", 512)] {
        group.bench_function(format!("load_{label}"), |b| {
            b.iter_with_setup(|| populated_system(cache, false), |mon| drive_load(&mon))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
