//! Ablation: the SLO/alerting plane (DESIGN.md §13).
//!
//! PR 8's health plane evaluates every SLO ring each tick, so it must be
//! close to free when nothing is paging.  Two claims:
//!
//! 1. Cost: with health ON but nothing failing, tick throughput stays
//!    within ~2% of the plain pipeline.  The ratio is printed, not
//!    asserted — CI containers time too noisily for a hard 2% gate; the
//!    number is the artifact (`BENCH_abl_health.json`).
//! 2. Neutrality: health with no incidents changes *nothing* — reports,
//!    signals, and every stored bit match the plain run exactly.  This
//!    one IS asserted: an alerting plane that perturbs the data plane it
//!    judges is a bug regardless of what the clock says.
//!
//! A third section drives a broker stall through the plane to show what
//! the overhead buys: a deterministic Pending→Firing→Resolved timeline.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::health::{HealthConfig, Transition};
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_chaos::{ChaosFault, ChaosPlan, ScheduledFault};
use hpcmon_metrics::Ts;
use hpcmon_sim::TopologySpec;
use std::time::Instant;

fn big_config() -> SimConfig {
    SimConfig {
        topology: TopologySpec::Torus3D { dims: [16, 16, 8], nodes_per_router: 2 },
        ..SimConfig::small()
    }
}

fn build(health: bool) -> MonitoringSystem {
    let mut b = MonitoringSystem::builder(big_config()).self_telemetry(false);
    if health {
        b = b.health(HealthConfig::standard());
    }
    b.build()
}

fn stall_plan() -> ChaosPlan {
    ChaosPlan::from_faults(vec![ScheduledFault {
        at_tick: 4,
        fault: ChaosFault::BrokerTopicStall { topic: "metrics/frame".into(), ticks: 2 },
    }])
}

fn ticks_per_sec(health: bool, ticks: u64) -> f64 {
    let mut mon = build(health);
    mon.run_ticks(2); // warm-up: registries populated, stores primed
    let start = Instant::now();
    mon.run_ticks(ticks);
    ticks as f64 / start.elapsed().as_secs_f64()
}

/// Bit-exact digest of everything a run produced.
fn digest(mon: &MonitoringSystem) -> Vec<(String, Vec<(u64, u64)>)> {
    mon.store()
        .all_series()
        .into_iter()
        .map(|k| {
            let pts = mon
                .store()
                .query(k, Ts::ZERO, Ts(u64::MAX))
                .into_iter()
                .map(|(t, v)| (t.0, v.to_bits()))
                .collect();
            (format!("{k:?}"), pts)
        })
        .collect()
}

fn print_capability() {
    println!("\n=== Ablation: SLO/alerting plane (4,096 nodes) ===");

    // Neutrality first: health with no incidents must be invisible.
    let mut plain = build(false);
    let mut health = build(true);
    let reports_plain: Vec<_> = (0..4).map(|_| plain.tick()).collect();
    let reports_health: Vec<_> = (0..4).map(|_| health.tick()).collect();
    assert_eq!(reports_plain, reports_health, "healthy TickReports must equal plain");
    assert_eq!(plain.signals(), health.signals(), "signal streams must be identical");
    assert_eq!(digest(&plain), digest(&health), "store contents must be bit-identical");
    assert!(health.alert_events().is_empty(), "nothing failed, nothing pages");
    println!("  neutrality: health on == off, bit-for-bit (reports, signals, store)");

    // Best-of-N throughput, same rationale as abl_chaos: best-of
    // converges on the undisturbed cost of each configuration.
    const TICKS: u64 = 6;
    const ROUNDS: usize = 3;
    let mut t_plain = f64::MIN;
    let mut t_health = f64::MIN;
    for _ in 0..ROUNDS {
        t_plain = t_plain.max(ticks_per_sec(false, TICKS));
        t_health = t_health.max(ticks_per_sec(true, TICKS));
    }
    let overhead_pct = (t_plain / t_health - 1.0) * 100.0;
    println!("  plain pipeline:     {t_plain:8.2} ticks/s");
    println!("  health, no incident:{t_health:8.2} ticks/s");
    println!("  health overhead:     {overhead_pct:+.2}% (target: <= 2%)");

    // What the overhead buys: a stalled broker pages with exact stamps.
    let mut mon = MonitoringSystem::builder(big_config())
        .self_telemetry(false)
        .chaos(42, stall_plan())
        .health(HealthConfig::standard())
        .build();
    mon.run_ticks(20);
    let delivery: Vec<_> = mon
        .alert_events()
        .iter()
        .filter(|e| e.key == "transport/delivery")
        .map(|e| (e.tick, e.transition))
        .collect();
    assert_eq!(
        delivery,
        vec![(4, Transition::Pending), (5, Transition::Firing), (14, Transition::Resolved)],
        "the stall pages deterministically"
    );
    assert!(mon.health_report().unwrap().active.is_empty(), "resolved by tick 20");
    println!(
        "  under a 2-tick broker stall: {} transitions, Pending@4 Firing@5 Resolved@14",
        mon.alert_events().len()
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_health");
    group.sample_size(10);
    for (label, health) in [("health_off", false), ("health_on_no_incident", true)] {
        group.bench_function(format!("tick_4096_nodes_{label}"), |b| {
            b.iter_with_setup(
                || {
                    let mut mon = build(health);
                    mon.run_ticks(1);
                    mon
                },
                |mut mon| mon.run_ticks(3),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
