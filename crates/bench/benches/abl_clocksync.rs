//! Ablation: event association with synchronized vs drifting clocks.
//!
//! Quantifies the paper's §III-B warning — "local clock drift can result
//! in erroneous associations" — as pairwise precision/recall of incident
//! clustering, and benchmarks the association kernel itself.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::scenarios::clock_sync_ablation;
use hpcmon_analysis::association::{associate, AssocEvent};
use hpcmon_bench::BENCH_SEED;
use hpcmon_metrics::{CompId, Ts};

fn print_capability() {
    println!("\n=== Ablation: clock synchronization and association ===");
    let r = clock_sync_ablation(40, BENCH_SEED);
    println!(
        "  synced:    precision {:.3} recall {:.3} f1 {:.3}",
        r.synced.precision, r.synced.recall, r.synced.f1
    );
    println!(
        "  drifting:  precision {:.3} recall {:.3} f1 {:.3}",
        r.drifting.precision, r.drifting.recall, r.drifting.f1
    );
    println!(
        "  corrected: precision {:.3} recall {:.3} f1 {:.3}\n",
        r.corrected.precision, r.corrected.recall, r.corrected.f1
    );
}

fn bench(c: &mut Criterion) {
    print_capability();
    let mut group = c.benchmark_group("abl_clocksync");
    group.sample_size(30);
    let events: Vec<AssocEvent> = (0..10_000u64)
        .map(|i| AssocEvent {
            ts: Ts::from_secs(i * 7 % 100_000),
            comp: CompId::node((i % 128) as u32),
            tag: (i / 6) as u32,
        })
        .collect();
    group.bench_function("associate_10k_events", |b| {
        b.iter(|| std::hint::black_box(associate(events.clone(), 5_000).len()))
    });
    group.bench_function("full_ablation_40_incidents", |b| {
        b.iter(|| std::hint::black_box(clock_sync_ablation(40, BENCH_SEED).drifting.f1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
