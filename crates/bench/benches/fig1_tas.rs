//! Figure 1 (NCSA): mean HSN injection bandwidth, pre-TAS vs TAS eras.
//!
//! Regenerates both era series, prints the figure's headline comparison
//! (the TAS-era mean should be clearly higher), then benchmarks the cost
//! of one monitored tick under each placement policy — the "what does
//! continuous full-system network collection cost" question.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::scenarios::fig1_tas;
use hpcmon::{MonitoringSystem, SimConfig};
use hpcmon_bench::{print_series_row, BENCH_SEED};
use hpcmon_metrics::{Ts, MINUTE_MS};
use hpcmon_sim::sched::Placement;
use hpcmon_sim::{AppProfile, JobSpec, TopologySpec};

fn regenerate() {
    let r = fig1_tas(20, BENCH_SEED);
    println!("\n=== Figure 1: injection bandwidth, pre-TAS vs TAS ===");
    print_series_row("pre-TAS mean injection %", &r.pre_tas);
    print_series_row("TAS mean injection %", &r.post_tas);
    println!(
        "  era means: pre-TAS {:.3}%  TAS {:.3}%  (TAS/pre ratio {:.2}x; paper: pre 'significantly lower')\n",
        r.pre_mean,
        r.post_mean,
        r.post_mean / r.pre_mean.max(1e-9)
    );
}

fn tick_under_placement(placement: Placement) -> MonitoringSystem {
    let mut cfg = SimConfig::small();
    cfg.topology = TopologySpec::Torus3D { dims: [8, 8, 4], nodes_per_router: 2 };
    cfg.link_capacity_bytes_per_sec = 4.0e9;
    cfg.scheduler.placement = placement;
    cfg.seed = BENCH_SEED;
    let mut mon = MonitoringSystem::builder(cfg).bench_suite_every(None).with_probes(false).build();
    for i in 0..16 {
        mon.submit_job(JobSpec::new(
            AppProfile::comm_heavy(&format!("fft{i}")),
            "u",
            32,
            600 * MINUTE_MS,
            Ts::ZERO,
        ));
    }
    mon.run_ticks(2); // warm: jobs placed, traffic flowing
    mon
}

fn bench(c: &mut Criterion) {
    regenerate();
    let mut group = c.benchmark_group("fig1_tas");
    group.sample_size(10);
    for (label, placement) in [
        ("tick_random_placement", Placement::Random),
        ("tick_tas_placement", Placement::TopologyAware),
    ] {
        let mut mon = tick_under_placement(placement);
        group.bench_function(label, |b| {
            b.iter(|| {
                std::hint::black_box(mon.tick().samples);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
