//! Figure 2 (NERSC): periodic benchmark performance over time with
//! visible degradation onsets.
//!
//! Regenerates the benchmark series with an injected filesystem
//! degradation and a network-contention era, prints injected vs detected
//! onsets, then benchmarks the two kernels: one benchmark-suite round and
//! CUSUM onset detection over the full series.

use criterion::{criterion_group, criterion_main, Criterion};
use hpcmon::scenarios::fig2_bench_suite;
use hpcmon_analysis::{CusumDetector, Detector};
use hpcmon_bench::{print_series_row, BENCH_SEED};
use hpcmon_collect::{BenchmarkSuite, StdMetrics};
use hpcmon_metrics::{ColumnFrame, MetricRegistry};
use hpcmon_sim::{SimConfig, SimEngine};

fn regenerate() -> hpcmon::scenarios::Fig2Result {
    let r = fig2_bench_suite(BENCH_SEED);
    println!("\n=== Figure 2: benchmark performance over time ===");
    print_series_row("io bench time-to-solution s", &r.io_series);
    print_series_row("network bench tts s", &r.net_series);
    println!(
        "  io onset: injected {} detected {:?}",
        r.injected_io_onset,
        r.detected_io_onset.map(|t| t.display_hms())
    );
    println!(
        "  net onset: injected {} detected {:?}\n",
        r.injected_net_onset,
        r.detected_net_onset.map(|t| t.display_hms())
    );
    r
}

fn bench(c: &mut Criterion) {
    let r = regenerate();
    let mut group = c.benchmark_group("fig2_bench_suite");
    group.sample_size(20);

    let mut engine = SimEngine::new(SimConfig::small());
    engine.step();
    let metrics = StdMetrics::register(&MetricRegistry::new());
    let mut suite = BenchmarkSuite::new(metrics, BENCH_SEED, 16);
    group.bench_function("one_suite_round", |b| {
        b.iter(|| {
            let mut frame = ColumnFrame::new(engine.now());
            let mut logs = Vec::new();
            std::hint::black_box(suite.run(&engine, &mut frame, &mut logs).len())
        })
    });

    group.bench_function("cusum_onset_detection", |b| {
        b.iter(|| {
            let mut cusum = CusumDetector::new(30, 0.5, 8.0);
            let mut hit = None;
            for &(t, v) in &r.io_series {
                if let Some(a) = cusum.observe(t, v) {
                    hit = Some(a.ts);
                    break;
                }
            }
            std::hint::black_box(hit)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
