#![warn(missing_docs)]

//! Shared helpers for the benchmark harness.
//!
//! Each bench binary regenerates one paper artifact (the figure's series
//! or the capability a Table I row demands), prints the summary rows the
//! paper reports, and then times the representative kernels with
//! Criterion.  Absolute numbers come from our simulator, not the authors'
//! machines; `EXPERIMENTS.md` records the *shape* comparisons.

use hpcmon_metrics::{CompId, MetricId, Sample, Ts};
use hpcmon_store::TimeSeriesStore;

/// Seed used by every bench for reproducibility.
pub const BENCH_SEED: u64 = 2018;

/// Populate a store with `series` node series × `points` minutely points
/// of slowly varying data — the standing dataset for query benches.
pub fn populated_store(series: u32, points: u64) -> TimeSeriesStore {
    let store = TimeSeriesStore::new();
    for n in 0..series {
        for m in 0..points {
            let v = 200.0 + (n as f64) + ((m as f64) * 0.05).sin() * 10.0;
            store.insert(&Sample::new(MetricId(0), CompId::node(n), Ts::from_mins(m), v));
        }
    }
    store
}

/// Print a labelled series summary (first/last/mean/max) as one row.
pub fn print_series_row(label: &str, series: &[(Ts, f64)]) {
    if series.is_empty() {
        println!("  {label:<28} (empty)");
        return;
    }
    let values: Vec<f64> = series.iter().map(|p| p.1).collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "  {label:<28} n={:<5} min={:<12.4} mean={:<12.4} max={:<12.4}",
        series.len(),
        min,
        mean,
        max
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populated_store_has_expected_shape() {
        let store = populated_store(4, 100);
        let stats = store.stats();
        assert_eq!(stats.series, 4);
        assert_eq!(stats.hot_points + stats.warm_points, 400);
    }

    #[test]
    fn print_helpers_do_not_panic() {
        print_series_row("empty", &[]);
        print_series_row("one", &[(Ts(0), 1.0)]);
    }
}
