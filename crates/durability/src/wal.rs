//! WAL and checkpoint codecs: framed records, CRC discipline, and the
//! segment scanner that tells a *torn tail* (crash mid-append — expected,
//! truncate and continue) from *mid-log corruption* (bit rot — diagnose,
//! count, fail closed).
//!
//! ## Record layout
//!
//! A segment file is the 8-byte magic `HPCMWAL1` followed by records:
//!
//! ```text
//! [kind u8 = 0x01][tick u64 LE][len u32 LE][crc u32 LE][payload; len]
//! ```
//!
//! The CRC covers kind + tick + len + payload, so a flipped bit anywhere
//! in a record — header or body — fails the check.  Lengths are bounded
//! (`MAX_RECORD_LEN`) so a corrupted length field cannot make the scanner
//! trust a gigabyte of garbage.
//!
//! A checkpoint file is `HPCMCKP1` + `[len u32][crc u32][payload]` with
//! the CRC over the payload alone.

use crate::crc::{crc32, crc32_finish, crc32_update, CRC_INIT};
use serde::{Deserialize, Serialize};

/// Magic prefix of every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"HPCMWAL1";
/// Magic prefix of every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"HPCMCKP1";
/// Record kind for a per-tick payload (the only kind today; the byte
/// exists so future kinds don't need a new magic).
pub const KIND_TICK: u8 = 0x01;
/// Upper bound on a record payload.  A length field above this is
/// corruption by definition, not a real record.
pub const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

const HEADER_LEN: usize = 1 + 8 + 4 + 4;

/// When the WAL is made durable relative to the tick that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// `fsync` at the end of every tick: a crash loses nothing.
    EveryTick,
    /// `fsync` every `n` ticks: a crash loses at most the last window.
    GroupCommit(u64),
}

impl SyncPolicy {
    /// The worst-case number of ticks a crash can lose under this policy.
    pub fn loss_bound(&self) -> u64 {
        match self {
            SyncPolicy::EveryTick => 0,
            SyncPolicy::GroupCommit(n) => (*n).max(1),
        }
    }

    /// Whether a tick ending at `tick` must sync.
    pub fn should_sync(&self, tick: u64) -> bool {
        match self {
            SyncPolicy::EveryTick => true,
            SyncPolicy::GroupCommit(n) => {
                let n = (*n).max(1);
                tick % n == n - 1
            }
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The tick this record captures.
    pub tick: u64,
    /// Opaque payload (the core's serialized tick record).
    pub payload: Vec<u8>,
}

/// Encode one record (header + CRC + payload) into `out`.
pub fn encode_record(tick: u64, payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() as u64 <= MAX_RECORD_LEN as u64);
    let start = out.len();
    out.push(KIND_TICK);
    out.extend_from_slice(&tick.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(payload);
    // CRC over kind + tick + len + payload (everything but the crc field),
    // streamed so the payload is never copied just to be checksummed.
    let crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, &out[start..start + 13]), payload));
    out[start + 13..start + 17].copy_from_slice(&crc.to_le_bytes());
}

/// How a segment scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanEnd {
    /// Every byte parsed into valid records.
    Clean,
    /// The segment ends in a partial or CRC-invalid record with nothing
    /// after it: the signature of a crash mid-append.  Recovery truncates
    /// the file to `valid_bytes` and continues.
    TornTail {
        /// Bytes up to and including the last valid record.
        valid_bytes: u64,
        /// Bytes of torn garbage dropped after it.
        dropped_bytes: u64,
    },
    /// An invalid record with more data *after* it — or a missing/broken
    /// magic — which a torn append cannot produce.  Fail closed at this
    /// offset; everything after is untrusted.
    Corrupt {
        /// Byte offset of the first bad record.
        offset: u64,
        /// Tick of the record preceding the damage, if any parsed.
        tick_hint: Option<u64>,
    },
}

/// Scan a WAL segment, returning every valid record up to the first
/// damage and how the scan ended.  Never panics on arbitrary bytes.
pub fn scan_segment(bytes: &[u8]) -> (Vec<WalRecord>, ScanEnd) {
    let mut records = Vec::new();
    if bytes.is_empty() {
        return (records, ScanEnd::Clean);
    }
    if bytes.len() < WAL_MAGIC.len() {
        // A torn first write of the magic itself.
        return (records, ScanEnd::TornTail { valid_bytes: 0, dropped_bytes: bytes.len() as u64 });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return (records, ScanEnd::Corrupt { offset: 0, tick_hint: None });
    }
    let mut off = WAL_MAGIC.len();
    loop {
        if off == bytes.len() {
            return (records, ScanEnd::Clean);
        }
        let tick_hint = records.last().map(|r: &WalRecord| r.tick);
        let rest = &bytes[off..];
        // Partial header or body at EOF is a torn tail by construction:
        // nothing can follow it.
        let (ok, total) = validate_record(rest);
        if ok {
            let len = u32::from_le_bytes(rest[9..13].try_into().unwrap()) as usize;
            let tick = u64::from_le_bytes(rest[1..9].try_into().unwrap());
            records.push(WalRecord { tick, payload: rest[HEADER_LEN..HEADER_LEN + len].to_vec() });
            off += total;
            continue;
        }
        // Invalid record. Torn tail iff the damage plausibly runs to EOF:
        // the record is incomplete, or it is the last thing in the file.
        let runs_to_eof = total == 0 || off + total >= bytes.len();
        if runs_to_eof {
            return (
                records,
                ScanEnd::TornTail {
                    valid_bytes: off as u64,
                    dropped_bytes: (bytes.len() - off) as u64,
                },
            );
        }
        return (records, ScanEnd::Corrupt { offset: off as u64, tick_hint });
    }
}

/// Check the record at the head of `rest`.  Returns `(valid, total_len)`;
/// `total_len == 0` means the record is incomplete (header or body runs
/// past EOF) and its true extent is unknowable.
fn validate_record(rest: &[u8]) -> (bool, usize) {
    if rest.len() < HEADER_LEN {
        return (false, 0);
    }
    let kind = rest[0];
    let len = u32::from_le_bytes(rest[9..13].try_into().unwrap());
    if kind != KIND_TICK || len > MAX_RECORD_LEN {
        // A bad kind or insane length leaves no trustworthy extent.
        return (false, 0);
    }
    let total = HEADER_LEN + len as usize;
    if rest.len() < total {
        return (false, 0);
    }
    let stored_crc = u32::from_le_bytes(rest[13..17].try_into().unwrap());
    let crc =
        crc32_finish(crc32_update(crc32_update(CRC_INIT, &rest[..13]), &rest[HEADER_LEN..total]));
    (crc == stored_crc, total)
}

/// Encode a checkpoint file: magic + len + crc + payload.
pub fn encode_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(CKPT_MAGIC.len() + 8 + payload.len());
    out.extend_from_slice(CKPT_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode a checkpoint file, returning the payload iff magic, length and
/// CRC all check out.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<Vec<u8>> {
    let head = CKPT_MAGIC.len() + 8;
    if bytes.len() < head || &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != head + len {
        return None;
    }
    let payload = &bytes[head..];
    if crc32(payload) != crc {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(records: &[(u64, &[u8])]) -> Vec<u8> {
        let mut out = WAL_MAGIC.to_vec();
        for (tick, payload) in records {
            encode_record(*tick, payload, &mut out);
        }
        out
    }

    #[test]
    fn roundtrip_and_clean_scan() {
        let seg = segment(&[(0, b"alpha"), (1, b"beta"), (2, b"")]);
        let (records, end) = scan_segment(&seg);
        assert_eq!(end, ScanEnd::Clean);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], WalRecord { tick: 0, payload: b"alpha".to_vec() });
        assert_eq!(records[2], WalRecord { tick: 2, payload: Vec::new() });
    }

    #[test]
    fn every_truncation_is_a_torn_tail_never_a_panic() {
        let seg = segment(&[(0, b"alpha"), (1, b"longer payload here"), (2, b"z")]);
        for end in 0..seg.len() {
            let (records, scan) = scan_segment(&seg[..end]);
            match scan {
                ScanEnd::Clean => {
                    // Only at record boundaries.
                    assert!(records.len() <= 3);
                }
                ScanEnd::TornTail { valid_bytes, dropped_bytes } => {
                    assert_eq!(valid_bytes + dropped_bytes, end as u64);
                    let (again, end2) = scan_segment(&seg[..valid_bytes as usize]);
                    assert_eq!(end2, ScanEnd::Clean, "truncation must be clean");
                    assert_eq!(again, records);
                }
                ScanEnd::Corrupt { .. } => panic!("truncation misdiagnosed as corruption"),
            }
        }
    }

    #[test]
    fn mid_log_bit_flip_is_corruption_with_a_tick_hint() {
        let seg = segment(&[(7, b"alpha"), (8, b"beta"), (9, b"gamma")]);
        // Flip a byte inside record 8's payload (not the last record).
        let off = WAL_MAGIC.len() + (17 + 5) + 17; // first payload byte of record 1
        let mut bad = seg.clone();
        bad[off] ^= 0x01;
        let (records, end) = scan_segment(&bad);
        assert_eq!(records.len(), 1, "only the prefix before the damage survives");
        match end {
            ScanEnd::Corrupt { offset, tick_hint } => {
                assert_eq!(offset, (WAL_MAGIC.len() + 22) as u64);
                assert_eq!(tick_hint, Some(7));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn flip_in_the_final_record_is_a_torn_tail() {
        let seg = segment(&[(0, b"alpha"), (1, b"beta")]);
        let mut bad = seg.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        let (records, end) = scan_segment(&bad);
        assert_eq!(records.len(), 1);
        assert!(matches!(end, ScanEnd::TornTail { .. }), "got {end:?}");
    }

    #[test]
    fn insane_length_field_fails_closed() {
        let mut seg = segment(&[(0, b"alpha")]);
        let mut raw = vec![KIND_TICK];
        raw.extend_from_slice(&1u64.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 4]);
        seg.extend_from_slice(&raw);
        seg.extend_from_slice(b"trailing bytes beyond the bad record");
        let (records, end) = scan_segment(&seg);
        assert_eq!(records.len(), 1);
        // Incomplete extent → treated as running to EOF → torn tail.
        assert!(matches!(end, ScanEnd::TornTail { .. }), "got {end:?}");
    }

    #[test]
    fn bad_magic_is_corruption_at_offset_zero() {
        let mut seg = segment(&[(0, b"alpha")]);
        seg[0] ^= 0xFF;
        let (records, end) = scan_segment(&seg);
        assert!(records.is_empty());
        assert_eq!(end, ScanEnd::Corrupt { offset: 0, tick_hint: None });
    }

    #[test]
    fn checkpoint_roundtrip_and_rejection() {
        let enc = encode_checkpoint(b"snapshot bytes");
        assert_eq!(decode_checkpoint(&enc).as_deref(), Some(&b"snapshot bytes"[..]));
        for end in 0..enc.len() {
            assert_eq!(decode_checkpoint(&enc[..end]), None, "truncation at {end} accepted");
        }
        let mut bad = enc.clone();
        for i in 0..bad.len() {
            bad[i] ^= 0x10;
            assert_eq!(decode_checkpoint(&bad), None, "flip at {i} accepted");
            bad[i] ^= 0x10;
        }
    }

    #[test]
    fn sync_policy_bounds() {
        assert_eq!(SyncPolicy::EveryTick.loss_bound(), 0);
        assert_eq!(SyncPolicy::GroupCommit(4).loss_bound(), 4);
        assert!(SyncPolicy::EveryTick.should_sync(3));
        let g = SyncPolicy::GroupCommit(4);
        let syncs: Vec<u64> = (0..12).filter(|&t| g.should_sync(t)).collect();
        assert_eq!(syncs, vec![3, 7, 11]);
        // Degenerate group size behaves like every-tick.
        assert_eq!(SyncPolicy::GroupCommit(0).loss_bound(), 1);
        assert!(SyncPolicy::GroupCommit(0).should_sync(0));
    }
}
