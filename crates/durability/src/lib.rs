//! `hpcmon-durability` — the crash-tolerance layer under the monitoring
//! plane.
//!
//! The paper's hardest-won lesson is that monitoring must outlive the
//! system it monitors: sites lost visibility exactly when incidents made
//! it most valuable.  This crate gives `hpcmon` a restart-without-data-loss
//! story built from four pieces:
//!
//! * [`crc`] — table-driven CRC-32 (IEEE), the frame check behind every
//!   record and checkpoint.
//! * [`medium`] — the [`StorageMedium`] trait (append / sync / atomic
//!   rename, with fault hooks) and [`SimDisk`], a deterministic in-memory
//!   disk whose crashes, torn writes, and bit flips are seeded and
//!   bit-identical at any worker count.
//! * [`wal`] — the record and checkpoint codecs plus the segment scanner
//!   that distinguishes a *torn tail* (truncate and continue) from
//!   *mid-log corruption* (diagnose, count, fail closed — never panic).
//! * [`DurabilityPlane`] — the orchestrator: group-commit appends with a
//!   retry backlog, checkpoint rotation + retention, recovery, and a
//!   round-robin CRC scrub.
//!
//! Loss bounds are explicit: [`SyncPolicy::EveryTick`] guarantees zero
//! loss on crash; [`SyncPolicy::GroupCommit`]`(n)` bounds loss to the last
//! `n` ticks.  Both are asserted by the crash/restart test suite against
//! the flight recorder's per-tick state-hash chain.

pub mod crc;
pub mod medium;
mod plane;
pub mod wal;

pub use medium::{DiskCounts, DiskError, SimDisk, StorageMedium};
pub use plane::{
    DurabilityConfig, DurabilityCounts, DurabilityPlane, RecoveredState, RecoveryReport,
};
pub use wal::{ScanEnd, SyncPolicy, WalRecord};
