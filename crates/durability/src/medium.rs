//! The pluggable storage medium under the WAL — and the deterministic
//! simulated disk the tests and chaos suites run against.
//!
//! A [`StorageMedium`] is the minimal surface a write-ahead log needs:
//! append, sync, whole-file read/overwrite, atomic rename, delete, list.
//! The contract mirrors a POSIX directory of log files with `fsync`
//! semantics: **appends are volatile until synced**, renames are atomic,
//! and a crash discards everything unsynced.
//!
//! [`SimDisk`] is the deterministic implementation: an in-memory file map
//! where every file keeps a *durable* prefix and a *pending* (unsynced)
//! tail.  [`SimDisk::crash`] models power loss — pending bytes vanish,
//! unless a torn write is armed, in which case a seeded **prefix** of the
//! pending tail survives, cutting a record mid-frame exactly the way a
//! real disk tears a sector-straddling write.  The chaos engine's
//! `Disk*` faults project onto the fault hooks ([`StorageMedium::set_write_fail`]
//! and friends), so the same seeded plan damages the medium bit-for-bit
//! at any worker count.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Why the medium refused an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskError {
    /// Transient write failure (EIO): the bytes were not accepted.
    WriteFail,
    /// The medium is out of space.
    Full,
    /// No such file.
    NotFound,
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::WriteFail => write!(f, "write failed (EIO)"),
            DiskError::Full => write!(f, "medium full (ENOSPC)"),
            DiskError::NotFound => write!(f, "no such file"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Monotonic operation and fault counters for a medium.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskCounts {
    /// Successful appends.
    pub appends: u64,
    /// Bytes accepted by appends.
    pub appended_bytes: u64,
    /// Syncs performed.
    pub syncs: u64,
    /// Appends refused by an injected write failure.
    pub write_fails: u64,
    /// Appends refused because the medium was full.
    pub full_rejections: u64,
    /// Crashes that tore a pending tail (kept a partial prefix).
    pub torn_crashes: u64,
    /// Durable bytes flipped by injected corruption.
    pub corrupted_bytes: u64,
    /// Crashes simulated.
    pub crashes: u64,
}

/// The minimal storage surface a WAL needs, with fault hooks the chaos
/// projection drives.  All methods take `&self`: a medium is shared
/// between the durability plane (appending) and the chaos projection
/// (injecting faults) through an `Arc`.
pub trait StorageMedium: Send + Sync {
    /// Append bytes to `file` (creating it if absent).  The bytes are
    /// *not* durable until [`StorageMedium::sync`] succeeds.
    fn append(&self, file: &str, bytes: &[u8]) -> Result<(), DiskError>;
    /// Make every pending byte of `file` durable.
    fn sync(&self, file: &str) -> Result<(), DiskError>;
    /// Replace `file`'s contents durably (write + fsync of a fresh file —
    /// used for checkpoint temp files and recovery-time tail truncation,
    /// never for the hot append path).
    fn overwrite(&self, file: &str, bytes: &[u8]) -> Result<(), DiskError>;
    /// Atomically rename `from` to `to`, replacing any existing `to`.
    fn rename(&self, from: &str, to: &str) -> Result<(), DiskError>;
    /// Delete `file`.
    fn delete(&self, file: &str) -> Result<(), DiskError>;
    /// Read `file` in full (durable bytes plus any still-pending tail —
    /// what a reader of the live file would see).
    fn read(&self, file: &str) -> Result<Vec<u8>, DiskError>;
    /// Every file name, sorted.
    fn list(&self) -> Vec<String>;
    /// Size of `file` in bytes (durable + pending), if it exists.
    fn size(&self, file: &str) -> Option<u64>;

    // ----- fault hooks (no-ops on media without injection support) -----

    /// Make every subsequent append fail with [`DiskError::WriteFail`]
    /// while `on`.
    fn set_write_fail(&self, _on: bool) {}
    /// Make every subsequent append fail with [`DiskError::Full`] while
    /// `on`.
    fn set_full(&self, _on: bool) {}
    /// Arm a torn write: the next crash keeps a seeded prefix of the
    /// pending tail instead of discarding it cleanly.
    fn arm_torn_write(&self, _seed: u64) {}
    /// Flip one seeded durable byte somewhere on the medium.  Returns
    /// whether anything was corrupted (false on an empty medium).
    fn corrupt_byte(&self, _seed: u64) -> bool {
        false
    }
}

/// One simulated file.  The durable side is a list of synced chunks
/// rather than one flat buffer: `sync` then moves the pending tail in
/// O(1) instead of copying it — at production scale the WAL appends
/// megabytes per tick, and a flat buffer made the simulated `fsync`
/// (a memcpy plus reallocs) the most expensive instruction stream in
/// the hot path, which no real disk's write-back cache would charge
/// the caller for.
#[derive(Debug, Default, Clone)]
struct SimFile {
    durable: Vec<Vec<u8>>,
    durable_len: usize,
    pending: Vec<u8>,
}

impl SimFile {
    fn total_len(&self) -> usize {
        self.durable_len + self.pending.len()
    }

    fn durable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.durable_len);
        for chunk in &self.durable {
            out.extend_from_slice(chunk);
        }
        out
    }
}

#[derive(Debug, Default)]
struct DiskInner {
    files: BTreeMap<String, SimFile>,
    write_fail: bool,
    full: bool,
    torn_seed: Option<u64>,
    counts: DiskCounts,
}

/// Deterministic in-memory disk with crash and fault-injection semantics.
#[derive(Debug, Default)]
pub struct SimDisk {
    inner: Mutex<DiskInner>,
    capacity: Option<u64>,
}

/// SplitMix64 finalizer — seeded fault placement must be a pure function
/// of the seed, identical at any worker count.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimDisk {
    /// Unbounded disk.
    pub fn new() -> SimDisk {
        SimDisk::default()
    }

    /// Disk that rejects appends with [`DiskError::Full`] once total bytes
    /// (durable + pending) would exceed `bytes`.
    pub fn with_capacity(bytes: u64) -> SimDisk {
        SimDisk { inner: Mutex::new(DiskInner::default()), capacity: Some(bytes) }
    }

    /// Simulate power loss: pending bytes are discarded.  If a torn write
    /// is armed, one seeded *prefix* of each pending tail survives instead
    /// — a record cut mid-frame, which recovery must truncate at the last
    /// valid CRC.
    pub fn crash(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.counts.crashes += 1;
        let torn = inner.torn_seed.take();
        let mut tore_something = false;
        for (i, file) in inner.files.values_mut().enumerate() {
            if file.pending.is_empty() {
                continue;
            }
            if let Some(seed) = torn {
                // Keep a strict prefix (never the whole tail: the point is
                // to land mid-record) of the pending bytes.
                let keep =
                    (mix64(seed ^ (i as u64).rotate_left(11)) % file.pending.len() as u64) as usize;
                if keep > 0 {
                    file.durable.push(file.pending[..keep].to_vec());
                    file.durable_len += keep;
                    tore_something = true;
                }
            }
            file.pending.clear();
        }
        if tore_something {
            inner.counts.torn_crashes += 1;
        }
        // Fault windows do not survive the machine they were injected on.
        inner.write_fail = false;
        inner.full = false;
    }

    /// Operation and fault counters so far.
    pub fn counts(&self) -> DiskCounts {
        self.inner.lock().unwrap().counts
    }

    /// Total bytes on the medium (durable + pending).
    pub fn total_bytes(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.files.values().map(|f| f.total_len() as u64).sum()
    }

    /// Durable contents of every file — what survives a clean crash.
    /// Tests use this to clone a disk's post-crash image.
    pub fn durable_files(&self) -> Vec<(String, Vec<u8>)> {
        let inner = self.inner.lock().unwrap();
        inner.files.iter().map(|(name, f)| (name.clone(), f.durable_bytes())).collect()
    }
}

impl StorageMedium for SimDisk {
    fn append(&self, file: &str, bytes: &[u8]) -> Result<(), DiskError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.write_fail {
            inner.counts.write_fails += 1;
            return Err(DiskError::WriteFail);
        }
        let over_cap = self.capacity.is_some_and(|cap| {
            let used: u64 = inner.files.values().map(|f| f.total_len() as u64).sum();
            used + bytes.len() as u64 > cap
        });
        if inner.full || over_cap {
            inner.counts.full_rejections += 1;
            return Err(DiskError::Full);
        }
        inner.counts.appends += 1;
        inner.counts.appended_bytes += bytes.len() as u64;
        inner.files.entry(file.to_string()).or_default().pending.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, file: &str) -> Result<(), DiskError> {
        let mut inner = self.inner.lock().unwrap();
        inner.counts.syncs += 1;
        let f = inner.files.get_mut(file).ok_or(DiskError::NotFound)?;
        if !f.pending.is_empty() {
            f.durable_len += f.pending.len();
            let chunk = std::mem::take(&mut f.pending);
            f.durable.push(chunk);
        }
        Ok(())
    }

    fn overwrite(&self, file: &str, bytes: &[u8]) -> Result<(), DiskError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.write_fail {
            inner.counts.write_fails += 1;
            return Err(DiskError::WriteFail);
        }
        let used: u64 = inner
            .files
            .iter()
            .filter(|(name, _)| name.as_str() != file)
            .map(|(_, f)| f.total_len() as u64)
            .sum();
        if inner.full || self.capacity.is_some_and(|cap| used + bytes.len() as u64 > cap) {
            inner.counts.full_rejections += 1;
            return Err(DiskError::Full);
        }
        let replacement = SimFile {
            durable: vec![bytes.to_vec()],
            durable_len: bytes.len(),
            pending: Vec::new(),
        };
        inner.files.insert(file.to_string(), replacement);
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<(), DiskError> {
        let mut inner = self.inner.lock().unwrap();
        let f = inner.files.remove(from).ok_or(DiskError::NotFound)?;
        inner.files.insert(to.to_string(), f);
        Ok(())
    }

    fn delete(&self, file: &str) -> Result<(), DiskError> {
        let mut inner = self.inner.lock().unwrap();
        inner.files.remove(file).map(|_| ()).ok_or(DiskError::NotFound)
    }

    fn read(&self, file: &str) -> Result<Vec<u8>, DiskError> {
        let inner = self.inner.lock().unwrap();
        let f = inner.files.get(file).ok_or(DiskError::NotFound)?;
        let mut out = f.durable_bytes();
        out.reserve(f.pending.len());
        out.extend_from_slice(&f.pending);
        Ok(out)
    }

    fn list(&self) -> Vec<String> {
        self.inner.lock().unwrap().files.keys().cloned().collect()
    }

    fn size(&self, file: &str) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        inner.files.get(file).map(|f| f.total_len() as u64)
    }

    fn set_write_fail(&self, on: bool) {
        self.inner.lock().unwrap().write_fail = on;
    }

    fn set_full(&self, on: bool) {
        self.inner.lock().unwrap().full = on;
    }

    fn arm_torn_write(&self, seed: u64) {
        self.inner.lock().unwrap().torn_seed = Some(seed);
    }

    fn corrupt_byte(&self, seed: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let total: u64 = inner.files.values().map(|f| f.durable_len as u64).sum();
        if total == 0 {
            return false;
        }
        let mut target = mix64(seed) % total;
        let mut hit: Option<(String, usize)> = None;
        for (name, f) in &inner.files {
            if target < f.durable_len as u64 {
                hit = Some((name.clone(), target as usize));
                break;
            }
            target -= f.durable_len as u64;
        }
        if let Some((name, mut off)) = hit {
            if let Some(f) = inner.files.get_mut(&name) {
                for chunk in &mut f.durable {
                    if off < chunk.len() {
                        chunk[off] ^= 0x5A;
                        inner.counts.corrupted_bytes += 1;
                        return true;
                    }
                    off -= chunk.len();
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_are_volatile_until_synced() {
        let disk = SimDisk::new();
        disk.append("a.log", b"hello ").unwrap();
        disk.append("a.log", b"world").unwrap();
        assert_eq!(disk.read("a.log").unwrap(), b"hello world");
        disk.crash();
        assert_eq!(disk.read("a.log").unwrap(), b"", "unsynced bytes vanish");
        disk.append("a.log", b"again").unwrap();
        disk.sync("a.log").unwrap();
        disk.crash();
        assert_eq!(disk.read("a.log").unwrap(), b"again", "synced bytes survive");
        assert_eq!(disk.counts().crashes, 2);
    }

    #[test]
    fn torn_crash_keeps_a_strict_prefix() {
        let disk = SimDisk::new();
        disk.append("w.seg", b"0123456789").unwrap();
        disk.sync("w.seg").unwrap();
        disk.append("w.seg", b"ABCDEFGHIJ").unwrap();
        disk.arm_torn_write(7);
        disk.crash();
        let got = disk.read("w.seg").unwrap();
        assert!(got.starts_with(b"0123456789"));
        assert!(got.len() < 20, "never the whole pending tail: {}", got.len());
        // The arm is one-shot.
        disk.append("w.seg", b"XY").unwrap();
        disk.crash();
        assert_eq!(disk.read("w.seg").unwrap(), got);
    }

    #[test]
    fn write_fail_and_full_windows() {
        let disk = SimDisk::new();
        disk.set_write_fail(true);
        assert_eq!(disk.append("f", b"x"), Err(DiskError::WriteFail));
        disk.set_write_fail(false);
        disk.set_full(true);
        assert_eq!(disk.append("f", b"x"), Err(DiskError::Full));
        disk.set_full(false);
        disk.append("f", b"x").unwrap();
        let c = disk.counts();
        assert_eq!((c.write_fails, c.full_rejections, c.appends), (1, 1, 1));
    }

    #[test]
    fn capacity_cap_rejects_overflow() {
        let disk = SimDisk::with_capacity(8);
        disk.append("f", b"12345678").unwrap();
        assert_eq!(disk.append("f", b"9"), Err(DiskError::Full));
        // Overwrite within the cap is fine (it replaces, not extends).
        disk.overwrite("f", b"1234").unwrap();
        disk.append("f", b"5678").unwrap();
    }

    #[test]
    fn rename_is_atomic_replace() {
        let disk = SimDisk::new();
        disk.overwrite("a.tmp", b"new").unwrap();
        disk.overwrite("a", b"old").unwrap();
        disk.rename("a.tmp", "a").unwrap();
        assert_eq!(disk.read("a").unwrap(), b"new");
        assert_eq!(disk.list(), vec!["a".to_string()]);
        assert_eq!(disk.rename("missing", "x"), Err(DiskError::NotFound));
    }

    #[test]
    fn corrupt_byte_is_seeded_and_counted() {
        let disk = SimDisk::new();
        assert!(!disk.corrupt_byte(1), "empty medium: nothing to corrupt");
        disk.overwrite("f", &[0u8; 64]).unwrap();
        assert!(disk.corrupt_byte(42));
        let a = disk.read("f").unwrap();
        assert_eq!(a.iter().filter(|&&b| b != 0).count(), 1);
        // Same seed on an identical disk flips the identical byte.
        let twin = SimDisk::new();
        twin.overwrite("f", &[0u8; 64]).unwrap();
        twin.corrupt_byte(42);
        assert_eq!(a, twin.read("f").unwrap());
        assert_eq!(disk.counts().corrupted_bytes, 1);
    }
}
