//! The durability plane: a segmented WAL with group-commit sync, atomic
//! checkpoints with rotation + retention, fail-closed crash recovery, and
//! a round-robin CRC scrub.
//!
//! ## File layout on the medium
//!
//! ```text
//! wal-0000000000.seg    segment holding records [start, next checkpoint]
//! ckpt-0000000063.ck    checkpoint of the core state at tick 63
//! *.tmp                 in-flight checkpoint writes (deleted on recovery)
//! ```
//!
//! Segments rotate at every checkpoint: a checkpoint at tick `T` seals the
//! current segment and opens `wal-{T+1}.seg`.  Retention keeps the two
//! newest checkpoints (the newest can be corrupt; the previous one plus the
//! still-retained segments behind it is the fallback) and deletes segments
//! whose records are covered by *both*.
//!
//! ## Recovery invariants
//!
//! * Never panics on arbitrary bytes — every failure is diagnosed, counted,
//!   and reported.
//! * A torn tail (crash mid-append, damage running to end-of-log) is
//!   truncated at the last valid CRC and operation resumes.
//! * Mid-log damage — a bad record with data after it, a tick gap, a torn
//!   tail on a non-final segment — is corruption: the log is cut at the
//!   first bad record, everything after is dropped from the medium
//!   (fail closed), and `first_bad_tick` pins the damage.

use crate::medium::{DiskError, StorageMedium};
use crate::wal::{
    decode_checkpoint, encode_checkpoint, encode_record, scan_segment, ScanEnd, SyncPolicy,
    WalRecord, WAL_MAGIC,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Tuning for the durability plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// When appended records become durable.
    pub sync: SyncPolicy,
    /// Checkpoint (and rotate the segment) every this many ticks; 0 never.
    pub checkpoint_every: u64,
    /// Run one scrub step every this many ticks; 0 never.
    pub scrub_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig { sync: SyncPolicy::EveryTick, checkpoint_every: 64, scrub_every: 16 }
    }
}

/// Monotonic counters for everything the plane has done or survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityCounts {
    /// WAL records made it onto the medium.
    pub records_appended: u64,
    /// Encoded record bytes accepted by the medium.
    pub bytes_appended: u64,
    /// Append attempts the medium refused (record stays queued).
    pub append_failures: u64,
    /// Syncs performed.
    pub syncs: u64,
    /// Checkpoints written (temp + atomic rename).
    pub checkpoints: u64,
    /// Checkpoint writes the medium refused.
    pub checkpoint_failures: u64,
    /// Checkpoint files rejected at recovery (bad magic/CRC).
    pub checkpoints_invalid: u64,
    /// Torn-tail bytes truncated at recovery.
    pub torn_tail_bytes: u64,
    /// Mid-log corruption events diagnosed (recovery or scrub never panic).
    pub corrupt_events: u64,
    /// Files CRC-verified by the scrub stage.
    pub scrub_files: u64,
    /// Scrub verifications that failed.
    pub scrub_failures: u64,
    /// Deepest the retry backlog has been.
    pub backlog_peak: u64,
}

/// What recovery found, diagnosed, and decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Tick of the checkpoint restored, if any survived.
    pub checkpoint_tick: Option<u64>,
    /// Checkpoint files rejected before one validated.
    pub checkpoints_invalid: u64,
    /// WAL segments scanned.
    pub segments_scanned: u64,
    /// Records recovered beyond the checkpoint.
    pub records_recovered: u64,
    /// The tick the recovered state resumes at (checkpoint if no records).
    pub last_tick: Option<u64>,
    /// Garbage bytes truncated off a torn tail.
    pub torn_tail_bytes: u64,
    /// Mid-log corruption events (bad record before end-of-log, tick gap,
    /// torn non-final segment).
    pub corrupt_events: u64,
    /// First tick whose record could not be trusted, if any.
    pub first_bad_tick: Option<u64>,
    /// Valid-looking records discarded because they sat beyond damage.
    pub records_dropped: u64,
}

/// Everything recovery hands back to the caller.
#[derive(Debug, Clone)]
pub struct RecoveredState {
    /// `(tick, payload)` of the newest valid checkpoint.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// WAL records after the checkpoint, contiguous, ascending.
    pub records: Vec<WalRecord>,
    /// Diagnosis of what was found and dropped.
    pub report: RecoveryReport,
}

fn seg_name(start: u64) -> String {
    format!("wal-{start:010}.seg")
}

fn ckpt_name(tick: u64) -> String {
    format!("ckpt-{tick:010}.ck")
}

fn parse_seg(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".seg")?.parse().ok()
}

fn parse_ckpt(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".ck")?.parse().ok()
}

/// The live write-ahead-log + checkpoint orchestrator over a medium.
pub struct DurabilityPlane {
    medium: Arc<dyn StorageMedium>,
    cfg: DurabilityConfig,
    /// Current segment file name.
    seg: String,
    /// Whether the segment's magic has been written.
    seg_started: bool,
    /// Encoded records the medium refused; retried every tick — a fault
    /// window shorter than the time to the next crash loses nothing.
    backlog: VecDeque<Vec<u8>>,
    /// Reusable encode buffer for the fast path: records are megabytes at
    /// production scale, and a fresh allocation per tick pays the page
    /// faults every time.
    scratch: Vec<u8>,
    counts: DurabilityCounts,
    scrub_cursor: u64,
    last_ckpt_tick: Option<u64>,
}

impl DurabilityPlane {
    /// Fresh plane on an empty (or to-be-ignored) medium.
    pub fn new(medium: Arc<dyn StorageMedium>, cfg: DurabilityConfig) -> DurabilityPlane {
        DurabilityPlane {
            medium,
            cfg,
            seg: seg_name(0),
            seg_started: false,
            backlog: VecDeque::new(),
            scratch: Vec::new(),
            counts: DurabilityCounts::default(),
            scrub_cursor: 0,
            last_ckpt_tick: None,
        }
    }

    /// Recover from whatever the medium holds: restore the newest valid
    /// checkpoint, scan the WAL tail, truncate torn bytes, fail closed on
    /// corruption, and hand back a plane ready to append.
    pub fn recover(
        medium: Arc<dyn StorageMedium>,
        cfg: DurabilityConfig,
    ) -> (DurabilityPlane, RecoveredState) {
        let files = medium.list();
        // A crash mid-checkpoint leaves a temp file; it was never renamed,
        // so it was never the checkpoint of record.
        for f in files.iter().filter(|f| f.ends_with(".tmp")) {
            let _ = medium.delete(f);
        }

        let mut report = RecoveryReport::default();

        // Newest checkpoint that validates wins; invalid ones are counted
        // and removed so they cannot shadow the fallback next time.
        let mut ckpts: Vec<(u64, String)> =
            files.iter().filter_map(|f| parse_ckpt(f).map(|t| (t, f.clone()))).collect();
        ckpts.sort();
        let mut checkpoint: Option<(u64, Vec<u8>)> = None;
        for (tick, name) in ckpts.iter().rev() {
            match medium.read(name).ok().and_then(|b| decode_checkpoint(&b)) {
                Some(payload) => {
                    checkpoint = Some((*tick, payload));
                    break;
                }
                None => {
                    report.checkpoints_invalid += 1;
                    let _ = medium.delete(name);
                }
            }
        }
        report.checkpoint_tick = checkpoint.as_ref().map(|(t, _)| *t);

        let mut segs: Vec<(u64, String)> =
            files.iter().filter_map(|f| parse_seg(f).map(|t| (t, f.clone()))).collect();
        segs.sort();

        let mut records: Vec<WalRecord> = Vec::new();
        // Replay cursor: the first tick the WAL must supply.  Without a
        // checkpoint there is no external anchor, so the first record
        // defines the chain base (embedders may start counting at 0 or 1);
        // every later record must still be contiguous.
        let mut expected: Option<u64> = report.checkpoint_tick.map(|t| t + 1);
        let mut damaged = false;
        // Last segment file still present after cleanup — appends resume here.
        let mut live_seg: Option<String> = None;

        for (idx, (_start, name)) in segs.iter().enumerate() {
            if damaged {
                // Everything beyond the first damage is untrusted: fail closed.
                let (recs, _) = scan_segment(&medium.read(name).unwrap_or_default());
                report.records_dropped += recs.len() as u64;
                let _ = medium.delete(name);
                continue;
            }
            let is_last = idx + 1 == segs.len();
            let bytes = medium.read(name).unwrap_or_default();
            let (recs, end) = scan_segment(&bytes);
            report.segments_scanned += 1;

            // Contiguity: records must continue the checkpoint's tick chain.
            let mut trusted = recs.len();
            for (i, r) in recs.iter().enumerate() {
                if report.checkpoint_tick.is_some_and(|c| r.tick <= c) {
                    continue; // covered by the checkpoint; redundant, harmless
                }
                let exp = *expected.get_or_insert(r.tick);
                if r.tick != exp {
                    report.corrupt_events += 1;
                    report.first_bad_tick.get_or_insert(exp);
                    trusted = i;
                    damaged = true;
                    break;
                }
                expected = Some(r.tick + 1);
            }

            match end {
                ScanEnd::Clean => {}
                ScanEnd::TornTail { valid_bytes, dropped_bytes } => {
                    if damaged {
                        // Already cut earlier in this segment; the rebuild
                        // below drops the torn bytes too.
                    } else if is_last {
                        // The expected crash signature: truncate at the
                        // last valid CRC and carry on.
                        report.torn_tail_bytes += dropped_bytes;
                        let _ = medium.overwrite(name, &bytes[..valid_bytes as usize]);
                    } else {
                        // Torn bytes with a whole segment after them — a
                        // crash cannot produce that ordering.
                        report.corrupt_events += 1;
                        report.first_bad_tick.get_or_insert(expected.unwrap_or(0));
                        damaged = true;
                    }
                }
                ScanEnd::Corrupt { .. } => {
                    if !damaged {
                        report.corrupt_events += 1;
                        report.first_bad_tick.get_or_insert(expected.unwrap_or(0));
                    }
                    damaged = true;
                }
            }

            if damaged {
                report.records_dropped += (recs.len() - trusted) as u64;
                if trusted == 0 {
                    let _ = medium.delete(name);
                } else {
                    // Rebuild the segment from its trusted prefix so the
                    // damage is physically gone, not just skipped.
                    let mut rebuilt = WAL_MAGIC.to_vec();
                    for r in &recs[..trusted] {
                        encode_record(r.tick, &r.payload, &mut rebuilt);
                    }
                    let _ = medium.overwrite(name, &rebuilt);
                    live_seg = Some(name.clone());
                }
            } else {
                live_seg = Some(name.clone());
            }

            let covered = report.checkpoint_tick;
            records.extend(
                recs.into_iter().take(trusted).filter(|r| covered.is_none_or(|c| r.tick > c)),
            );
        }

        report.records_recovered = records.len() as u64;
        report.last_tick = records.last().map(|r| r.tick).or(report.checkpoint_tick);

        let (seg, seg_started) = match live_seg {
            Some(name) => {
                let started = medium.size(&name).unwrap_or(0) > 0;
                (name, started)
            }
            None => (seg_name(expected.unwrap_or(0)), false),
        };

        let counts = DurabilityCounts {
            checkpoints_invalid: report.checkpoints_invalid,
            torn_tail_bytes: report.torn_tail_bytes,
            corrupt_events: report.corrupt_events,
            ..DurabilityCounts::default()
        };
        let plane = DurabilityPlane {
            medium,
            cfg,
            seg,
            seg_started,
            backlog: VecDeque::new(),
            scratch: Vec::new(),
            counts,
            scrub_cursor: 0,
            last_ckpt_tick: report.checkpoint_tick,
        };
        (plane, RecoveredState { checkpoint, records, report })
    }

    /// Queue and (best-effort) write the record for `tick`.  A refused
    /// write is counted and retried next tick — lossless unless the
    /// process crashes while the backlog is non-empty.
    pub fn append_tick(&mut self, tick: u64, payload: &[u8]) {
        self.scratch.clear();
        encode_record(tick, payload, &mut self.scratch);
        // Fast path: nothing queued, so the record can go straight from
        // the reused scratch buffer to the medium without ever being
        // allocated per tick.  It only enters the backlog (taking the
        // buffer with it) when the medium refuses the write.
        let tried_direct = self.backlog.is_empty();
        if tried_direct {
            if !self.seg_started {
                if self.medium.append(&self.seg, WAL_MAGIC).is_ok() {
                    self.seg_started = true;
                } else {
                    self.counts.append_failures += 1;
                }
            }
            if self.seg_started {
                match self.medium.append(&self.seg, &self.scratch) {
                    Ok(()) => {
                        self.counts.records_appended += 1;
                        self.counts.bytes_appended += self.scratch.len() as u64;
                        return;
                    }
                    Err(_) => self.counts.append_failures += 1,
                }
            }
        }
        self.backlog.push_back(std::mem::take(&mut self.scratch));
        let depth = self.backlog.len() as u64;
        if depth > self.counts.backlog_peak {
            self.counts.backlog_peak = depth;
        }
        if !tried_direct {
            // The medium was just tried (and refused) on the direct path;
            // retrying in the same breath would only double the counters.
            self.drain_backlog();
        }
    }

    fn drain_backlog(&mut self) {
        if !self.seg_started {
            if self.medium.append(&self.seg, WAL_MAGIC).is_err() {
                self.counts.append_failures += 1;
                return;
            }
            self.seg_started = true;
        }
        while let Some(rec) = self.backlog.front() {
            match self.medium.append(&self.seg, rec) {
                Ok(()) => {
                    self.counts.records_appended += 1;
                    self.counts.bytes_appended += rec.len() as u64;
                    self.backlog.pop_front();
                }
                Err(_) => {
                    self.counts.append_failures += 1;
                    return;
                }
            }
        }
    }

    /// End-of-tick hook: retry any backlog, then sync per policy.
    pub fn end_tick(&mut self, tick: u64) {
        if !self.backlog.is_empty() {
            self.drain_backlog();
        }
        if self.cfg.sync.should_sync(tick)
            && self.seg_started
            && self.medium.sync(&self.seg).is_ok()
        {
            self.counts.syncs += 1;
        }
    }

    /// Write a checkpoint of `snapshot` at `tick` (temp file + atomic
    /// rename), rotate to a fresh segment, and apply retention: keep the
    /// two newest checkpoints and every segment either may still need.
    pub fn checkpoint(&mut self, tick: u64, snapshot: &[u8]) -> Result<(), DiskError> {
        let name = ckpt_name(tick);
        let tmp = format!("{name}.tmp");
        let encoded = encode_checkpoint(snapshot);
        if let Err(e) =
            self.medium.overwrite(&tmp, &encoded).and_then(|()| self.medium.rename(&tmp, &name))
        {
            self.counts.checkpoint_failures += 1;
            return Err(e);
        }
        self.counts.checkpoints += 1;
        // Everything ≤ tick — including any still-queued records — is
        // covered by the checkpoint.
        self.backlog.clear();
        // Seal the outgoing segment before rotating: under group commit it
        // may still hold unsynced bytes, and a later torn crash would
        // plant torn garbage in a non-final segment — which recovery must
        // treat as corruption and fail closed on, dropping a valid tail.
        if self.seg_started && self.medium.sync(&self.seg).is_ok() {
            self.counts.syncs += 1;
        }
        self.seg = seg_name(tick + 1);
        self.seg_started = false;
        // Retention: the checkpoint before this one becomes the fallback.
        // Segments rotate at checkpoints, so a segment starting at or
        // before the fallback holds only records ≤ it — covered by both
        // retained checkpoints, safe to delete.
        if let Some(prev) = self.last_ckpt_tick {
            for f in self.medium.list() {
                if parse_seg(&f).is_some_and(|s| s <= prev) {
                    let _ = self.medium.delete(&f);
                }
            }
        }
        let mut cks: Vec<(u64, String)> =
            self.medium.list().into_iter().filter_map(|f| parse_ckpt(&f).map(|t| (t, f))).collect();
        cks.sort();
        while cks.len() > 2 {
            let (_, f) = cks.remove(0);
            let _ = self.medium.delete(&f);
        }
        self.last_ckpt_tick = Some(tick);
        Ok(())
    }

    /// CRC-verify one file per call, round-robin over the medium.
    /// Returns the file and whether it verified.
    pub fn scrub_step(&mut self) -> Option<(String, bool)> {
        let files: Vec<String> =
            self.medium.list().into_iter().filter(|f| !f.ends_with(".tmp")).collect();
        if files.is_empty() {
            return None;
        }
        let idx = (self.scrub_cursor as usize) % files.len();
        self.scrub_cursor = self.scrub_cursor.wrapping_add(1);
        let name = files[idx].clone();
        let ok = match self.medium.read(&name) {
            Err(_) => false,
            Ok(bytes) => {
                if name.ends_with(".seg") {
                    matches!(scan_segment(&bytes).1, ScanEnd::Clean)
                } else if name.ends_with(".ck") {
                    decode_checkpoint(&bytes).is_some()
                } else {
                    true
                }
            }
        };
        self.counts.scrub_files += 1;
        if !ok {
            self.counts.scrub_failures += 1;
            self.counts.corrupt_events += 1;
        }
        Some((name, ok))
    }

    /// The medium this plane writes to.
    pub fn medium(&self) -> &Arc<dyn StorageMedium> {
        &self.medium
    }

    /// The plane's configuration.
    pub fn config(&self) -> DurabilityConfig {
        self.cfg
    }

    /// Lifetime counters.
    pub fn counts(&self) -> DurabilityCounts {
        self.counts
    }

    /// Records queued waiting for the medium to accept writes again.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Current segment file name.
    pub fn segment(&self) -> &str {
        &self.seg
    }

    /// Tick of the newest checkpoint written or restored.
    pub fn last_checkpoint_tick(&self) -> Option<u64> {
        self.last_ckpt_tick
    }

    /// Worst-case ticks lost to a crash under the configured sync policy.
    pub fn loss_bound(&self) -> u64 {
        self.cfg.sync.loss_bound()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::SimDisk;

    fn payload(tick: u64) -> Vec<u8> {
        format!("tick-{tick}-payload").into_bytes()
    }

    fn run_ticks(plane: &mut DurabilityPlane, ticks: std::ops::Range<u64>) {
        for t in ticks {
            plane.append_tick(t, &payload(t));
            plane.end_tick(t);
        }
    }

    fn cfg(sync: SyncPolicy) -> DurabilityConfig {
        DurabilityConfig { sync, ..DurabilityConfig::default() }
    }

    #[test]
    fn fsync_per_tick_survives_a_crash_with_zero_loss() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::EveryTick));
        run_ticks(&mut plane, 0..10);
        disk.crash();
        let (_plane, state) = DurabilityPlane::recover(disk, cfg(SyncPolicy::EveryTick));
        assert_eq!(state.report.last_tick, Some(9));
        assert_eq!(state.records.len(), 10);
        for (i, r) in state.records.iter().enumerate() {
            assert_eq!(r.tick, i as u64);
            assert_eq!(r.payload, payload(i as u64));
        }
        assert_eq!(state.report.corrupt_events, 0);
        assert_eq!(state.report.torn_tail_bytes, 0);
    }

    #[test]
    fn group_commit_loss_is_bounded_by_the_window() {
        let disk = Arc::new(SimDisk::new());
        let policy = SyncPolicy::GroupCommit(4);
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(policy));
        run_ticks(&mut plane, 0..10); // syncs after ticks 3 and 7
        disk.crash();
        let (_plane, state) = DurabilityPlane::recover(disk, cfg(policy));
        let last = state.report.last_tick.expect("some records survive");
        assert_eq!(last, 7, "everything up to the last group sync survives");
        assert!(9 - last <= policy.loss_bound());
    }

    #[test]
    fn checkpoint_rotates_retains_and_recovers() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::EveryTick));
        run_ticks(&mut plane, 0..5);
        plane.checkpoint(4, b"snap@4").unwrap();
        run_ticks(&mut plane, 5..10);
        plane.checkpoint(9, b"snap@9").unwrap();
        run_ticks(&mut plane, 10..12);
        // The segment covered by both checkpoints (wal-0) must be gone.
        let files = disk.list();
        assert!(!files.contains(&"wal-0000000000.seg".to_string()), "{files:?}");
        assert!(files.contains(&"ckpt-0000000004.ck".to_string()));
        assert!(files.contains(&"ckpt-0000000009.ck".to_string()));
        disk.crash();
        let (plane2, state) = DurabilityPlane::recover(disk, cfg(SyncPolicy::EveryTick));
        assert_eq!(state.checkpoint, Some((9, b"snap@9".to_vec())));
        let ticks: Vec<u64> = state.records.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![10, 11], "only the tail past the checkpoint replays");
        assert_eq!(plane2.last_checkpoint_tick(), Some(9));
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_previous() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::EveryTick));
        run_ticks(&mut plane, 0..5);
        plane.checkpoint(4, b"snap@4").unwrap();
        run_ticks(&mut plane, 5..10);
        plane.checkpoint(9, b"snap@9").unwrap();
        disk.overwrite("ckpt-0000000009.ck", b"garbage that fails the magic").unwrap();
        let (_plane, state) = DurabilityPlane::recover(disk.clone(), cfg(SyncPolicy::EveryTick));
        assert_eq!(state.report.checkpoints_invalid, 1);
        assert_eq!(state.checkpoint, Some((4, b"snap@4".to_vec())));
        let ticks: Vec<u64> = state.records.iter().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![5, 6, 7, 8, 9], "segment behind the fallback was retained");
        // The bad checkpoint is physically gone now.
        assert!(!disk.list().contains(&"ckpt-0000000009.ck".to_string()));
    }

    #[test]
    fn torn_tail_is_truncated_and_counted_then_clean() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::GroupCommit(100)));
        run_ticks(&mut plane, 0..6);
        // Nothing synced yet; a torn crash keeps a partial prefix.
        disk.arm_torn_write(1234);
        disk.crash();
        let (mut plane2, state) =
            DurabilityPlane::recover(disk.clone(), cfg(SyncPolicy::EveryTick));
        assert_eq!(state.report.corrupt_events, 0, "a torn tail is not corruption");
        if state.report.torn_tail_bytes > 0 {
            assert!(state.records.len() < 6);
        }
        // The tail was truncated: appends resume and a second recovery is clean.
        let next = state.report.last_tick.map(|t| t + 1).unwrap_or(0);
        plane2.append_tick(next, &payload(next));
        plane2.end_tick(next);
        disk.crash();
        let (_plane3, state2) = DurabilityPlane::recover(disk, cfg(SyncPolicy::EveryTick));
        assert_eq!(state2.report.torn_tail_bytes, 0);
        assert_eq!(state2.report.corrupt_events, 0);
        assert_eq!(state2.report.last_tick, Some(next));
    }

    #[test]
    fn mid_log_corruption_fails_closed_with_a_diagnosis() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::EveryTick));
        run_ticks(&mut plane, 0..20);
        // Flip one durable byte somewhere in the log.
        assert!(disk.corrupt_byte(99));
        let (_plane, state) = DurabilityPlane::recover(disk.clone(), cfg(SyncPolicy::EveryTick));
        assert_eq!(state.report.corrupt_events, 1);
        let bad = state.report.first_bad_tick.expect("damage is pinned to a tick");
        // The recovered prefix is exactly the ticks before the damage.
        let ticks: Vec<u64> = state.records.iter().map(|r| r.tick).collect();
        let want: Vec<u64> = (0..bad).collect();
        assert_eq!(ticks, want);
        // Fail closed means the damage is physically gone: recover again, clean.
        let (_plane2, state2) = DurabilityPlane::recover(disk, cfg(SyncPolicy::EveryTick));
        assert_eq!(state2.report.corrupt_events, 0);
        assert_eq!(state2.report.last_tick, if bad == 0 { None } else { Some(bad - 1) });
    }

    #[test]
    fn disk_full_window_backs_up_then_drains_losslessly() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::EveryTick));
        run_ticks(&mut plane, 0..3);
        disk.set_full(true);
        run_ticks(&mut plane, 3..6);
        assert_eq!(plane.backlog_len(), 3, "refused records queue up");
        assert!(plane.counts().append_failures > 0);
        disk.set_full(false);
        run_ticks(&mut plane, 6..8);
        assert_eq!(plane.backlog_len(), 0, "backlog drains once the medium recovers");
        // Peak is measured at push time: 3 queued + the tick-6 record.
        assert_eq!(plane.counts().backlog_peak, 4);
        disk.crash();
        let (_plane, state) = DurabilityPlane::recover(disk, cfg(SyncPolicy::EveryTick));
        assert_eq!(state.report.last_tick, Some(7));
        assert_eq!(state.records.len(), 8, "the fault window lost nothing");
    }

    #[test]
    fn scrub_flags_a_corrupted_file() {
        let disk = Arc::new(SimDisk::new());
        let mut plane = DurabilityPlane::new(disk.clone(), cfg(SyncPolicy::EveryTick));
        run_ticks(&mut plane, 0..4);
        plane.checkpoint(3, b"snap").unwrap();
        // One full round-robin pass over a healthy medium.
        let files = disk.list().len();
        for _ in 0..files {
            let (_, ok) = plane.scrub_step().unwrap();
            assert!(ok);
        }
        assert!(disk.corrupt_byte(7));
        let mut failures = 0;
        for _ in 0..files {
            let (_, ok) = plane.scrub_step().unwrap();
            failures += u64::from(!ok);
        }
        assert_eq!(failures, 1);
        assert_eq!(plane.counts().scrub_failures, 1);
        assert_eq!(plane.counts().scrub_files, 2 * files as u64);
    }

    #[test]
    fn recovery_of_an_empty_medium_is_a_fresh_plane() {
        let disk = Arc::new(SimDisk::new());
        let (plane, state) = DurabilityPlane::recover(disk, DurabilityConfig::default());
        assert_eq!(state.report, RecoveryReport::default());
        assert!(state.checkpoint.is_none());
        assert!(state.records.is_empty());
        assert_eq!(plane.segment(), "wal-0000000000.seg");
    }
}
