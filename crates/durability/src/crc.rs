//! CRC-32C (Castagnoli polynomial, reflected) — the frame check behind
//! every WAL record and checkpoint file.
//!
//! Hand-rolled because the build environment is offline (no `crc32fast`),
//! and because the durability plane's guarantees rest on this exact
//! function: a torn tail or flipped bit must fail the check.  Castagnoli
//! rather than IEEE so the x86 `crc32` instruction (SSE 4.2) can carry the
//! hot path — WAL records are megabytes per tick at production scale, and
//! the checksum must not dominate the tick.  A slice-by-8 table path
//! (compile-time tables) covers machines without the instruction.

/// The reflected Castagnoli polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slice-by-8 tables: `TABLES[0]` is the classic byte table; `TABLES[k]`
/// advances a byte `k` positions further, so eight bytes fold per lookup
/// round on machines without hardware CRC.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// Initial value for a streaming CRC (pre-inversion).
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Fold `bytes` into a running CRC started at [`CRC_INIT`].  Streaming
/// form so callers can cover a header and a payload without gluing them
/// into one allocation.
pub fn crc32_update(crc: u32, bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: sse4.2 was just verified present on this CPU.
        return unsafe { update_hw(crc, bytes) };
    }
    update_soft(crc, bytes)
}

/// Hardware path: the `crc32` instruction folds 8 bytes per cycle-ish.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn update_hw(crc: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut acc = crc as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        acc = _mm_crc32_u64(acc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = acc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

/// Portable path: slice-by-8 table lookups.
fn update_soft(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        crc ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLES[7][(crc & 0xFF) as usize]
            ^ TABLES[6][((crc >> 8) & 0xFF) as usize]
            ^ TABLES[5][((crc >> 16) & 0xFF) as usize]
            ^ TABLES[4][(crc >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Finalize a streaming CRC.
pub fn crc32_finish(crc: u32) -> u32 {
    crc ^ 0xFFFF_FFFF
}

/// CRC-32C of `bytes` (Castagnoli, init/xorout `0xFFFF_FFFF`, reflected —
/// the same value `crc32c` libraries produce).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32C check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xE306_9283);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_the_crc() {
        let mut data = b"the durability plane's guarantees rest on this".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}:{bit} went undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    /// Hardware, slice-by-8, and bytewise paths must agree at every
    /// length, alignment, and streaming split.
    #[test]
    fn all_paths_agree() {
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = CRC_INIT;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            crc32_finish(crc)
        }
        let data: Vec<u8> = (0..96u32).map(|i| (i.wrapping_mul(167) >> 3) as u8).collect();
        for len in 0..data.len() {
            let want = bytewise(&data[..len]);
            assert_eq!(crc32(&data[..len]), want, "dispatch path, length {len}");
            assert_eq!(
                crc32_finish(update_soft(CRC_INIT, &data[..len])),
                want,
                "table path, length {len}"
            );
            // Streaming across an arbitrary split must match one-shot.
            let split = len / 3;
            let streamed = crc32_finish(crc32_update(
                crc32_update(CRC_INIT, &data[..split]),
                &data[split..len],
            ));
            assert_eq!(streamed, want, "split {split}/{len}");
        }
    }

    #[test]
    fn truncation_changes_the_crc() {
        let data = b"records are framed, never length-trusted".to_vec();
        let base = crc32(&data);
        for end in 0..data.len() {
            assert_ne!(crc32(&data[..end]), base, "prefix {end} collided");
        }
    }
}
