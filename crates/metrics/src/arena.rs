//! Columnar, arena-backed frames: the allocation-free collection hot path.
//!
//! The paper's central scaling lesson is that per-sample overhead in the
//! collection/ingest path is what caps fleet size.  A [`crate::Frame`]
//! stores one 32-byte `Sample` struct per observation (AoS); at 100k nodes
//! × several metrics that is millions of tiny writes per tick, plus a full
//! `Vec` clone when the frame is handed to transport.
//!
//! [`ColumnFrame`] stores the same data as three parallel columns
//! (structure-of-arrays): series keys, timestamps, and values.  Collectors
//! append into the columns once per tick; the finished frame is handed to
//! transport and the store by **epoch swap** — the owning buffer moves into
//! an `Arc` and a [`FrameArena`] keeps the previous tick's buffer around so
//! the next tick can reclaim its capacity instead of allocating.  In steady
//! state the hot path performs *zero* heap allocations per tick.
//!
//! [`Mutability`] carries the murk-style update-class hint (static /
//! per-tick / sparse) that lets downstream consumers reason about how much
//! of a collector's segment actually changes tick to tick.

use crate::sample::{Frame, FrameCoverage, Sample, SeriesKey};
use crate::{CompId, MetricId, Ts};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How a collector's segment of the frame evolves across ticks.
///
/// Borrowed from murk's Static/PerTick/Sparse mutability split: the class
/// does not change *how* samples are stored, but tells consumers (and
/// future delta-encoding transports) how much of the segment is expected to
/// differ from the previous tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mutability {
    /// The segment's key set is fixed after the first tick; only values
    /// change (e.g. per-node power, temperature).
    Static,
    /// Every value is rewritten every tick and the key set may drift
    /// slowly (the default class).
    PerTick,
    /// Most ticks touch only a small, varying subset of keys (e.g.
    /// filesystem probes that only report on activity).
    Sparse,
}

/// A synchronized collection frame in columnar (SoA) form.
///
/// Semantically identical to [`Frame`] — same samples, same order — but
/// keys, timestamps, and values live in three parallel `Vec`s so a tick's
/// worth of appends touches three dense arrays instead of one array of
/// 32-byte structs, and capacity can be recycled tick over tick by a
/// [`FrameArena`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnFrame {
    /// The aligned tick this frame belongs to.
    pub ts: Ts,
    /// Series identity of each sample, in append order.
    pub keys: Vec<SeriesKey>,
    /// Collector-side timestamp of each sample (parallel to `keys`).
    pub stamps: Vec<Ts>,
    /// Observed value of each sample (parallel to `keys`).
    pub values: Vec<f64>,
    /// Which collectors contributed (`None` until the supervised pipeline
    /// stamps coverage).
    pub coverage: Option<FrameCoverage>,
}

impl ColumnFrame {
    /// An empty columnar frame at `ts`.
    pub fn new(ts: Ts) -> ColumnFrame {
        ColumnFrame { ts, ..ColumnFrame::default() }
    }

    /// Append a sample, stamping it with the frame's tick.
    #[inline]
    pub fn push(&mut self, metric: MetricId, comp: CompId, value: f64) {
        self.keys.push(SeriesKey::new(metric, comp));
        self.stamps.push(self.ts);
        self.values.push(value);
    }

    /// Append an already-built sample, preserving its own timestamp.
    #[inline]
    pub fn push_sample(&mut self, s: Sample) {
        self.keys.push(s.key);
        self.stamps.push(s.ts);
        self.values.push(s.value);
    }

    /// Number of samples in the frame.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the frame holds no samples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sample at position `i` (by value — samples are 32-byte `Copy`).
    #[inline]
    pub fn get(&self, i: usize) -> Sample {
        Sample { key: self.keys[i], ts: self.stamps[i], value: self.values[i] }
    }

    /// Iterate all samples by value, in append order (zero-allocation).
    pub fn iter(&self) -> impl Iterator<Item = Sample> + '_ {
        self.keys.iter().zip(&self.stamps).zip(&self.values).map(|((&key, &ts), &value)| Sample {
            key,
            ts,
            value,
        })
    }

    /// Iterate samples of one metric, by value.
    pub fn of_metric(&self, metric: MetricId) -> impl Iterator<Item = Sample> + '_ {
        self.iter().filter(move |s| s.key.metric == metric)
    }

    /// Sum of values for one metric across all components in the frame.
    pub fn sum_of(&self, metric: MetricId) -> f64 {
        self.of_metric(metric).map(|s| s.value).sum()
    }

    /// Mean of values for one metric, or `None` if absent.
    pub fn mean_of(&self, metric: MetricId) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for s in self.of_metric(metric) {
            n += 1;
            sum += s.value;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Truncate to the first `n` samples (the supervised pipeline's discard
    /// of a failed collector's partial segment).
    pub fn truncate(&mut self, n: usize) {
        self.keys.truncate(n);
        self.stamps.truncate(n);
        self.values.truncate(n);
    }

    /// Move every sample of `other` onto the end of this frame, column by
    /// column (the parallel pipeline's merge step).  `other` is left empty
    /// with its capacity intact.
    pub fn append(&mut self, other: &mut ColumnFrame) {
        self.keys.append(&mut other.keys);
        self.stamps.append(&mut other.stamps);
        self.values.append(&mut other.values);
    }

    /// Reset for a new tick, retaining column capacity — the arena's
    /// reclamation step that makes the steady-state path allocation-free.
    pub fn clear_for_tick(&mut self, ts: Ts) {
        self.ts = ts;
        self.keys.clear();
        self.stamps.clear();
        self.values.clear();
        self.coverage = None;
    }

    /// The legacy row-oriented view: an equivalent [`Frame`] with samples
    /// in identical order.  Compatibility bridge while consumers migrate.
    pub fn to_frame(&self) -> Frame {
        Frame { ts: self.ts, samples: self.iter().collect(), coverage: self.coverage }
    }

    /// Build a columnar frame from a legacy [`Frame`], preserving order.
    pub fn from_frame(frame: &Frame) -> ColumnFrame {
        let mut cf = ColumnFrame::new(frame.ts);
        cf.coverage = frame.coverage;
        cf.keys.reserve_exact(frame.samples.len());
        cf.stamps.reserve_exact(frame.samples.len());
        cf.values.reserve_exact(frame.samples.len());
        for s in &frame.samples {
            cf.push_sample(*s);
        }
        cf
    }
}

/// Ping-pong double-buffered arena for per-tick [`ColumnFrame`]s.
///
/// Two slots alternate as the publish target.  Each tick the pipeline
/// [`FrameArena::take_current`]s an owned buffer (reclaiming the slot used
/// two ticks ago when all downstream holders have dropped it), collectors
/// fill it in place, and [`FrameArena::publish`] moves it into an `Arc`
/// that transport, the store, and analysis share **without copying** —
/// the epoch swap that replaces the old `Arc::new(frame.clone())`.
///
/// By the time a slot comes around again its consumers (transport envelope,
/// store ingest, detectors) have finished with the previous occupant, so
/// `Arc::try_unwrap` recovers the buffer and its column capacity.  The
/// fallback — someone still holds the frame — allocates fresh and is
/// counted in [`FrameArena::fresh_allocs`].
#[derive(Debug, Default)]
pub struct FrameArena {
    slots: [Option<Arc<ColumnFrame>>; 2],
    live: usize,
    fresh_allocs: u64,
    reuses: u64,
}

impl FrameArena {
    /// An empty arena: the first two ticks allocate, every tick after
    /// reuses in steady state.
    pub fn new() -> FrameArena {
        FrameArena::default()
    }

    /// Begin a tick: return an owned, empty frame stamped `ts`, reusing
    /// the buffer published two ticks ago when it is no longer shared.
    pub fn take_current(&mut self, ts: Ts) -> ColumnFrame {
        self.live ^= 1;
        match self.slots[self.live].take().and_then(|a| Arc::try_unwrap(a).ok()) {
            Some(mut cf) => {
                self.reuses += 1;
                cf.clear_for_tick(ts);
                cf
            }
            None => {
                self.fresh_allocs += 1;
                ColumnFrame::new(ts)
            }
        }
    }

    /// Finish a tick: move the filled frame into the live slot and hand
    /// back a shared handle.  No sample data is copied.
    pub fn publish(&mut self, frame: ColumnFrame) -> Arc<ColumnFrame> {
        let arc = Arc::new(frame);
        self.slots[self.live] = Some(Arc::clone(&arc));
        arc
    }

    /// Times `take_current` had to allocate a fresh buffer (the first two
    /// ticks, plus any tick where a downstream consumer still held the
    /// two-ticks-ago frame).  Flat in steady state.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Times `take_current` reclaimed a previous buffer's capacity.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(n: u32) -> MetricId {
        MetricId(n)
    }

    #[test]
    fn push_stamps_tick_and_matches_frame() {
        let mut cf = ColumnFrame::new(Ts::from_mins(1));
        cf.push(mid(0), CompId::node(0), 1.0);
        cf.push(mid(0), CompId::node(1), 3.0);
        assert_eq!(cf.len(), 2);
        assert!(cf.iter().all(|s| s.ts == Ts::from_mins(1)));

        let mut f = Frame::new(Ts::from_mins(1));
        f.push(mid(0), CompId::node(0), 1.0);
        f.push(mid(0), CompId::node(1), 3.0);
        assert_eq!(cf.to_frame(), f);
        assert_eq!(ColumnFrame::from_frame(&f), cf);
    }

    #[test]
    fn aggregates_match_frame_semantics() {
        let mut cf = ColumnFrame::new(Ts(0));
        cf.push(mid(0), CompId::node(0), 1.0);
        cf.push(mid(0), CompId::node(1), 3.0);
        cf.push(mid(1), CompId::node(0), 100.0);
        assert_eq!(cf.sum_of(mid(0)), 4.0);
        assert_eq!(cf.mean_of(mid(0)), Some(2.0));
        assert_eq!(cf.mean_of(mid(9)), None);
        assert_eq!(cf.of_metric(mid(0)).count(), 2);
        assert_eq!(cf.get(2).value, 100.0);
    }

    #[test]
    fn truncate_and_append_keep_columns_parallel() {
        let mut a = ColumnFrame::new(Ts(5));
        let mut b = ColumnFrame::new(Ts(5));
        for i in 0..4 {
            a.push(mid(0), CompId::node(i), i as f64);
            b.push(mid(1), CompId::node(i), 10.0 + i as f64);
        }
        b.truncate(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.keys.len(), b.stamps.len());
        assert_eq!(b.keys.len(), b.values.len());
        a.append(&mut b);
        assert_eq!(a.len(), 6);
        assert!(b.is_empty());
        assert_eq!(a.get(5).key.metric, mid(1));
        assert_eq!(a.get(5).value, 11.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut cf = ColumnFrame::new(Ts(5));
        cf.push(mid(2), CompId::ost(1), 9.25);
        let mut cov = FrameCoverage::default();
        cov.expect(0);
        cov.report(0);
        cf.coverage = Some(cov);
        let s = serde_json::to_string(&cf).unwrap();
        let back: ColumnFrame = serde_json::from_str(&s).unwrap();
        assert_eq!(cf, back);
    }

    #[test]
    fn arena_reuses_buffers_once_consumers_drop() {
        let mut arena = FrameArena::new();
        let mut published: Vec<Arc<ColumnFrame>> = Vec::new();
        for tick in 0..6u64 {
            // Downstream consumers hold a frame for at most one tick, so
            // the two-ticks-ago frame is dropped before this tick begins.
            if published.len() > 1 {
                published.remove(0);
            }
            let mut cf = arena.take_current(Ts(tick * 1_000));
            for n in 0..100 {
                cf.push(mid(0), CompId::node(n), n as f64);
            }
            published.push(arena.publish(cf));
        }
        // Ticks 0 and 1 allocate; 2..6 reclaim the two-ticks-ago buffer.
        assert_eq!(arena.fresh_allocs(), 2);
        assert_eq!(arena.reuses(), 4);
    }

    #[test]
    fn arena_falls_back_to_fresh_when_frame_still_held() {
        let mut arena = FrameArena::new();
        let mut held = Vec::new();
        for tick in 0..4u64 {
            let mut cf = arena.take_current(Ts(tick));
            cf.push(mid(0), CompId::node(0), 0.0);
            held.push(arena.publish(cf)); // never dropped
        }
        assert_eq!(arena.fresh_allocs(), 4, "held frames cannot be reclaimed");
        assert_eq!(arena.reuses(), 0);
        // Every published frame is intact and distinct.
        for (tick, f) in held.iter().enumerate() {
            assert_eq!(f.ts, Ts(tick as u64));
            assert_eq!(f.len(), 1);
        }
    }

    proptest::proptest! {
        /// Satellite: columnar append + epoch swap round-trips to the exact
        /// legacy `Frame` sample order, across multiple collector segments
        /// and multiple arena ticks.
        #[test]
        fn prop_columnar_epoch_swap_round_trips_to_legacy_order(
            ticks in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(
                        (0u32..8, 0u32..64, -1.0e9f64..1.0e9),
                        0..40,
                    ),
                    1..4, // collector segments per tick
                ),
                1..5, // ticks
            ),
        ) {
            use proptest::prelude::*;
            let mut arena = FrameArena::new();
            let mut last: Option<Arc<ColumnFrame>>;
            for (t, segments) in ticks.iter().enumerate() {
                let ts = Ts(t as u64 * 60_000);
                let mut legacy = Frame::new(ts);
                let mut cf = arena.take_current(ts);
                for segment in segments {
                    // Parallel merge: each segment appends into its own
                    // part, then merges — same as the pool path.
                    let mut part = ColumnFrame::new(ts);
                    for &(m, n, v) in segment {
                        legacy.push(MetricId(m), CompId::node(n), v);
                        part.push(MetricId(m), CompId::node(n), v);
                    }
                    cf.append(&mut part);
                }
                let shared = arena.publish(cf);
                prop_assert_eq!(shared.to_frame(), legacy);
                prop_assert_eq!(&ColumnFrame::from_frame(&shared.to_frame()), &*shared);
                last = Some(shared); // held exactly one tick, like transport
                let _ = &last;
            }
        }
    }
}
