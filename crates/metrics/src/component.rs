//! Component identities.
//!
//! A large Cray-class system is a hierarchy: system → cabinets → chassis →
//! blades → nodes, with the high-speed network (links, routers), the parallel
//! filesystem (MDS, OSTs), per-node GPUs, services, and the datacenter
//! environment all observable.  [`CompId`] names any of these compactly
//! (8 bytes) so it can be used as a series key in the store.

use serde::{Deserialize, Serialize};

/// The kind of component a [`CompId`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CompKind {
    /// The whole system (aggregates, queue depth, total power).
    System,
    /// A cabinet (power envelope, cooling).
    Cabinet,
    /// A chassis within a cabinet.
    Chassis,
    /// A blade holding nodes and a router.
    Blade,
    /// A compute or service node.
    Node,
    /// A GPU attached to a node (index = global GPU id).
    Gpu,
    /// A high-speed-network link (index = global link id).
    Link,
    /// A high-speed-network router.
    Router,
    /// A Lustre-like object storage target.
    Ost,
    /// A Lustre-like metadata server.
    Mds,
    /// A batch job (per-job aggregated series).
    Job,
    /// The datacenter environment (temperature, corrosive gas, ...).
    Environment,
    /// A system service/daemon instance (index = service slot).
    Service,
    /// A burst-buffer node (fast checkpoint tier).
    BurstBuffer,
}

impl CompKind {
    /// All kinds, for coverage checks.
    pub const ALL: [CompKind; 14] = [
        CompKind::System,
        CompKind::Cabinet,
        CompKind::Chassis,
        CompKind::Blade,
        CompKind::Node,
        CompKind::Gpu,
        CompKind::Link,
        CompKind::Router,
        CompKind::Ost,
        CompKind::Mds,
        CompKind::Job,
        CompKind::Environment,
        CompKind::Service,
        CompKind::BurstBuffer,
    ];

    /// Short lowercase label used in topics and dashboards.
    pub fn label(self) -> &'static str {
        match self {
            CompKind::System => "system",
            CompKind::Cabinet => "cabinet",
            CompKind::Chassis => "chassis",
            CompKind::Blade => "blade",
            CompKind::Node => "node",
            CompKind::Gpu => "gpu",
            CompKind::Link => "link",
            CompKind::Router => "router",
            CompKind::Ost => "ost",
            CompKind::Mds => "mds",
            CompKind::Job => "job",
            CompKind::Environment => "env",
            CompKind::Service => "service",
            CompKind::BurstBuffer => "bb",
        }
    }
}

/// A compact component identifier: a kind plus an index within that kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompId {
    /// What kind of thing this is.
    pub kind: CompKind,
    /// Index within the kind's namespace (e.g. global node id).
    pub index: u32,
}

impl CompId {
    /// The singleton system-wide component.
    pub const SYSTEM: CompId = CompId { kind: CompKind::System, index: 0 };
    /// The singleton datacenter environment component.
    pub const ENVIRONMENT: CompId = CompId { kind: CompKind::Environment, index: 0 };

    /// A node by global index.
    pub fn node(index: u32) -> CompId {
        CompId { kind: CompKind::Node, index }
    }

    /// A cabinet by index.
    pub fn cabinet(index: u32) -> CompId {
        CompId { kind: CompKind::Cabinet, index }
    }

    /// A blade by global index.
    pub fn blade(index: u32) -> CompId {
        CompId { kind: CompKind::Blade, index }
    }

    /// A chassis by global index.
    pub fn chassis(index: u32) -> CompId {
        CompId { kind: CompKind::Chassis, index }
    }

    /// A GPU by global index.
    pub fn gpu(index: u32) -> CompId {
        CompId { kind: CompKind::Gpu, index }
    }

    /// An HSN link by global index.
    pub fn link(index: u32) -> CompId {
        CompId { kind: CompKind::Link, index }
    }

    /// An HSN router by global index.
    pub fn router(index: u32) -> CompId {
        CompId { kind: CompKind::Router, index }
    }

    /// An object storage target by index.
    pub fn ost(index: u32) -> CompId {
        CompId { kind: CompKind::Ost, index }
    }

    /// A metadata server by index.
    pub fn mds(index: u32) -> CompId {
        CompId { kind: CompKind::Mds, index }
    }

    /// A job, keyed by job id.
    pub fn job(index: u32) -> CompId {
        CompId { kind: CompKind::Job, index }
    }

    /// A service slot.
    pub fn service(index: u32) -> CompId {
        CompId { kind: CompKind::Service, index }
    }

    /// A burst-buffer node by index.
    pub fn bb(index: u32) -> CompId {
        CompId { kind: CompKind::BurstBuffer, index }
    }

    /// Render as `kind/index`, the canonical textual form (used in topics).
    pub fn path(&self) -> String {
        format!("{}/{}", self.kind.label(), self.index)
    }
}

impl std::fmt::Display for CompId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.kind.label(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn compact_size() {
        // Series keys are stored by the million; keep CompId at 8 bytes.
        assert_eq!(std::mem::size_of::<CompId>(), 8);
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(CompId::node(7).kind, CompKind::Node);
        assert_eq!(CompId::node(7).index, 7);
        assert_eq!(CompId::cabinet(3).kind, CompKind::Cabinet);
        assert_eq!(CompId::gpu(11).kind, CompKind::Gpu);
        assert_eq!(CompId::link(2).kind, CompKind::Link);
        assert_eq!(CompId::router(4).kind, CompKind::Router);
        assert_eq!(CompId::ost(1).kind, CompKind::Ost);
        assert_eq!(CompId::mds(0).kind, CompKind::Mds);
        assert_eq!(CompId::job(99).kind, CompKind::Job);
        assert_eq!(CompId::blade(5).kind, CompKind::Blade);
        assert_eq!(CompId::chassis(6).kind, CompKind::Chassis);
        assert_eq!(CompId::service(1).kind, CompKind::Service);
        assert_eq!(CompId::SYSTEM.kind, CompKind::System);
        assert_eq!(CompId::ENVIRONMENT.kind, CompKind::Environment);
    }

    #[test]
    fn labels_unique_and_nonempty() {
        let labels: HashSet<_> = CompKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), CompKind::ALL.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn display_matches_path() {
        let c = CompId::node(42);
        assert_eq!(c.path(), "node/42");
        assert_eq!(format!("{c}"), "node/42");
    }

    #[test]
    fn ordering_groups_by_kind() {
        // Sorting samples groups all nodes together, enabling cache-friendly
        // per-kind scans in the store.
        let mut v = vec![CompId::node(1), CompId::cabinet(9), CompId::node(0)];
        v.sort();
        assert_eq!(v, vec![CompId::cabinet(9), CompId::node(0), CompId::node(1)]);
    }

    #[test]
    fn serde_round_trip() {
        let c = CompId::link(123);
        let s = serde_json::to_string(&c).unwrap();
        let back: CompId = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
