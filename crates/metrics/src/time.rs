//! Simulation timestamps.
//!
//! All monitoring data in `hpcmon` is stamped with a [`Ts`]: milliseconds
//! since the start of the simulated epoch.  Using a single integer clock
//! domain is itself one of the paper's lessons — "a single global timestamp"
//! is what makes cross-component association tractable; per-node clock drift
//! is modelled explicitly in `hpcmon-sim` on top of this type rather than by
//! having multiple incompatible time representations.

use serde::{Deserialize, Serialize};

/// Milliseconds in one second.
pub const SECOND_MS: u64 = 1_000;
/// Milliseconds in one minute (the NCSA collection interval).
pub const MINUTE_MS: u64 = 60 * SECOND_MS;

/// A timestamp: milliseconds since simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ts(pub u64);

/// A signed duration between two timestamps, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TsDelta(pub i64);

impl Ts {
    /// The simulation epoch.
    pub const ZERO: Ts = Ts(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Ts {
        Ts(s * SECOND_MS)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Ts {
        Ts(m * MINUTE_MS)
    }

    /// Whole seconds since epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / SECOND_MS
    }

    /// Fractional seconds since epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND_MS as f64
    }

    /// Fractional minutes since epoch.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MINUTE_MS as f64
    }

    /// Saturating addition of a number of milliseconds.
    pub fn add_ms(self, ms: u64) -> Ts {
        Ts(self.0.saturating_add(ms))
    }

    /// Saturating subtraction of a number of milliseconds.
    pub fn sub_ms(self, ms: u64) -> Ts {
        Ts(self.0.saturating_sub(ms))
    }

    /// Signed difference `self - other`.
    pub fn delta(self, other: Ts) -> TsDelta {
        TsDelta(self.0 as i64 - other.0 as i64)
    }

    /// Round down to a multiple of `interval_ms`.  Used by the synchronized
    /// collection scheduler to align ticks system-wide.
    pub fn align_down(self, interval_ms: u64) -> Ts {
        assert!(interval_ms > 0, "alignment interval must be positive");
        Ts(self.0 - self.0 % interval_ms)
    }

    /// Round up to a multiple of `interval_ms`.
    pub fn align_up(self, interval_ms: u64) -> Ts {
        assert!(interval_ms > 0, "alignment interval must be positive");
        let down = self.align_down(interval_ms);
        if down == self {
            self
        } else {
            down.add_ms(interval_ms)
        }
    }

    /// Render as `HHH:MM:SS` for dashboards.
    pub fn display_hms(self) -> String {
        let s = self.as_secs();
        format!("{:03}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
    }
}

impl TsDelta {
    /// Absolute magnitude in milliseconds.
    pub fn abs_ms(self) -> u64 {
        self.0.unsigned_abs()
    }

    /// Signed fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND_MS as f64
    }
}

impl std::ops::Add<TsDelta> for Ts {
    type Output = Ts;
    fn add(self, rhs: TsDelta) -> Ts {
        if rhs.0 >= 0 {
            self.add_ms(rhs.0 as u64)
        } else {
            self.sub_ms(rhs.0.unsigned_abs())
        }
    }
}

impl std::fmt::Display for Ts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.display_hms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(Ts::from_secs(90).0, 90_000);
        assert_eq!(Ts::from_mins(2).0, 120_000);
        assert_eq!(Ts::from_secs(90).as_secs(), 90);
        assert!((Ts(1_500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Ts::from_mins(3).as_mins_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn alignment() {
        let t = Ts(61_234);
        assert_eq!(t.align_down(MINUTE_MS), Ts(60_000));
        assert_eq!(t.align_up(MINUTE_MS), Ts(120_000));
        // Already aligned values stay put in both directions.
        let a = Ts(120_000);
        assert_eq!(a.align_down(MINUTE_MS), a);
        assert_eq!(a.align_up(MINUTE_MS), a);
        assert_eq!(Ts::ZERO.align_down(MINUTE_MS), Ts::ZERO);
    }

    #[test]
    #[should_panic(expected = "alignment interval")]
    fn zero_alignment_panics() {
        Ts(5).align_down(0);
    }

    #[test]
    fn deltas_are_signed() {
        let a = Ts(1_000);
        let b = Ts(4_000);
        assert_eq!(b.delta(a), TsDelta(3_000));
        assert_eq!(a.delta(b), TsDelta(-3_000));
        assert_eq!(a.delta(b).abs_ms(), 3_000);
        assert_eq!(a + TsDelta(500), Ts(1_500));
        assert_eq!(a + TsDelta(-500), Ts(500));
        // Negative deltas saturate at the epoch.
        assert_eq!(a + TsDelta(-5_000), Ts::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(Ts(10).sub_ms(100), Ts::ZERO);
        assert_eq!(Ts(u64::MAX).add_ms(1), Ts(u64::MAX));
    }

    #[test]
    fn display_format() {
        assert_eq!(Ts::from_secs(3_661).display_hms(), "001:01:01");
        assert_eq!(format!("{}", Ts::ZERO), "000:00:00");
    }
}
