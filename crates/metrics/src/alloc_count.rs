//! Allocation-counting harness (behind the test-only `alloc-count` feature).
//!
//! A thin wrapper over the system allocator that counts every allocation
//! and reallocation — globally and per thread — so benches and regression
//! tests can assert that a hot path is allocation-free without guessing
//! from throughput numbers.
//!
//! Install it in a test or bench **binary** (never in library code):
//!
//! ```ignore
//! use hpcmon_metrics::alloc_count::CountingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let before = hpcmon_metrics::alloc_count::thread_allocations();
//! hot_path();
//! assert_eq!(hpcmon_metrics::alloc_count::thread_allocations(), before);
//! ```
//!
//! The per-thread counter is what regression tests should use: test
//! binaries run many tests concurrently, and only the current thread's
//! count isolates the code under measurement.  The counter is
//! const-initialized thread-local state, so reading it never allocates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// A [`GlobalAlloc`] that counts allocations (and reallocations) before
/// delegating to the system allocator.  Frees are not counted: the signal
/// of interest is "how many times did this path hit the allocator".
pub struct CountingAllocator;

impl CountingAllocator {
    #[inline]
    fn count(&self) {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        // `try_with`: the TLS slot may already be torn down during thread
        // exit, and allocations from destructors must not panic.
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

// SAFETY: pure pass-through to `System` plus counter updates that never
// allocate (atomics and const-initialized TLS).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.count();
        System.alloc_zeroed(layout)
    }
}

/// Total allocations observed process-wide since start.  Meaningful only
/// when [`CountingAllocator`] is installed as the global allocator.
pub fn total_allocations() -> u64 {
    GLOBAL_ALLOCS.load(Ordering::Relaxed)
}

/// Allocations observed on the **current thread** since it started.  The
/// right counter for regression tests: concurrent test threads do not
/// pollute it.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
}
