//! Batch job records.
//!
//! Per-job analysis "requires storing and extraction of job allocations and
//! timeframes" (paper, §III-B).  [`JobRecord`] is that stored allocation:
//! it is what lets Figure 4's drill-down attribute an I/O spike to a job and
//! Figure 5's per-job panels select the right nodes and time window.

use crate::{CompId, Ts};
use serde::{Deserialize, Serialize};

/// Job identifier (dense, assigned by the scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the batch queue.
    Queued,
    /// Running on an allocation.
    Running,
    /// Finished successfully.
    Completed,
    /// Terminated by failure (its own or a node's).
    Failed,
    /// Killed before start by a failed pre-job health check (CSCS gating).
    RejectedByHealthCheck,
}

impl JobState {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::RejectedByHealthCheck)
    }
}

/// A job's allocation and timeframe, as stored for later attribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Scheduler-assigned id.
    pub id: JobId,
    /// Owning user (for access-controlled data exposure).
    pub user: String,
    /// Human-readable application name.
    pub name: String,
    /// Global node indices allocated to the job.
    pub nodes: Vec<u32>,
    /// Submission time.
    pub submit: Ts,
    /// Start of execution (`None` while queued or if rejected).
    pub start: Option<Ts>,
    /// End of execution (`None` while running).
    pub end: Option<Ts>,
    /// Current state.
    pub state: JobState,
}

impl JobRecord {
    /// A freshly submitted job.
    pub fn submitted(
        id: JobId,
        user: impl Into<String>,
        name: impl Into<String>,
        nodes: Vec<u32>,
        submit: Ts,
    ) -> JobRecord {
        JobRecord {
            id,
            user: user.into(),
            name: name.into(),
            nodes,
            submit,
            start: None,
            end: None,
            state: JobState::Queued,
        }
    }

    /// The job's component id for per-job series.
    pub fn comp(&self) -> CompId {
        CompId::job(self.id.0)
    }

    /// Whether the job was running (inclusive start, exclusive end) at `ts`.
    pub fn running_at(&self, ts: Ts) -> bool {
        match (self.start, self.end) {
            (Some(s), Some(e)) => ts >= s && ts < e,
            (Some(s), None) => ts >= s && self.state == JobState::Running,
            _ => false,
        }
    }

    /// Whether the job's allocation includes `node`.
    pub fn uses_node(&self, node: u32) -> bool {
        self.nodes.contains(&node)
    }

    /// Wall-clock runtime, if the job both started and ended.
    pub fn runtime_ms(&self) -> Option<u64> {
        match (self.start, self.end) {
            (Some(s), Some(e)) if e >= s => Some(e.0 - s.0),
            _ => None,
        }
    }

    /// Queue wait time: submission until start (if started).
    pub fn wait_ms(&self) -> Option<u64> {
        self.start.map(|s| s.0.saturating_sub(self.submit.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> JobRecord {
        JobRecord::submitted(JobId(1), "alice", "lammps", vec![0, 1, 2], Ts(100))
    }

    #[test]
    fn fresh_job_is_queued() {
        let j = job();
        assert_eq!(j.state, JobState::Queued);
        assert!(!j.state.is_terminal());
        assert!(!j.running_at(Ts(150)));
        assert_eq!(j.runtime_ms(), None);
        assert_eq!(j.wait_ms(), None);
    }

    #[test]
    fn running_window_is_half_open() {
        let mut j = job();
        j.start = Some(Ts(200));
        j.end = Some(Ts(300));
        j.state = JobState::Completed;
        assert!(!j.running_at(Ts(199)));
        assert!(j.running_at(Ts(200)));
        assert!(j.running_at(Ts(299)));
        assert!(!j.running_at(Ts(300)));
        assert_eq!(j.runtime_ms(), Some(100));
        assert_eq!(j.wait_ms(), Some(100));
    }

    #[test]
    fn open_ended_running_job() {
        let mut j = job();
        j.start = Some(Ts(200));
        j.state = JobState::Running;
        assert!(j.running_at(Ts(10_000)));
        assert_eq!(j.runtime_ms(), None);
    }

    #[test]
    fn node_membership() {
        let j = job();
        assert!(j.uses_node(1));
        assert!(!j.uses_node(5));
    }

    #[test]
    fn terminal_states() {
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::RejectedByHealthCheck.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(!JobState::Queued.is_terminal());
    }

    #[test]
    fn comp_id_uses_job_id() {
        assert_eq!(job().comp(), CompId::job(1));
    }

    #[test]
    fn serde_round_trip() {
        let j = job();
        let s = serde_json::to_string(&j).unwrap();
        let back: JobRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
