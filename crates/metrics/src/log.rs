//! Textual events: log records and severities.
//!
//! The paper's sites passively collect "all pertinent log messages ... as
//! they asynchronously occur" and then struggle with per-vendor formats
//! (ALCF: ≥20 per-day files, varying time formats, multi-line and binary
//! records).  `hpcmon` normalizes everything to [`LogRecord`] at the
//! harvester boundary so downstream analysis sees one shape.

use crate::{CompId, Ts};
use serde::{Deserialize, Serialize};

/// Syslog-style severity, ordered from least to most severe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(u8)]
pub enum Severity {
    /// Debug chatter.
    Debug,
    /// Routine information.
    #[default]
    Info,
    /// Notable but non-failing condition.
    Notice,
    /// Something degraded.
    Warning,
    /// A component failed.
    Error,
    /// A subsystem is unusable.
    Critical,
}

impl Severity {
    /// All severities in ascending order.
    pub const ALL: [Severity; 6] = [
        Severity::Debug,
        Severity::Info,
        Severity::Notice,
        Severity::Warning,
        Severity::Error,
        Severity::Critical,
    ];

    /// Uppercase label as it appears in rendered log lines.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Notice => "NOTICE",
            Severity::Warning => "WARN",
            Severity::Error => "ERROR",
            Severity::Critical => "CRIT",
        }
    }

    /// Parse a label produced by [`Severity::label`].
    pub fn parse(s: &str) -> Option<Severity> {
        Severity::ALL.iter().copied().find(|sev| sev.label() == s)
    }
}

/// A normalized log/event record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// When the event occurred (source-local clock; may drift).
    pub ts: Ts,
    /// Which component emitted it.
    pub comp: CompId,
    /// Severity.
    pub severity: Severity,
    /// Source subsystem, e.g. `hsn`, `fs`, `console`, `hwerr`, `sched`.
    pub source: String,
    /// The message text.
    pub message: String,
    /// Stable template id when the message came from a known generator;
    /// `None` for free-form text.  Novelty detection keys off this.
    pub template: Option<u32>,
}

impl LogRecord {
    /// Construct a free-form record.
    pub fn new(
        ts: Ts,
        comp: CompId,
        severity: Severity,
        source: impl Into<String>,
        message: impl Into<String>,
    ) -> LogRecord {
        LogRecord {
            ts,
            comp,
            severity,
            source: source.into(),
            message: message.into(),
            template: None,
        }
    }

    /// Attach a template id.
    pub fn with_template(mut self, template: u32) -> LogRecord {
        self.template = Some(template);
        self
    }

    /// Render in the canonical single-line transport format:
    /// `<ts_ms> <severity> <comp> <source>: <message>`.
    pub fn render(&self) -> String {
        format!(
            "{} {} {} {}: {}",
            self.ts.0,
            self.severity.label(),
            self.comp.path(),
            self.source,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warning < Severity::Error);
        assert!(Severity::Error < Severity::Critical);
    }

    #[test]
    fn severity_label_round_trip() {
        for sev in Severity::ALL {
            assert_eq!(Severity::parse(sev.label()), Some(sev));
        }
        assert_eq!(Severity::parse("nonsense"), None);
    }

    #[test]
    fn record_construction_and_template() {
        let r = LogRecord::new(Ts(10), CompId::node(3), Severity::Error, "hsn", "link down")
            .with_template(7);
        assert_eq!(r.template, Some(7));
        assert_eq!(r.severity, Severity::Error);
        assert_eq!(r.source, "hsn");
    }

    #[test]
    fn render_format() {
        let r = LogRecord::new(Ts(1500), CompId::link(4), Severity::Warning, "hsn", "crc retry");
        assert_eq!(r.render(), "1500 WARN link/4 hsn: crc retry");
    }

    #[test]
    fn serde_round_trip() {
        let r = LogRecord::new(Ts(9), CompId::SYSTEM, Severity::Notice, "sched", "queue drained");
        let s = serde_json::to_string(&r).unwrap();
        let back: LogRecord = serde_json::from_str(&s).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn default_severity_is_info() {
        assert_eq!(Severity::default(), Severity::Info);
    }
}
