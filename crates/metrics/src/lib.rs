#![warn(missing_docs)]

//! Shared data model for the `hpcmon` monitoring framework.
//!
//! Every other crate in the workspace speaks in terms of the types defined
//! here: [`Ts`] timestamps, [`CompId`] component identities, [`MetricId`]
//! interned metric names, [`Sample`] numeric observations, [`LogRecord`]
//! textual events, and [`JobRecord`] workload allocations.
//!
//! The paper (*Large-Scale System Monitoring Experiences and
//! Recommendations*, CLUSTER 2018) stresses that monitoring data spans
//! "event, text, numeric time series" and must be associated across
//! components and time (Table I).  This crate is the single vocabulary that
//! makes that association possible: one timestamp type, one component
//! namespace, one metric namespace.

#[cfg(feature = "alloc-count")]
pub mod alloc_count;
pub mod arena;
pub mod component;
pub mod hash;
pub mod job;
pub mod log;
pub mod metric;
pub mod sample;
pub mod time;

pub use arena::{ColumnFrame, FrameArena, Mutability};
pub use component::{CompId, CompKind};
pub use hash::StateHash;
pub use job::{JobId, JobRecord, JobState};
pub use log::{LogRecord, Severity};
pub use metric::{MetricId, MetricMeta, MetricRegistry, Unit};
pub use sample::{Frame, FrameCoverage, Sample, SeriesKey};
pub use time::{Ts, TsDelta, MINUTE_MS, SECOND_MS};
