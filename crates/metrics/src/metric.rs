//! Metric names and the metric registry.
//!
//! Metric names are interned to [`MetricId`]s (u32) so samples stay small
//! and series lookups are integer comparisons.  The registry also carries
//! [`MetricMeta`] — units and a human description — because Table I of the
//! paper requires that "the meaning of all raw data should be provided";
//! an id without documented semantics is exactly the vendor failure mode
//! the sites complain about.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Interned metric name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MetricId(pub u32);

/// Engineering unit of a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Dimensionless count.
    Count,
    /// Ratio in `[0, 1]`.
    Ratio,
    /// Percent in `[0, 100]`.
    Percent,
    /// Bytes.
    Bytes,
    /// Bytes per second.
    BytesPerSec,
    /// Seconds.
    Seconds,
    /// Milliseconds.
    Millis,
    /// Watts.
    Watts,
    /// Degrees Celsius.
    Celsius,
    /// Operations per second.
    OpsPerSec,
    /// Parts per billion (corrosive gas concentration).
    Ppb,
    /// Bit errors per second on a link.
    ErrorsPerSec,
}

impl Unit {
    /// Short suffix for chart axes.
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::Count => "",
            Unit::Ratio => "ratio",
            Unit::Percent => "%",
            Unit::Bytes => "B",
            Unit::BytesPerSec => "B/s",
            Unit::Seconds => "s",
            Unit::Millis => "ms",
            Unit::Watts => "W",
            Unit::Celsius => "degC",
            Unit::OpsPerSec => "op/s",
            Unit::Ppb => "ppb",
            Unit::ErrorsPerSec => "err/s",
        }
    }
}

/// Descriptive metadata registered alongside a metric name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricMeta {
    /// Canonical dotted name, e.g. `hsn.link.bandwidth_pct`.
    pub name: String,
    /// Engineering unit.
    pub unit: Unit,
    /// What the raw value means and how it may be combined — the
    /// documentation requirement from Table I.
    pub description: String,
}

#[derive(Default)]
struct Inner {
    by_name: HashMap<String, MetricId>,
    metas: Vec<MetricMeta>,
}

/// Thread-safe interner from metric names to [`MetricId`]s.
///
/// Cloning is cheap (it is an `Arc`); all clones share the same table, so a
/// collector thread and a query thread agree on ids.
#[derive(Clone, Default)]
pub struct MetricRegistry {
    inner: Arc<RwLock<Inner>>,
}

impl MetricRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a metric with full metadata.  Re-registering an
    /// existing name returns the original id and keeps the first metadata.
    pub fn register(&self, name: &str, unit: Unit, description: &str) -> MetricId {
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_name.get(name) {
            return id;
        }
        let id = MetricId(inner.metas.len() as u32);
        inner.by_name.insert(name.to_owned(), id);
        inner.metas.push(MetricMeta {
            name: name.to_owned(),
            unit,
            description: description.to_owned(),
        });
        id
    }

    /// Look up an id by exact name.
    pub fn lookup(&self, name: &str) -> Option<MetricId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Metadata for an id, if registered.
    pub fn meta(&self, id: MetricId) -> Option<MetricMeta> {
        self.inner.read().metas.get(id.0 as usize).cloned()
    }

    /// Canonical name for an id, or `metric/<raw>` for unknown ids.
    pub fn name(&self, id: MetricId) -> String {
        self.meta(id).map(|m| m.name).unwrap_or_else(|| format!("metric/{}", id.0))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.read().metas.len()
    }

    /// Whether no metrics have been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all metadata, in id order (for documentation export).
    pub fn all(&self) -> Vec<MetricMeta> {
        self.inner.read().metas.clone()
    }
}

impl std::fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricRegistry").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let reg = MetricRegistry::new();
        let id = reg.register("node.cpu_util", Unit::Percent, "CPU busy fraction");
        assert_eq!(reg.lookup("node.cpu_util"), Some(id));
        assert_eq!(reg.lookup("nope"), None);
        let meta = reg.meta(id).unwrap();
        assert_eq!(meta.name, "node.cpu_util");
        assert_eq!(meta.unit, Unit::Percent);
    }

    #[test]
    fn reregister_is_idempotent() {
        let reg = MetricRegistry::new();
        let a = reg.register("m", Unit::Count, "first");
        let b = reg.register("m", Unit::Watts, "second");
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
        // First metadata wins.
        assert_eq!(reg.meta(a).unwrap().unit, Unit::Count);
    }

    #[test]
    fn ids_are_dense() {
        let reg = MetricRegistry::new();
        let a = reg.register("a", Unit::Count, "");
        let b = reg.register("b", Unit::Count, "");
        assert_eq!(a, MetricId(0));
        assert_eq!(b, MetricId(1));
    }

    #[test]
    fn unknown_id_name_is_stable() {
        let reg = MetricRegistry::new();
        assert_eq!(reg.name(MetricId(7)), "metric/7");
    }

    #[test]
    fn clones_share_table() {
        let reg = MetricRegistry::new();
        let clone = reg.clone();
        let id = reg.register("shared", Unit::Count, "");
        assert_eq!(clone.lookup("shared"), Some(id));
    }

    #[test]
    fn concurrent_registration_is_consistent() {
        let reg = MetricRegistry::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..100 {
                    ids.push(reg.register(&format!("m{}", i), Unit::Count, ""));
                    let _ = t; // thread index is irrelevant to the names
                }
                ids
            }));
        }
        let all: Vec<Vec<MetricId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Every thread must observe the same name->id mapping.
        for ids in &all[1..] {
            assert_eq!(ids, &all[0]);
        }
        assert_eq!(reg.len(), 100);
    }

    #[test]
    fn all_returns_in_id_order() {
        let reg = MetricRegistry::new();
        reg.register("x", Unit::Count, "");
        reg.register("y", Unit::Watts, "");
        let metas = reg.all();
        assert_eq!(metas[0].name, "x");
        assert_eq!(metas[1].name, "y");
    }

    #[test]
    fn unit_suffixes_defined() {
        // Axis labels must never be missing for dimensioned units.
        for u in [
            Unit::Percent,
            Unit::Bytes,
            Unit::BytesPerSec,
            Unit::Seconds,
            Unit::Millis,
            Unit::Watts,
            Unit::Celsius,
            Unit::OpsPerSec,
            Unit::Ppb,
            Unit::ErrorsPerSec,
            Unit::Ratio,
        ] {
            assert!(!u.suffix().is_empty());
        }
        assert_eq!(Unit::Count.suffix(), "");
    }
}
