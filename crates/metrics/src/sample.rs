//! Numeric observations: samples, series keys, and synchronized frames.

use crate::{CompId, MetricId, Ts};
use serde::{Deserialize, Serialize};

/// The identity of a time series: which metric on which component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Which metric.
    pub metric: MetricId,
    /// Which component it was observed on.
    pub comp: CompId,
}

impl SeriesKey {
    /// Construct a series key.
    pub fn new(metric: MetricId, comp: CompId) -> SeriesKey {
        SeriesKey { metric, comp }
    }
}

/// One numeric observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Series identity.
    pub key: SeriesKey,
    /// When it was observed (collector-side timestamp).
    pub ts: Ts,
    /// The observed value.
    pub value: f64,
}

impl Sample {
    /// Construct a sample.
    pub fn new(metric: MetricId, comp: CompId, ts: Ts, value: f64) -> Sample {
        Sample { key: SeriesKey::new(metric, comp), ts, value }
    }
}

/// Which collectors actually contributed to a frame.
///
/// Two bitmaps indexed by collector registration slot (supports up to 64
/// collectors): `expected` marks collectors that should have reported —
/// those that have ever produced samples — and `reported` marks those that
/// did this tick.  Downstream analysis uses this to *skip* missing
/// segments instead of zero-filling them, and the self feed exports the
/// ratio as `hpcmon.self.frame.coverage_pct`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameCoverage {
    /// Bitmap of collector slots expected to report.
    pub expected: u64,
    /// Bitmap of collector slots that reported this tick.
    pub reported: u64,
}

impl FrameCoverage {
    /// Mark slot `slot` as expected to report (slots ≥ 64 are ignored).
    pub fn expect(&mut self, slot: usize) {
        if slot < 64 {
            self.expected |= 1 << slot;
        }
    }

    /// Mark slot `slot` as having reported (slots ≥ 64 are ignored).
    pub fn report(&mut self, slot: usize) {
        if slot < 64 {
            self.reported |= 1 << slot;
        }
    }

    /// Whether an expected slot reported.  Unexpected slots count as
    /// covered — a collector with legitimately nothing to say is not a gap.
    pub fn covered(&self, slot: usize) -> bool {
        if slot >= 64 {
            return true;
        }
        let bit = 1u64 << slot;
        self.expected & bit == 0 || self.reported & bit != 0
    }

    /// Expected slots that failed to report, ascending.
    pub fn missing(&self) -> Vec<usize> {
        (0..64).filter(|&s| self.expected & (1 << s) != 0 && !self.covered(s)).collect()
    }

    /// Percentage of expected slots that reported, in `[0, 100]`.  An empty
    /// expectation is full coverage.
    pub fn pct(&self) -> f64 {
        let expected = self.expected.count_ones();
        if expected == 0 {
            return 100.0;
        }
        let hit = (self.expected & self.reported).count_ones();
        hit as f64 * 100.0 / expected as f64
    }

    /// Whether every expected slot reported.
    pub fn is_full(&self) -> bool {
        self.expected & !self.reported == 0
    }
}

/// A synchronized collection frame: every sample gathered at one aligned
/// system-wide tick (the NCSA pattern — "collection times are synchronized
/// across the entire system").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The aligned tick this frame belongs to.
    pub ts: Ts,
    /// All samples collected at this tick.
    pub samples: Vec<Sample>,
    /// Which collectors contributed (`None` on frames produced before the
    /// supervised pipeline stamps coverage, and in legacy serialized form).
    pub coverage: Option<FrameCoverage>,
}

impl Frame {
    /// An empty frame at `ts`.
    pub fn new(ts: Ts) -> Frame {
        Frame { ts, samples: Vec::new(), coverage: None }
    }

    /// Append a sample, stamping it with the frame's tick.
    pub fn push(&mut self, metric: MetricId, comp: CompId, value: f64) {
        self.samples.push(Sample::new(metric, comp, self.ts, value));
    }

    /// Number of samples in the frame.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the frame holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterate over samples of one metric.
    pub fn of_metric(&self, metric: MetricId) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.key.metric == metric)
    }

    /// Sum of values for one metric across all components in the frame.
    pub fn sum_of(&self, metric: MetricId) -> f64 {
        self.of_metric(metric).map(|s| s.value).sum()
    }

    /// Mean of values for one metric, or `None` if absent.
    pub fn mean_of(&self, metric: MetricId) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for s in self.of_metric(metric) {
            n += 1;
            sum += s.value;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(n: u32) -> MetricId {
        MetricId(n)
    }

    #[test]
    fn sample_construction() {
        let s = Sample::new(mid(1), CompId::node(2), Ts(30), 4.5);
        assert_eq!(s.key.metric, mid(1));
        assert_eq!(s.key.comp, CompId::node(2));
        assert_eq!(s.ts, Ts(30));
        assert_eq!(s.value, 4.5);
    }

    #[test]
    fn frame_push_stamps_tick() {
        let mut f = Frame::new(Ts::from_mins(1));
        f.push(mid(0), CompId::node(0), 1.0);
        f.push(mid(0), CompId::node(1), 3.0);
        assert_eq!(f.len(), 2);
        assert!(f.samples.iter().all(|s| s.ts == Ts::from_mins(1)));
    }

    #[test]
    fn frame_aggregates() {
        let mut f = Frame::new(Ts(0));
        f.push(mid(0), CompId::node(0), 1.0);
        f.push(mid(0), CompId::node(1), 3.0);
        f.push(mid(1), CompId::node(0), 100.0);
        assert_eq!(f.sum_of(mid(0)), 4.0);
        assert_eq!(f.mean_of(mid(0)), Some(2.0));
        assert_eq!(f.sum_of(mid(1)), 100.0);
        assert_eq!(f.mean_of(mid(9)), None);
        assert_eq!(f.of_metric(mid(0)).count(), 2);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new(Ts(0));
        assert!(f.is_empty());
        assert_eq!(f.sum_of(mid(0)), 0.0);
        assert_eq!(f.mean_of(mid(0)), None);
    }

    #[test]
    fn series_key_ordering_is_metric_major() {
        let a = SeriesKey::new(mid(0), CompId::node(9));
        let b = SeriesKey::new(mid(1), CompId::node(0));
        assert!(a < b);
    }

    #[test]
    fn serde_round_trip() {
        let mut f = Frame::new(Ts(5));
        f.push(mid(2), CompId::ost(1), 9.25);
        let mut cov = FrameCoverage::default();
        cov.expect(0);
        cov.report(0);
        cov.expect(3);
        f.coverage = Some(cov);
        let s = serde_json::to_string(&f).unwrap();
        let back: Frame = serde_json::from_str(&s).unwrap();
        assert_eq!(f, back);
    }

    #[test]
    fn legacy_frame_without_coverage_deserializes_as_none() {
        let json = r#"{"ts":5,"samples":[]}"#;
        let back: Frame = serde_json::from_str(json).unwrap();
        assert_eq!(back.coverage, None);
        assert_eq!(back.ts, Ts(5));
    }

    #[test]
    fn coverage_pct_and_missing() {
        let mut cov = FrameCoverage::default();
        assert_eq!(cov.pct(), 100.0, "no expectations is full coverage");
        assert!(cov.is_full());
        cov.expect(0);
        cov.expect(2);
        cov.expect(5);
        cov.report(0);
        cov.report(5);
        assert_eq!(cov.missing(), vec![2]);
        assert!(!cov.is_full());
        assert!(!cov.covered(2));
        assert!(cov.covered(0));
        assert!(cov.covered(1), "unexpected slot counts as covered");
        assert!((cov.pct() - 200.0 / 3.0).abs() < 1e-9);
        cov.report(2);
        assert_eq!(cov.pct(), 100.0);
        assert!(cov.is_full());
        // Out-of-range slots are ignored, not a panic.
        cov.expect(64);
        cov.report(200);
        assert!(cov.covered(64));
        assert_eq!(cov.pct(), 100.0);
    }
}
