//! Numeric observations: samples, series keys, and synchronized frames.

use crate::{CompId, MetricId, Ts};
use serde::{Deserialize, Serialize};

/// The identity of a time series: which metric on which component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeriesKey {
    /// Which metric.
    pub metric: MetricId,
    /// Which component it was observed on.
    pub comp: CompId,
}

impl SeriesKey {
    /// Construct a series key.
    pub fn new(metric: MetricId, comp: CompId) -> SeriesKey {
        SeriesKey { metric, comp }
    }
}

/// One numeric observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Series identity.
    pub key: SeriesKey,
    /// When it was observed (collector-side timestamp).
    pub ts: Ts,
    /// The observed value.
    pub value: f64,
}

impl Sample {
    /// Construct a sample.
    pub fn new(metric: MetricId, comp: CompId, ts: Ts, value: f64) -> Sample {
        Sample { key: SeriesKey::new(metric, comp), ts, value }
    }
}

/// A synchronized collection frame: every sample gathered at one aligned
/// system-wide tick (the NCSA pattern — "collection times are synchronized
/// across the entire system").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// The aligned tick this frame belongs to.
    pub ts: Ts,
    /// All samples collected at this tick.
    pub samples: Vec<Sample>,
}

impl Frame {
    /// An empty frame at `ts`.
    pub fn new(ts: Ts) -> Frame {
        Frame { ts, samples: Vec::new() }
    }

    /// Append a sample, stamping it with the frame's tick.
    pub fn push(&mut self, metric: MetricId, comp: CompId, value: f64) {
        self.samples.push(Sample::new(metric, comp, self.ts, value));
    }

    /// Number of samples in the frame.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the frame holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterate over samples of one metric.
    pub fn of_metric(&self, metric: MetricId) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.key.metric == metric)
    }

    /// Sum of values for one metric across all components in the frame.
    pub fn sum_of(&self, metric: MetricId) -> f64 {
        self.of_metric(metric).map(|s| s.value).sum()
    }

    /// Mean of values for one metric, or `None` if absent.
    pub fn mean_of(&self, metric: MetricId) -> Option<f64> {
        let mut n = 0usize;
        let mut sum = 0.0;
        for s in self.of_metric(metric) {
            n += 1;
            sum += s.value;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid(n: u32) -> MetricId {
        MetricId(n)
    }

    #[test]
    fn sample_construction() {
        let s = Sample::new(mid(1), CompId::node(2), Ts(30), 4.5);
        assert_eq!(s.key.metric, mid(1));
        assert_eq!(s.key.comp, CompId::node(2));
        assert_eq!(s.ts, Ts(30));
        assert_eq!(s.value, 4.5);
    }

    #[test]
    fn frame_push_stamps_tick() {
        let mut f = Frame::new(Ts::from_mins(1));
        f.push(mid(0), CompId::node(0), 1.0);
        f.push(mid(0), CompId::node(1), 3.0);
        assert_eq!(f.len(), 2);
        assert!(f.samples.iter().all(|s| s.ts == Ts::from_mins(1)));
    }

    #[test]
    fn frame_aggregates() {
        let mut f = Frame::new(Ts(0));
        f.push(mid(0), CompId::node(0), 1.0);
        f.push(mid(0), CompId::node(1), 3.0);
        f.push(mid(1), CompId::node(0), 100.0);
        assert_eq!(f.sum_of(mid(0)), 4.0);
        assert_eq!(f.mean_of(mid(0)), Some(2.0));
        assert_eq!(f.sum_of(mid(1)), 100.0);
        assert_eq!(f.mean_of(mid(9)), None);
        assert_eq!(f.of_metric(mid(0)).count(), 2);
    }

    #[test]
    fn empty_frame() {
        let f = Frame::new(Ts(0));
        assert!(f.is_empty());
        assert_eq!(f.sum_of(mid(0)), 0.0);
        assert_eq!(f.mean_of(mid(0)), None);
    }

    #[test]
    fn series_key_ordering_is_metric_major() {
        let a = SeriesKey::new(mid(0), CompId::node(9));
        let b = SeriesKey::new(mid(1), CompId::node(0));
        assert!(a < b);
    }

    #[test]
    fn serde_round_trip() {
        let mut f = Frame::new(Ts(5));
        f.push(mid(2), CompId::ost(1), 9.25);
        let s = serde_json::to_string(&f).unwrap();
        let back: Frame = serde_json::from_str(&s).unwrap();
        assert_eq!(f, back);
    }
}
