//! Order-sensitive 64-bit state digests for the flight recorder.
//!
//! Replay verification compares per-tick digests of live subsystem state
//! against the recorded stream, so the hash must be (a) identical across
//! worker counts and platforms, (b) cheap enough to run every tick over
//! thousands of samples — one multiply-xor round per 64-bit word, not
//! byte-at-a-time — and (c) stable within an event-log format version
//! (recorded hashes are only ever compared against hashes recomputed by
//! the same code).  Cryptographic strength is not a goal (logs are
//! trusted local artifacts).

/// Streaming word-mixing digest builder with a SplitMix64 finalizer.
///
/// Field order matters: callers must feed fields in a fixed order so the
/// same state always produces the same digest.
///
/// Words round-robin across four independent accumulator lanes merged at
/// [`StateHash::finish`]: a single chained accumulator serializes on the
/// multiply's latency (~6-8 cycles per word), while four lanes keep the
/// multiplier pipeline full.  Order still matters — a word's lane is its
/// absolute position mod 4, so swapping two adjacent words changes two
/// lanes — and the total count is folded at finish so zero-padding can't
/// alias.
#[derive(Debug, Clone)]
pub struct StateHash {
    lanes: [u64; 4],
    count: u64,
}

const SEED_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const MIX_MUL: u64 = 0xA076_1D64_78BD_642F;
const CHAIN_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

impl StateHash {
    /// Fresh digest, domain-separated by `tag` so sub-hashes of different
    /// subsystems never collide by construction.
    pub fn new(tag: u64) -> StateHash {
        let seed = SEED_OFFSET ^ tag.wrapping_mul(CHAIN_MUL);
        StateHash {
            lanes: [
                seed,
                seed.wrapping_add(MIX_MUL),
                seed.wrapping_add(MIX_MUL.wrapping_mul(2)),
                seed.wrapping_add(MIX_MUL.wrapping_mul(3)),
            ],
            count: 0,
        }
    }

    /// Mix one 64-bit word: pre-scramble it (multiply + xor-shift,
    /// wyhash-style), then fold into the next lane (xor-multiply-rotate).
    /// This path runs over every frame sample and simulator field every
    /// tick when the flight recorder is on — it replaced byte-wise FNV-1a
    /// (~8x more multiplies, all serialized) to hold the recorder's ≤5%
    /// tick-overhead budget.
    #[inline]
    pub fn u64(&mut self, v: u64) -> &mut Self {
        let mut x = v.wrapping_mul(MIX_MUL);
        x ^= x >> 32;
        let lane = &mut self.lanes[(self.count & 3) as usize];
        *lane = (*lane ^ x).wrapping_mul(CHAIN_MUL).rotate_left(23);
        self.count += 1;
        self
    }

    /// Mix a float by raw bit pattern (replay is bit-exact, so `-0.0` and
    /// `NaN` payload differences are real divergences, not noise).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Mix a boolean.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u64(v as u64)
    }

    /// Mix a usize (as u64 — digests must agree across pointer widths).
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Mix an i64.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.u64(v as u64)
    }

    /// Mix raw bytes (length-prefixed so `["ab","c"]` ≠ `["a","bc"]`).
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u64(v.len() as u64);
        let mut chunks = v.chunks_exact(8);
        for c in &mut chunks {
            self.u64(u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.u64(u64::from_le_bytes(buf));
        }
        self
    }

    /// Mix a string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Mix a slice of floats (length-prefixed).
    pub fn f64s(&mut self, v: &[f64]) -> &mut Self {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x.to_bits());
        }
        self
    }

    /// Mix a slice of booleans (length-prefixed).
    pub fn bools(&mut self, v: &[bool]) -> &mut Self {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x as u64);
        }
        self
    }

    /// Merge the lanes and the word count, then a SplitMix64-style final
    /// avalanche so single-bit input changes flip about half the output
    /// bits.
    pub fn finish(&self) -> u64 {
        let mut z = self.count.wrapping_mul(MIX_MUL);
        for (i, lane) in self.lanes.iter().enumerate() {
            z = (z ^ lane.rotate_left(i as u32 * 17)).wrapping_mul(CHAIN_MUL);
            z ^= z >> 29;
        }
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = StateHash::new(1);
        let mut b = StateHash::new(1);
        a.u64(7).f64(1.5).str("x");
        b.u64(7).f64(1.5).str("x");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tag_separates_domains() {
        assert_ne!(StateHash::new(1).finish(), StateHash::new(2).finish());
    }

    #[test]
    fn order_sensitive() {
        let mut a = StateHash::new(0);
        let mut b = StateHash::new(0);
        a.u64(1).u64(2);
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StateHash::new(0);
        let mut b = StateHash::new(0);
        a.str("ab").str("c");
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_avalanche() {
        let h1 = StateHash::new(0).u64(0).finish();
        let h2 = StateHash::new(0).u64(1).finish();
        assert!((h1 ^ h2).count_ones() > 16);
    }
}
