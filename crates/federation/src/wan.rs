//! The simulated WAN link: a latency/bandwidth-shaped queue of in-transit
//! rollup batches between a member site and the federation head.
//!
//! Everything is denominated in federation ticks.  A batch enqueued at
//! tick `T` on a link with effective one-way latency `L` becomes *due* at
//! `T + L`; each tick the link delivers due batches in order, subject to
//! the effective bandwidth cap (static spec ∧ chaos squeeze) and blocked
//! entirely while the link is partitioned.  The backlog is bounded:
//! overflow evicts the oldest batch — counted and traced, never silent.

use crate::config::WanLinkSpec;
use hpcmon_metrics::Frame;
use std::collections::VecDeque;
use std::sync::Arc;

/// One rollup batch crossing the WAN.
#[derive(Debug, Clone)]
pub struct InTransit {
    /// First tick the batch may be delivered.
    pub due_at: u64,
    /// Serialized size, bytes — what the bandwidth cap meters.
    pub bytes: u64,
    /// The rollup frame itself.
    pub frame: Arc<Frame>,
}

/// Send-side state of one site's WAN link.
#[derive(Debug)]
pub struct WanLink {
    spec: WanLinkSpec,
    backlog: VecDeque<InTransit>,
    /// Batches evicted by backlog overflow (lifetime).
    dropped: u64,
    /// Batches delivered to the head (lifetime).
    delivered: u64,
}

impl WanLink {
    /// A quiet link with the given static parameters.
    pub fn new(spec: WanLinkSpec) -> WanLink {
        WanLink { spec, backlog: VecDeque::new(), dropped: 0, delivered: 0 }
    }

    /// Static link parameters.
    pub fn spec(&self) -> &WanLinkSpec {
        &self.spec
    }

    /// Base one-way latency in ticks.
    pub fn latency_ticks(&self) -> u64 {
        self.spec.latency_ticks
    }

    /// Enqueue a batch sent at `tick` with `added_latency` extra one-way
    /// ticks (from a chaos delay window).  Returns the batch evicted to
    /// make room, if the bounded backlog overflowed.
    pub fn enqueue(
        &mut self,
        tick: u64,
        added_latency: u64,
        frame: Arc<Frame>,
        bytes: u64,
    ) -> Option<InTransit> {
        let due_at = tick + self.spec.latency_ticks + added_latency;
        let evicted = if self.backlog.len() >= self.spec.max_backlog.max(1) {
            self.dropped += 1;
            self.backlog.pop_front()
        } else {
            None
        };
        self.backlog.push_back(InTransit { due_at, bytes, frame });
        evicted
    }

    /// Deliver the batches due at `tick`, in order, under the effective
    /// bandwidth cap (`chaos_cap` ∧ the static spec; the head-of-line
    /// batch always goes through so a cap below one batch size delays
    /// rather than wedges).  `partitioned` blocks delivery entirely.
    pub fn deliver_due(
        &mut self,
        tick: u64,
        partitioned: bool,
        chaos_cap: Option<u64>,
    ) -> Vec<InTransit> {
        if partitioned {
            return Vec::new();
        }
        let cap = match (self.spec.bandwidth_bytes_per_tick, chaos_cap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        let mut out = Vec::new();
        let mut used = 0u64;
        while let Some(front) = self.backlog.front() {
            if front.due_at > tick {
                break;
            }
            if let Some(cap) = cap {
                if used > 0 && used + front.bytes > cap {
                    break;
                }
            }
            let batch = self.backlog.pop_front().expect("front checked above");
            used += batch.bytes;
            self.delivered += 1;
            out.push(batch);
        }
        out
    }

    /// Batches currently queued on the link.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Batches evicted by backlog overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Batches delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmon_metrics::Ts;

    fn frame(n: u64) -> Arc<Frame> {
        Arc::new(Frame::new(Ts(n)))
    }

    #[test]
    fn latency_holds_then_delivers_in_order() {
        let mut link = WanLink::new(WanLinkSpec { latency_ticks: 2, ..Default::default() });
        link.enqueue(1, 0, frame(1), 10);
        link.enqueue(2, 0, frame(2), 10);
        assert!(link.deliver_due(2, false, None).is_empty());
        let due = link.deliver_due(3, false, None);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].frame.ts, Ts(1));
        let due = link.deliver_due(4, false, None);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].frame.ts, Ts(2));
        assert_eq!(link.delivered(), 2);
    }

    #[test]
    fn partition_blocks_then_drains() {
        let mut link = WanLink::new(WanLinkSpec { latency_ticks: 1, ..Default::default() });
        link.enqueue(1, 0, frame(1), 10);
        link.enqueue(2, 0, frame(2), 10);
        assert!(link.deliver_due(3, true, None).is_empty(), "partitioned");
        assert_eq!(link.backlog_len(), 2);
        assert_eq!(link.deliver_due(4, false, None).len(), 2, "drains after heal");
    }

    #[test]
    fn bandwidth_cap_spreads_delivery_but_never_wedges() {
        let mut link = WanLink::new(WanLinkSpec { latency_ticks: 0, ..Default::default() });
        for i in 0..3 {
            link.enqueue(1, 0, frame(i), 100);
        }
        // Cap below one batch: exactly the head-of-line batch per tick.
        assert_eq!(link.deliver_due(1, false, Some(10)).len(), 1);
        // Cap fitting two: two go through.
        assert_eq!(link.deliver_due(2, false, Some(200)).len(), 2);
        assert_eq!(link.backlog_len(), 0);
    }

    #[test]
    fn overflow_evicts_oldest() {
        let mut link = WanLink::new(WanLinkSpec { max_backlog: 2, ..Default::default() });
        assert!(link.enqueue(1, 0, frame(1), 1).is_none());
        assert!(link.enqueue(1, 0, frame(2), 1).is_none());
        let evicted = link.enqueue(1, 0, frame(3), 1).expect("overflow");
        assert_eq!(evicted.frame.ts, Ts(1), "oldest goes first");
        assert_eq!(link.dropped(), 1);
        assert_eq!(link.backlog_len(), 2);
    }

    #[test]
    fn chaos_delay_pushes_due_tick() {
        let mut link = WanLink::new(WanLinkSpec { latency_ticks: 1, ..Default::default() });
        link.enqueue(1, 3, frame(1), 10);
        assert!(link.deliver_due(2, false, None).is_empty());
        assert!(link.deliver_due(4, false, None).is_empty());
        assert_eq!(link.deliver_due(5, false, None).len(), 1);
    }
}
