//! The federation head: lockstep site stepping, WAN rollup delivery, and
//! the scatter-gather query plane.
//!
//! # Determinism
//!
//! Everything the federation emits is a pure function of the member
//! configs, their seeds, and the WAN fault plan:
//!
//! * Sites step in **tick lockstep**, in fixed site order; each member
//!   pipeline is itself deterministic at any worker count.
//! * WAN behavior is denominated in ticks and driven by the seeded
//!   [`ChaosEngine`]; there are no wall-clock decisions on the data path.
//! * Scatter uses the gateway's plan-level entry point
//!   ([`hpcmon_gateway::Gateway::plan_query`]), which bypasses the
//!   wall-clock worker pool; deadline shedding is decided from simulated
//!   link RTT *before* the member query runs.
//! * Merges sort by value with `(site index, component)` tie-breaks and
//!   align all timestamps to federation time, so the same seed + plan
//!   yield bit-identical federated answers at any worker count.

use crate::config::FederationConfig;
use crate::scatter::{
    merge_points, merge_ranked, FedQueryResult, FedResponse, SiteOutcome, SiteStatus,
};
use crate::wan::WanLink;
use bytes::Bytes;
use hpcmon::system::MonitoringSystem;
use hpcmon_chaos::{ChaosEngine, WanInjectedCounts};
use hpcmon_gateway::{QueryRequest, QueryResponse};
use hpcmon_health::{AlertEvent, FeedValue, HealthConfig, HealthEngine, HealthReport};
use hpcmon_metrics::{CompId, CompKind, Frame, MetricId, MetricRegistry, Ts, Unit};
use hpcmon_response::Consumer;
use hpcmon_store::{JobSeries, QueryEngine, TimeRange, TimeSeriesStore};
use hpcmon_telemetry::{Counter, Telemetry};
use hpcmon_trace::{DropReason, Sampler, Stage, TraceStore, Tracer};
use hpcmon_transport::{topics, BackpressurePolicy, Broker, Payload, Subscription, TopicFilter};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Metric ids of the federation-level rollup and self-telemetry series,
/// registered on the federation's own registry in fixed order.
#[derive(Debug, Clone, Copy)]
pub struct FedMetricIds {
    /// Per-site (and federation-total) power draw.
    pub power_w: MetricId,
    /// Per-site mean CPU utilization.
    pub cpu_util: MetricId,
    /// Per-site batch-queue depth.
    pub queue_depth: MetricId,
    /// Per-site running jobs.
    pub running_jobs: MetricId,
    /// Samples the site's last frame carried.
    pub samples: MetricId,
    /// Signals the site's last tick emitted.
    pub signals: MetricId,
    /// Cumulative sites shed from scatters on deadline.
    pub self_deadline_shed: MetricId,
    /// Cumulative rollup batches lost to WAN backlog overflow.
    pub self_wan_dropped: MetricId,
    /// Cumulative rollup batches delivered across all links.
    pub self_rollups_delivered: MetricId,
    /// WAN links partitioned this tick.
    pub self_partitioned_links: MetricId,
    /// Cumulative federated scatter queries served.
    pub self_scatter_queries: MetricId,
    /// Per-link rollup batches queued behind latency/partition/bandwidth.
    pub wan_backlog_depth: MetricId,
    /// Per-link rollup batches evicted on backlog overflow (cumulative).
    pub wan_link_dropped: MetricId,
    /// Per-link effective one-way latency this tick (base + chaos delay).
    pub wan_latency_ticks: MetricId,
}

impl FedMetricIds {
    fn register(reg: &MetricRegistry) -> FedMetricIds {
        FedMetricIds {
            power_w: reg.register("hpcmon.fed.power_w", Unit::Watts, "site total power draw"),
            cpu_util: reg.register("hpcmon.fed.cpu_util", Unit::Ratio, "site mean CPU utilization"),
            queue_depth: reg.register("hpcmon.fed.queue_depth", Unit::Count, "site queue depth"),
            running_jobs: reg.register("hpcmon.fed.running_jobs", Unit::Count, "site running jobs"),
            samples: reg.register("hpcmon.fed.samples", Unit::Count, "samples in the site frame"),
            signals: reg.register("hpcmon.fed.signals", Unit::Count, "signals the site emitted"),
            self_deadline_shed: reg.register(
                "hpcmon.self.fed.deadline_shed",
                Unit::Count,
                "sites shed from scatters on deadline (cumulative)",
            ),
            self_wan_dropped: reg.register(
                "hpcmon.self.fed.wan_dropped",
                Unit::Count,
                "rollup batches lost to WAN backlog overflow (cumulative)",
            ),
            self_rollups_delivered: reg.register(
                "hpcmon.self.fed.rollups_delivered",
                Unit::Count,
                "rollup batches delivered (cumulative)",
            ),
            self_partitioned_links: reg.register(
                "hpcmon.self.fed.partitioned_links",
                Unit::Count,
                "WAN links partitioned this tick",
            ),
            self_scatter_queries: reg.register(
                "hpcmon.self.fed.scatter_queries",
                Unit::Count,
                "federated scatter queries served (cumulative)",
            ),
            wan_backlog_depth: reg.register(
                "hpcmon.self.fed.wan.backlog_depth",
                Unit::Count,
                "rollup batches queued on the site's WAN link",
            ),
            wan_link_dropped: reg.register(
                "hpcmon.self.fed.wan.dropped",
                Unit::Count,
                "rollup batches this link evicted on overflow (cumulative)",
            ),
            wan_latency_ticks: reg.register(
                "hpcmon.self.fed.wan.latency_ticks",
                Unit::Count,
                "effective one-way link latency this tick, base + chaos delay",
            ),
        }
    }
}

/// The last rollup values delivered from one site (fed-total inputs).
#[derive(Debug, Clone, Copy)]
struct SiteRollup {
    power: f64,
    cpu: f64,
    queue: f64,
    running: f64,
}

struct MemberSite {
    name: String,
    epoch_offset_ms: u64,
    system: MonitoringSystem,
    link: WanLink,
    last_signals: usize,
}

/// `N` member monitoring systems joined by simulated WAN links, with a
/// hierarchical rollup plane and a scatter-gather query planner on top.
pub struct Federation {
    sites: Vec<MemberSite>,
    chaos: ChaosEngine,
    tick: u64,
    tick_ms: u64,
    registry: MetricRegistry,
    ids: FedMetricIds,
    broker: Arc<Broker>,
    store: Arc<TimeSeriesStore>,
    rollup_sub: Subscription,
    telemetry: Arc<Telemetry>,
    c_scatter: Arc<Counter>,
    c_shed: Arc<Counter>,
    c_wan_dropped: Arc<Counter>,
    c_rollups: Arc<Counter>,
    tracer: Arc<Tracer>,
    traces: TraceStore,
    latest: Vec<Option<SiteRollup>>,
    partitioned_now: usize,
    partitioned_sites: Vec<bool>,
    last_link_dropped: Vec<u64>,
    health: Option<HealthEngine>,
    seq: u64,
}

/// The comp id a member site's rollup series live under: `System/i+1`
/// (index 0 — [`CompId::SYSTEM`] — is the federation total itself).
pub fn site_comp(site_index: usize) -> CompId {
    CompId { kind: CompKind::System, index: site_index as u32 + 1 }
}

impl Federation {
    /// Build the federation: every member system is constructed (with its
    /// gateway, worker count, and clock-skew epoch), links start quiet,
    /// and the WAN fault plan is armed.
    ///
    /// # Panics
    /// On an empty site list, duplicate site names, or members that
    /// disagree on `tick_ms` (lockstep needs one tick length).
    pub fn new(config: FederationConfig) -> Federation {
        assert!(!config.sites.is_empty(), "a federation needs at least one member site");
        let names: BTreeSet<&str> = config.sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), config.sites.len(), "duplicate site names");
        let tick_ms = config.sites[0].config.tick_ms;
        assert!(
            config.sites.iter().all(|s| s.config.tick_ms == tick_ms),
            "member sites must share tick_ms"
        );
        let sites: Vec<MemberSite> = config
            .sites
            .into_iter()
            .map(|spec| {
                let system = MonitoringSystem::builder(spec.config)
                    .workers(spec.workers)
                    .self_telemetry(spec.self_telemetry)
                    .gateway(spec.gateway)
                    .clock_epoch_offset_ticks(spec.epoch_offset_ticks)
                    .build();
                MemberSite {
                    name: spec.name,
                    epoch_offset_ms: spec.epoch_offset_ticks * tick_ms,
                    system,
                    link: WanLink::new(spec.link),
                    last_signals: 0,
                }
            })
            .collect();
        let registry = MetricRegistry::new();
        let ids = FedMetricIds::register(&registry);
        let broker = Broker::new();
        let store = Arc::new(TimeSeriesStore::new());
        let rollup_sub = broker.subscribe(
            TopicFilter::new(&format!("{}/#", topics::FED)),
            4_096,
            BackpressurePolicy::Block,
        );
        let telemetry = Arc::new(Telemetry::new());
        let c_scatter = telemetry.counter("fed.scatter.queries");
        let c_shed = telemetry.counter("fed.scatter.deadline_shed");
        let c_wan_dropped = telemetry.counter("fed.wan.dropped");
        let c_rollups = telemetry.counter("fed.wan.rollups_delivered");
        let latest = vec![None; sites.len()];
        let health = config.health.then(|| {
            let names: Vec<String> = sites.iter().map(|s| s.name.clone()).collect();
            HealthEngine::new(HealthConfig::federation(&names))
        });
        let num_sites = sites.len();
        Federation {
            sites,
            chaos: ChaosEngine::new(config.seed, config.link_plan),
            tick: 0,
            tick_ms,
            registry,
            ids,
            broker,
            store,
            rollup_sub,
            telemetry,
            c_scatter,
            c_shed,
            c_wan_dropped,
            c_rollups,
            tracer: Arc::new(Tracer::new(Sampler::one_in(16))),
            traces: TraceStore::new(256),
            latest,
            partitioned_now: 0,
            partitioned_sites: vec![false; num_sites],
            last_link_dropped: vec![0; num_sites],
            health,
            seq: 0,
        }
    }

    /// Advance the whole federation one tick: WAN faults activate, every
    /// member steps in lockstep, rollup batches cross the links, delivered
    /// batches land in the federation store, and the fed-total +
    /// self-telemetry series update.
    pub fn tick(&mut self) {
        self.tick += 1;
        let tick = self.tick;
        self.chaos.begin_tick(tick);

        // 1. Lockstep: every member advances one tick, in site order.
        for site in &mut self.sites {
            let report = site.system.tick();
            site.last_signals = report.signals.len();
        }

        // 2. Rollup: one O(1)-series batch per site, stamped in federation
        //    time (site-local timestamp minus the site's skew), enqueued
        //    onto the WAN link.
        for (i, site) in self.sites.iter_mut().enumerate() {
            let Some(frame) = site.system.last_frame() else { continue };
            let m = site.system.metrics();
            let comp = site_comp(i);
            let fed_ts = frame.ts.sub_ms(site.epoch_offset_ms);
            let mut rollup = Frame::new(fed_ts);
            rollup.push(self.ids.power_w, comp, frame.sum_of(m.system_power));
            rollup.push(self.ids.cpu_util, comp, frame.mean_of(m.node_cpu).unwrap_or(0.0));
            rollup.push(self.ids.queue_depth, comp, frame.sum_of(m.queue_depth));
            rollup.push(self.ids.running_jobs, comp, frame.sum_of(m.running_jobs));
            rollup.push(self.ids.samples, comp, frame.len() as f64);
            rollup.push(self.ids.signals, comp, site.last_signals as f64);
            let bytes = serde_json::to_string(&rollup).map_or(256, |s| s.len() as u64);
            let added = self.chaos.wan_added_latency_ticks(&site.name);
            if let Some(evicted) = site.link.enqueue(tick, added, Arc::new(rollup), bytes) {
                self.c_wan_dropped.inc();
                self.seq += 1;
                if let Some(ctx) = self.tracer.context_for(self.seq) {
                    self.tracer.record_drop(
                        &ctx,
                        Stage::Federation,
                        DropReason::WanBacklogOverflow,
                        &format!("{}: rollup@{}", site.name, evicted.frame.ts.0),
                    );
                }
            }
        }

        // 3. Delivery: due batches cross each link unless it is
        //    partitioned, metered by the effective bandwidth cap; the
        //    latest delivered values feed the fed totals.
        self.partitioned_now = 0;
        for (i, site) in self.sites.iter_mut().enumerate() {
            let partitioned = self.chaos.wan_partitioned(&site.name);
            self.partitioned_sites[i] = partitioned;
            if partitioned {
                self.partitioned_now += 1;
            }
            let cap = self.chaos.wan_bandwidth_cap(&site.name);
            for batch in site.link.deliver_due(tick, partitioned, cap) {
                self.c_rollups.inc();
                let value =
                    |id: MetricId| batch.frame.of_metric(id).next().map_or(0.0, |s| s.value);
                self.latest[i] = Some(SiteRollup {
                    power: value(self.ids.power_w),
                    cpu: value(self.ids.cpu_util),
                    queue: value(self.ids.queue_depth),
                    running: value(self.ids.running_jobs),
                });
                self.broker.publish(&topics::fed_rollup(&site.name), Payload::Frame(batch.frame));
            }
        }

        // 4. Fed totals + self telemetry, in federation time.  Totals sum
        //    the latest *delivered* value per site — a partitioned site
        //    contributes its last-known state, exactly like a real
        //    dashboard fed by a stalled link.
        let now = Ts(tick * self.tick_ms);
        let mut totals = Frame::new(now);
        let delivered: Vec<SiteRollup> = self.latest.iter().flatten().copied().collect();
        let power: f64 = delivered.iter().map(|r| r.power).sum();
        let queue: f64 = delivered.iter().map(|r| r.queue).sum();
        let running: f64 = delivered.iter().map(|r| r.running).sum();
        let cpu = if delivered.is_empty() {
            0.0
        } else {
            delivered.iter().map(|r| r.cpu).sum::<f64>() / delivered.len() as f64
        };
        totals.push(self.ids.power_w, CompId::SYSTEM, power);
        totals.push(self.ids.cpu_util, CompId::SYSTEM, cpu);
        totals.push(self.ids.queue_depth, CompId::SYSTEM, queue);
        totals.push(self.ids.running_jobs, CompId::SYSTEM, running);
        totals.push(self.ids.self_deadline_shed, CompId::SYSTEM, self.c_shed.get() as f64);
        totals.push(self.ids.self_wan_dropped, CompId::SYSTEM, self.c_wan_dropped.get() as f64);
        totals.push(self.ids.self_rollups_delivered, CompId::SYSTEM, self.c_rollups.get() as f64);
        totals.push(self.ids.self_partitioned_links, CompId::SYSTEM, self.partitioned_now as f64);
        totals.push(self.ids.self_scatter_queries, CompId::SYSTEM, self.c_scatter.get() as f64);
        // Per-link WAN state, one gauge set per site: the link is part of
        // the monitoring system, so it gets monitored like everything else.
        for (i, site) in self.sites.iter().enumerate() {
            let comp = site_comp(i);
            let latency =
                site.link.latency_ticks() + self.chaos.wan_added_latency_ticks(&site.name);
            totals.push(self.ids.wan_backlog_depth, comp, site.link.backlog_len() as f64);
            totals.push(self.ids.wan_link_dropped, comp, site.link.dropped() as f64);
            totals.push(self.ids.wan_latency_ticks, comp, latency as f64);
        }
        self.broker.publish(&topics::fed_rollup("_total"), Payload::Frame(Arc::new(totals)));

        // 4b. Head-level health: one WAN-delivery feed per site.  A
        //     partitioned tick is one bad event; rollups evicted on
        //     overflow this tick add more.  All inputs are tick-keyed
        //     chaos/link state, so the alert timeline is deterministic.
        if let Some(health) = &mut self.health {
            let mut feeds: Vec<(String, FeedValue)> = Vec::new();
            for (i, site) in self.sites.iter().enumerate() {
                let dropped = site.link.dropped();
                let drop_delta = dropped - self.last_link_dropped[i];
                self.last_link_dropped[i] = dropped;
                let partitioned = self.partitioned_sites[i];
                feeds.push((
                    format!("fed.wan.{}", site.name),
                    FeedValue::Tick {
                        good: if partitioned { 0.0 } else { 1.0 },
                        bad: u64::from(partitioned) as f64 + drop_delta as f64,
                    },
                ));
            }
            let feeds: Vec<(&str, FeedValue)> =
                feeds.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let events = health.observe_tick(tick, &feeds, &|_| 0);
            for ev in events.iter().filter(|ev| !ev.silenced) {
                let bytes = serde_json::to_vec(ev).expect("AlertEvent serializes");
                self.broker.publish(&topics::health_alerts(), Payload::Raw(Bytes::from(bytes)));
            }
        }

        // 5. Ingest everything that arrived on the fed plane this tick.
        for env in self.rollup_sub.drain() {
            if let Payload::Frame(frame) = env.payload {
                self.store.insert_frame(&frame);
            }
        }

        // 6. Trace assembly.
        self.traces.ingest(self.tracer.drain());
    }

    /// Run `n` federation ticks.
    pub fn run_ticks(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Scatter `request` to every member gateway under `consumer`'s scope,
    /// with a total deadline budget in **ticks**.  Per site: a partitioned
    /// link yields [`SiteStatus::Partitioned`]; a simulated round trip
    /// (2 × effective one-way latency) that exhausts the budget sheds the
    /// site *before* querying it ([`SiteStatus::TimedOut`], counted on
    /// `hpcmon.self.fed.deadline_shed`); otherwise the member gateway
    /// evaluates inline and the response's timestamps are re-aligned from
    /// site-local to federation time.  The result carries provenance for
    /// every site — partial answers name exactly who is missing and why.
    pub fn federated_query(
        &mut self,
        consumer: &Consumer,
        request: &QueryRequest,
        deadline_ticks: u64,
    ) -> FedQueryResult {
        self.c_scatter.inc();
        let mut outcomes = Vec::with_capacity(self.sites.len());
        let mut answered: Vec<(String, QueryResponse)> = Vec::new();
        for site in &self.sites {
            self.seq += 1;
            let ctx = self.tracer.context_for(self.seq);
            if self.chaos.wan_partitioned(&site.name) {
                if let Some(ctx) = &ctx {
                    self.tracer.record_drop(
                        &ctx.clone(),
                        Stage::Federation,
                        DropReason::WanPartition,
                        &format!("{}: scatter", site.name),
                    );
                }
                outcomes
                    .push(SiteOutcome { site: site.name.clone(), status: SiteStatus::Partitioned });
                continue;
            }
            let one_way =
                site.link.latency_ticks() + self.chaos.wan_added_latency_ticks(&site.name);
            let rtt = 2 * one_way;
            if rtt >= deadline_ticks {
                self.c_shed.inc();
                if let Some(ctx) = &ctx {
                    self.tracer.record_drop(
                        ctx,
                        Stage::Federation,
                        DropReason::DeadlineShed,
                        &format!("{}: rtt {rtt} >= budget {deadline_ticks}", site.name),
                    );
                }
                outcomes.push(SiteOutcome {
                    site: site.name.clone(),
                    status: SiteStatus::TimedOut { rtt_ticks: rtt, budget_ticks: deadline_ticks },
                });
                continue;
            }
            let gateway = site.system.gateway().expect("member sites always run a gateway");
            let site_request = shift_request(request, site.epoch_offset_ms);
            match gateway.plan_query(consumer, &site_request) {
                Ok(resp) => {
                    answered.push((site.name.clone(), shift_response(resp, site.epoch_offset_ms)));
                    outcomes.push(SiteOutcome {
                        site: site.name.clone(),
                        status: SiteStatus::Answered,
                    });
                }
                Err(e) => outcomes
                    .push(SiteOutcome { site: site.name.clone(), status: SiteStatus::Failed(e) }),
            }
        }
        let merged = match request {
            QueryRequest::AggregateAcross { agg, .. } => {
                FedResponse::Points(merge_points(&answered, *agg))
            }
            QueryRequest::TopComponentsAt { limit, .. } => {
                FedResponse::Ranked(merge_ranked(&answered, *limit))
            }
            _ => FedResponse::PerSite(answered),
        };
        FedQueryResult { merged, outcomes }
    }

    // ----- accessors -----

    /// Federation ticks run so far.
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Milliseconds of simulated time per tick.
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// Member site names, in site order.
    pub fn site_names(&self) -> Vec<&str> {
        self.sites.iter().map(|s| s.name.as_str()).collect()
    }

    /// Number of member sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// A member's monitoring system, by site index.
    pub fn site_system(&self, index: usize) -> &MonitoringSystem {
        &self.sites[index].system
    }

    /// Mutable access to a member's monitoring system (job submission,
    /// fault scheduling).
    pub fn site_system_mut(&mut self, index: usize) -> &mut MonitoringSystem {
        &mut self.sites[index].system
    }

    /// The federation-level rollup store (`hpcmon.fed.*` and
    /// `hpcmon.self.fed.*` series — O(sites) of them, not O(nodes)).
    pub fn store(&self) -> &TimeSeriesStore {
        &self.store
    }

    /// A query engine over the rollup store.
    pub fn rollup_query(&self) -> QueryEngine<'_> {
        QueryEngine::new(&self.store)
    }

    /// The federation's metric registry.
    pub fn registry(&self) -> &MetricRegistry {
        &self.registry
    }

    /// Metric ids of the federation rollup and self series.
    pub fn metric_ids(&self) -> FedMetricIds {
        self.ids
    }

    /// The federation's self-telemetry registry.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Federation-plane traces (rollup drops, scatter sheds).
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// The head-level health engine, when enabled.
    pub fn health_engine(&self) -> Option<&HealthEngine> {
        self.health.as_ref()
    }

    /// The head-level health report (per-site WAN rollup grades), when
    /// the health plane is enabled.
    pub fn health_report(&self) -> Option<HealthReport> {
        self.health.as_ref().map(|h| h.report(self.tick))
    }

    /// Alert transitions recorded at the head (empty when health is off).
    pub fn alert_events(&self) -> &[AlertEvent] {
        self.health.as_ref().map_or(&[], |h| h.events())
    }

    /// Canonical alert timeline at the head (see
    /// [`HealthEngine::canonical_timeline`]); empty when health is off.
    pub fn health_timeline(&self) -> String {
        self.health.as_ref().map_or_else(String::new, |h| h.canonical_timeline())
    }

    /// Per-kind WAN fault windows activated so far.
    pub fn wan_counts(&self) -> WanInjectedCounts {
        self.chaos.wan_counts()
    }

    /// Rollup batches lost to backlog overflow, across all links.
    pub fn wan_dropped(&self) -> u64 {
        self.c_wan_dropped.get()
    }

    /// Rollup batches delivered, across all links.
    pub fn rollups_delivered(&self) -> u64 {
        self.c_rollups.get()
    }

    /// Sites shed from scatters on deadline so far.
    pub fn deadline_shed(&self) -> u64 {
        self.c_shed.get()
    }

    /// Canonical form of the federation store for bit-identity diffing:
    /// series sorted by name, every value as raw f64 bits.
    pub fn canonical_store(&self) -> Vec<(String, Vec<(u64, u64)>)> {
        let mut out: Vec<(String, Vec<(u64, u64)>)> = self
            .store
            .all_series()
            .into_iter()
            .map(|key| {
                let name = format!(
                    "{}/{}/{}",
                    self.registry.name(key.metric),
                    key.comp.kind.label(),
                    key.comp.index
                );
                let points = self
                    .store
                    .query(key, Ts::ZERO, Ts(u64::MAX))
                    .into_iter()
                    .map(|(t, v)| (t.0, v.to_bits()))
                    .collect();
                (name, points)
            })
            .collect();
        out.sort();
        out
    }
}

/// Translate a federation-time request into a site's local clock by adding
/// its skew offset to every timestamp parameter.
fn shift_request(request: &QueryRequest, offset_ms: u64) -> QueryRequest {
    if offset_ms == 0 {
        return request.clone();
    }
    let shift =
        |r: &TimeRange| TimeRange { from: r.from.add_ms(offset_ms), to: r.to.add_ms(offset_ms) };
    match request {
        QueryRequest::Series { key, range } => {
            QueryRequest::Series { key: *key, range: shift(range) }
        }
        QueryRequest::AggregateAcross { metric, range, agg } => {
            QueryRequest::AggregateAcross { metric: *metric, range: shift(range), agg: *agg }
        }
        QueryRequest::ComponentsOfKind { metric, kind, range } => {
            QueryRequest::ComponentsOfKind { metric: *metric, kind: *kind, range: shift(range) }
        }
        QueryRequest::TopComponentsAt { metric, at, tolerance_ms, limit } => {
            QueryRequest::TopComponentsAt {
                metric: *metric,
                at: at.add_ms(offset_ms),
                tolerance_ms: *tolerance_ms,
                limit: *limit,
            }
        }
        QueryRequest::Downsample { key, range, bucket_ms, agg } => QueryRequest::Downsample {
            key: *key,
            range: shift(range),
            bucket_ms: *bucket_ms,
            agg: *agg,
        },
        QueryRequest::AlignJoin { a, b, range } => {
            QueryRequest::AlignJoin { a: *a, b: *b, range: shift(range) }
        }
        QueryRequest::JobSeries { job_id, metric } => {
            QueryRequest::JobSeries { job_id: *job_id, metric: *metric }
        }
    }
}

/// Translate a site-local response back to federation time by subtracting
/// the site's skew offset from every timestamp — the merge layer never
/// interleaves raw site-local times.
fn shift_response(response: QueryResponse, offset_ms: u64) -> QueryResponse {
    if offset_ms == 0 {
        return response;
    }
    let shift_pts =
        |pts: Vec<(Ts, f64)>| pts.into_iter().map(|(t, v)| (t.sub_ms(offset_ms), v)).collect();
    match response {
        QueryResponse::Points(pts) => QueryResponse::Points(shift_pts(pts)),
        QueryResponse::Grouped(groups) => QueryResponse::Grouped(
            groups.into_iter().map(|(comp, pts)| (comp, shift_pts(pts))).collect(),
        ),
        QueryResponse::Ranked(rows) => QueryResponse::Ranked(rows),
        QueryResponse::Joined(rows) => QueryResponse::Joined(
            rows.into_iter().map(|(t, a, b)| (t.sub_ms(offset_ms), a, b)).collect(),
        ),
        QueryResponse::Job(job) => QueryResponse::Job(JobSeries {
            metric: job.metric,
            per_node: job.per_node.into_iter().map(|(comp, pts)| (comp, shift_pts(pts))).collect(),
            sum: shift_pts(job.sum),
            mean: shift_pts(job.mean),
        }),
    }
}
