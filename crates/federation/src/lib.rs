//! Multi-site federation: a scatter-gather query plane over N member
//! monitoring systems joined by simulated WAN links.
//!
//! The source paper is a ten-HPC-center collaboration — every site runs
//! its own full monitoring stack, and the hard problems are the
//! *cross-site* ones: flexible data paths, federated query, and surviving
//! inter-site link trouble.  This crate reproduces that shape in
//! miniature:
//!
//! * [`Federation`] owns N independent member sites (each a full
//!   [`hpcmon::system::MonitoringSystem`] with its own simulated cluster,
//!   store, and gateway) and steps them in **tick lockstep**.
//! * Each site is joined to the federation head by a simulated WAN link
//!   ([`WanLink`]) with per-link latency in ticks, bandwidth caps, and a
//!   bounded in-transit backlog; [`hpcmon_chaos::ChaosFault::WanPartition`],
//!   [`WanDelay`](hpcmon_chaos::ChaosFault::WanDelay), and
//!   [`WanBandwidth`](hpcmon_chaos::ChaosFault::WanBandwidth) faults are
//!   scheduled through the ordinary [`hpcmon_chaos::ChaosPlan`] machinery.
//! * Sites push **hierarchical rollups** (DCDB-style pushdown: a handful
//!   of site-level series, not per-node data) across their links;
//!   delivered batches are republished on the federation broker as
//!   `fed/rollup/<site>` and stored as `hpcmon.fed.*` series, so a global
//!   dashboard query touches O(sites) series instead of O(nodes).
//! * [`Federation::federated_query`] scatters one
//!   [`hpcmon_gateway::QueryRequest`] to every member gateway and merges
//!   centrally with **partial-result semantics**: every site appears in
//!   the answer's provenance as answered / timed-out / partitioned /
//!   failed — never silently dropped.  Per-site clock skew is aligned to
//!   federation time on both the request and response paths.
//!
//! Everything is deterministic: the same seeds and the same WAN fault
//! plan produce bit-identical federated answers and rollup stores at any
//! worker count.

#![warn(missing_docs)]

pub mod config;
pub mod federation;
pub mod scatter;
pub mod wan;

pub use config::{FederationConfig, SiteSpec, WanLinkSpec};
pub use federation::{site_comp, FedMetricIds, Federation};
pub use scatter::{FedQueryResult, FedResponse, FedRow, SiteOutcome, SiteStatus};
pub use wan::{InTransit, WanLink};
