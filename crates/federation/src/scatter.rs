//! Scatter-gather results: per-site provenance and central merging.
//!
//! A federated query never silently drops a site.  Every member appears in
//! [`FedQueryResult::outcomes`] exactly once, with what happened to it —
//! answered, shed on deadline, unreachable behind a partition, or failed
//! with the gateway's own error.  Merging is central and deterministic:
//! timestamps are pre-aligned to federation time by the scatter layer (per
//! site clock skew), ranked rows order by value with a fixed
//! `(site index, component)` tie-break, and `AggregateAcross` responses
//! re-aggregate per aligned timestamp with the request's own function.

use hpcmon_gateway::{QueryError, QueryResponse};
use hpcmon_metrics::{CompId, Ts};
use hpcmon_store::AggFn;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What happened to one member site during a scatter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SiteStatus {
    /// The site's gateway answered within budget.
    Answered,
    /// The link round trip exceeded the caller's remaining deadline
    /// budget; the site was shed from the merge before being queried.
    TimedOut {
        /// Simulated round trip at scatter time, ticks.
        rtt_ticks: u64,
        /// The caller's budget, ticks.
        budget_ticks: u64,
    },
    /// The WAN link was partitioned; the site was unreachable.
    Partitioned,
    /// The site's gateway refused the query.
    Failed(QueryError),
}

/// One site's provenance entry in a federated answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteOutcome {
    /// Member site name.
    pub site: String,
    /// What happened.
    pub status: SiteStatus,
}

impl SiteOutcome {
    /// Whether this site contributed data to the merge.
    pub fn answered(&self) -> bool {
        self.status == SiteStatus::Answered
    }
}

/// One row of a federated ranking: which site the component lives on is
/// part of the answer (a global top-k names `(site, component)` pairs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedRow {
    /// Member site name.
    pub site: String,
    /// The component within that site.
    pub comp: CompId,
    /// The ranked value.
    pub value: f64,
}

/// A merged federated answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FedResponse {
    /// Per-timestamp re-aggregation across sites (from `AggregateAcross`),
    /// on federation-aligned timestamps.
    Points(Vec<(Ts, f64)>),
    /// Globally ranked rows (from `TopComponentsAt`), value-descending
    /// with `(site index, component)` tie-break, truncated to the
    /// request's limit.
    Ranked(Vec<FedRow>),
    /// Responses that do not merge across sites (raw series, group-bys,
    /// joins, job extractions): one aligned answer per answering site, in
    /// site order.
    PerSite(Vec<(String, QueryResponse)>),
}

/// A complete federated answer: the merge plus per-site provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedQueryResult {
    /// The merged answer over every site that answered.
    pub merged: FedResponse,
    /// One entry per member site, in site order — never silently dropped.
    pub outcomes: Vec<SiteOutcome>,
}

impl FedQueryResult {
    /// Names of the sites that did **not** contribute to the merge.
    pub fn unreachable_sites(&self) -> Vec<&str> {
        self.outcomes.iter().filter(|o| !o.answered()).map(|o| o.site.as_str()).collect()
    }

    /// Whether every member site answered.
    pub fn complete(&self) -> bool {
        self.outcomes.iter().all(|o| o.answered())
    }
}

/// Merge per-site `Points` answers by re-aggregating the site values at
/// each aligned timestamp with `agg`.  `Count` sums (a count of samples
/// across sites is the sum of per-site counts); the other functions apply
/// directly — for `Mean`/`Quantile` this is the function *of the per-site
/// aggregates*, the standard rollup approximation.
pub fn merge_points(per_site: &[(String, QueryResponse)], agg: AggFn) -> Vec<(Ts, f64)> {
    let mut by_ts: BTreeMap<Ts, Vec<f64>> = BTreeMap::new();
    for (_, resp) in per_site {
        if let QueryResponse::Points(points) = resp {
            for &(ts, v) in points {
                by_ts.entry(ts).or_default().push(v);
            }
        }
    }
    let merge = match agg {
        AggFn::Count => AggFn::Sum,
        other => other,
    };
    by_ts.into_iter().filter_map(|(ts, vals)| merge.apply(&vals).map(|v| (ts, v))).collect()
}

/// Merge per-site `Ranked` answers into a global ranking: value
/// descending, ties broken by `(site index, component)` so the order is a
/// pure function of the data, truncated to `limit`.
pub fn merge_ranked(per_site: &[(String, QueryResponse)], limit: usize) -> Vec<FedRow> {
    let mut rows: Vec<(usize, FedRow)> = Vec::new();
    for (site_idx, (site, resp)) in per_site.iter().enumerate() {
        if let QueryResponse::Ranked(ranked) = resp {
            for &(comp, value) in ranked {
                rows.push((site_idx, FedRow { site: site.clone(), comp, value }));
            }
        }
    }
    rows.sort_by(|(ia, a), (ib, b)| {
        b.value
            .partial_cmp(&a.value)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ia.cmp(ib))
            .then(a.comp.cmp(&b.comp))
    });
    rows.truncate(limit);
    rows.into_iter().map(|(_, row)| row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(site: &str, pts: Vec<(u64, f64)>) -> (String, QueryResponse) {
        (site.into(), QueryResponse::Points(pts.into_iter().map(|(t, v)| (Ts(t), v)).collect()))
    }

    #[test]
    fn points_merge_sums_per_timestamp() {
        let per_site =
            vec![points("a", vec![(60, 1.0), (120, 2.0)]), points("b", vec![(60, 10.0)])];
        let merged = merge_points(&per_site, AggFn::Sum);
        assert_eq!(merged, vec![(Ts(60), 11.0), (Ts(120), 2.0)]);
        // Count semantics: counts add across sites.
        let merged = merge_points(&per_site, AggFn::Count);
        assert_eq!(merged, vec![(Ts(60), 11.0), (Ts(120), 2.0)]);
    }

    #[test]
    fn ranked_merge_orders_and_breaks_ties_by_site_then_comp() {
        let a = ("a".to_string(), QueryResponse::Ranked(vec![(CompId::node(3), 5.0)]));
        let b = (
            "b".to_string(),
            QueryResponse::Ranked(vec![(CompId::node(1), 5.0), (CompId::node(2), 9.0)]),
        );
        let rows = merge_ranked(&[a, b], 10);
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].site.as_str(), rows[0].value), ("b", 9.0));
        // Tie at 5.0: site index 0 ("a") wins over site index 1 ("b").
        assert_eq!(rows[1].site, "a");
        assert_eq!(rows[2].site, "b");
        assert_eq!(merge_ranked(&[rows_input()], 1).len(), 1, "limit truncates");
    }

    fn rows_input() -> (String, QueryResponse) {
        ("x".into(), QueryResponse::Ranked(vec![(CompId::node(0), 1.0), (CompId::node(1), 2.0)]))
    }

    #[test]
    fn provenance_helpers() {
        let result = FedQueryResult {
            merged: FedResponse::PerSite(Vec::new()),
            outcomes: vec![
                SiteOutcome { site: "a".into(), status: SiteStatus::Answered },
                SiteOutcome { site: "b".into(), status: SiteStatus::Partitioned },
                SiteOutcome {
                    site: "c".into(),
                    status: SiteStatus::TimedOut { rtt_ticks: 8, budget_ticks: 4 },
                },
            ],
        };
        assert!(!result.complete());
        assert_eq!(result.unreachable_sites(), vec!["b", "c"]);
        let s = serde_json::to_string(&result).unwrap();
        let back: FedQueryResult = serde_json::from_str(&s).unwrap();
        assert_eq!(result, back);
    }
}
