//! Federation configuration: member sites and the WAN links joining them.

use hpcmon_chaos::ChaosPlan;
use hpcmon_gateway::GatewayConfig;
use hpcmon_sim::SimConfig;

/// One member site: a full monitoring stack over its own simulated
/// cluster, reachable from the federation head across a WAN link.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site name — the key WAN chaos faults ([`hpcmon_chaos::ChaosFault::WanPartition`]
    /// and friends) and scatter provenance refer to.
    pub name: String,
    /// The site's machine configuration.  Give each site a distinct
    /// `seed` or the federation is N copies of the same cluster.
    pub config: SimConfig,
    /// Clock skew: this site's tick epoch starts `epoch_offset_ticks`
    /// ticks ahead of federation time, so every sample it emits carries
    /// site-local timestamps the merge layer must re-align.
    pub epoch_offset_ticks: u64,
    /// Worker threads for the site's tick pipeline (0 = serial; output is
    /// identical either way).
    pub workers: usize,
    /// The site's query gateway (always built — scatter needs it).
    pub gateway: GatewayConfig,
    /// Whether the site runs its self-telemetry layer.  Default off: the
    /// wall-clock self series don't survive bit-identity diffing, and
    /// federation rollups carry their own deterministic telemetry.
    pub self_telemetry: bool,
    /// The WAN link from this site to the federation head.
    pub link: WanLinkSpec,
}

impl SiteSpec {
    /// A site over `config`, named `name`, with default gateway, no skew,
    /// serial pipeline, and a default WAN link.
    pub fn new(name: impl Into<String>, config: SimConfig) -> SiteSpec {
        SiteSpec {
            name: name.into(),
            config,
            epoch_offset_ticks: 0,
            workers: 0,
            gateway: GatewayConfig::default(),
            self_telemetry: false,
            link: WanLinkSpec::default(),
        }
    }

    /// Set the clock-skew epoch offset (ticks).
    pub fn epoch_offset_ticks(mut self, ticks: u64) -> SiteSpec {
        self.epoch_offset_ticks = ticks;
        self
    }

    /// Set the site's worker-thread count.
    pub fn workers(mut self, n: usize) -> SiteSpec {
        self.workers = n;
        self
    }

    /// Set the WAN link parameters.
    pub fn link(mut self, link: WanLinkSpec) -> SiteSpec {
        self.link = link;
        self
    }
}

/// Static parameters of one WAN link (chaos faults modulate on top).
#[derive(Debug, Clone, Copy)]
pub struct WanLinkSpec {
    /// Base one-way latency, in ticks, for rollup batches (and doubled
    /// for scatter round trips).
    pub latency_ticks: u64,
    /// Link capacity in bytes per tick (`None` = uncapped).  Chaos
    /// [`hpcmon_chaos::ChaosFault::WanBandwidth`] squeezes below this.
    pub bandwidth_bytes_per_tick: Option<u64>,
    /// Bound on in-transit rollup batches queued behind latency, a
    /// partition, or a bandwidth squeeze; overflow evicts the oldest batch
    /// with drop provenance.
    pub max_backlog: usize,
}

impl Default for WanLinkSpec {
    fn default() -> WanLinkSpec {
        WanLinkSpec { latency_ticks: 1, bandwidth_bytes_per_tick: None, max_backlog: 64 }
    }
}

/// The whole federation: member sites plus a seeded WAN fault plan.
#[derive(Debug, Clone, Default)]
pub struct FederationConfig {
    /// Member sites, in a fixed order that scatter, merge tie-breaking,
    /// and rollup component ids all follow.
    pub sites: Vec<SiteSpec>,
    /// Seed for the federation's chaos engine (WAN faults).
    pub seed: u64,
    /// Tick-keyed WAN fault script, interpreted against site names.
    pub link_plan: ChaosPlan,
    /// Run the SLO/alerting plane at the federation head: one
    /// WAN-delivery SLO per site (`federation/wan-delivery@<site>`),
    /// alerts published on `health/alerts`.  Default off.
    pub health: bool,
}

impl FederationConfig {
    /// A federation over `sites` with no WAN faults.
    pub fn new(sites: Vec<SiteSpec>) -> FederationConfig {
        FederationConfig { sites, seed: 0, link_plan: ChaosPlan::new(), health: false }
    }

    /// Attach a seeded WAN fault plan.
    pub fn link_plan(mut self, seed: u64, plan: ChaosPlan) -> FederationConfig {
        self.seed = seed;
        self.link_plan = plan;
        self
    }

    /// Enable the head-level health plane (per-site WAN SLOs).
    pub fn health(mut self, on: bool) -> FederationConfig {
        self.health = on;
        self
    }
}
