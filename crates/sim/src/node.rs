//! Per-node state: health, CPU, memory, services, GPUs.
//!
//! The LANL tests in the paper verify "that essential services and daemons
//! are functional, including filesystem mounts; and ensuring there is an
//! appropriate amount of free memory on compute nodes" — so nodes model
//! exactly those observables.  GPUs carry a *resistance drift* value that
//! grows with accumulated corrosive-gas dose, reproducing the ORNL
//! sulfur-corrosion failure mechanism.

use serde::{Deserialize, Serialize};

/// Names of the essential per-node services the health checks probe.
pub const SERVICES: [&str; 4] = ["slurmd", "munge", "lnet", "ntpd"];

/// Index of a service name in [`SERVICES`].
pub fn service_index(name: &str) -> Option<usize> {
    SERVICES.iter().position(|&s| s == name)
}

/// Health of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeHealth {
    /// Operating normally.
    Up,
    /// Alive but not making progress (accepts no work, burns idle power).
    Hung,
    /// Crashed / powered off.
    Down,
}

/// State of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuState {
    /// Whether the GPU currently passes its health test.
    pub healthy: bool,
    /// Accumulated resistor drift from corrosive-gas exposure, in percent
    /// deviation from nominal.  Beyond ~10% the part starts failing
    /// (the ORNL crystalline-growth mechanism).
    pub resistance_drift_pct: f64,
}

impl GpuState {
    /// Drift level at which failure probability becomes significant.
    pub const DRIFT_FAILURE_THRESHOLD_PCT: f64 = 10.0;

    /// A factory-fresh GPU.
    pub fn new() -> GpuState {
        GpuState { healthy: true, resistance_drift_pct: 0.0 }
    }

    /// Per-tick failure probability given current drift.
    pub fn failure_probability(&self) -> f64 {
        if !self.healthy {
            return 0.0;
        }
        let excess = self.resistance_drift_pct - Self::DRIFT_FAILURE_THRESHOLD_PCT;
        if excess <= 0.0 {
            0.0
        } else {
            (excess * 2e-3).min(0.5)
        }
    }
}

impl Default for GpuState {
    fn default() -> Self {
        Self::new()
    }
}

/// Full state of one compute node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    /// Health.
    pub health: NodeHealth,
    /// CPU utilization in `[0, 1]` for the current tick.
    pub cpu_util: f64,
    /// Installed memory in bytes.
    pub mem_total_bytes: f64,
    /// Memory in use, bytes.
    pub mem_used_bytes: f64,
    /// Extra memory consumed per tick by an injected leak (bytes).
    pub mem_leak_bytes_per_tick: f64,
    /// Memory accumulated by the leak so far (survives job boundaries —
    /// leaks live in system daemons, not in the job).
    pub leaked_bytes: f64,
    /// Per-service up/down flags, indexed like [`SERVICES`].
    pub services_ok: [bool; SERVICES.len()],
    /// Whether the parallel filesystem is mounted.
    pub fs_mounted: bool,
    /// Global ids of GPUs attached to this node (may be empty).
    pub gpus: Vec<u32>,
    /// Job currently occupying the node, if any.
    pub running_job: Option<u32>,
}

impl NodeState {
    /// A healthy idle node with the given memory and GPUs.
    pub fn new(mem_total_bytes: f64, gpus: Vec<u32>) -> NodeState {
        NodeState {
            health: NodeHealth::Up,
            cpu_util: 0.0,
            mem_total_bytes,
            mem_used_bytes: 0.05 * mem_total_bytes, // OS baseline
            mem_leak_bytes_per_tick: 0.0,
            leaked_bytes: 0.0,
            services_ok: [true; SERVICES.len()],
            fs_mounted: true,
            gpus,
            running_job: None,
        }
    }

    /// Free memory, bytes.
    pub fn free_mem_bytes(&self) -> f64 {
        (self.mem_total_bytes - self.mem_used_bytes).max(0.0)
    }

    /// Memory utilization in `[0, 1]`.
    pub fn mem_util(&self) -> f64 {
        (self.mem_used_bytes / self.mem_total_bytes).clamp(0.0, 1.0)
    }

    /// Whether the node can accept a new job: up, idle, services healthy,
    /// filesystem mounted (the CSCS pre-job health assessment).
    pub fn schedulable(&self) -> bool {
        self.health == NodeHealth::Up
            && self.running_job.is_none()
            && self.services_ok.iter().all(|&s| s)
            && self.fs_mounted
    }

    /// Whether the node passes a health check (ignores occupancy).
    pub fn passes_health_check(&self) -> bool {
        self.health == NodeHealth::Up
            && self.services_ok.iter().all(|&s| s)
            && self.fs_mounted
            && self.mem_util() < 0.97
    }

    /// Apply the per-tick memory leak; accumulated leak is capped so used
    /// memory cannot exceed installed memory.
    pub fn apply_leak(&mut self) {
        if self.mem_leak_bytes_per_tick > 0.0 {
            self.leaked_bytes =
                (self.leaked_bytes + self.mem_leak_bytes_per_tick).min(0.95 * self.mem_total_bytes);
            self.mem_used_bytes =
                (self.mem_used_bytes + self.mem_leak_bytes_per_tick).min(self.mem_total_bytes);
        }
    }

    /// Set memory use from the current job phase: OS baseline, job
    /// memory, and whatever the leak has eaten.  `job_fraction` is the
    /// phase's fraction of node memory.
    pub fn set_job_memory(&mut self, job_fraction: f64) {
        let base = 0.05 * self.mem_total_bytes;
        let job = job_fraction.clamp(0.0, 1.0) * 0.9 * self.mem_total_bytes;
        self.mem_used_bytes = (base + job + self.leaked_bytes).min(self.mem_total_bytes);
    }

    /// Reset transient per-job state when the node becomes idle.  Leaked
    /// memory persists — leaks in system daemons survive job boundaries,
    /// which is what makes them worth monitoring.
    pub fn release(&mut self) {
        self.running_job = None;
        self.cpu_util = 0.0;
        self.set_job_memory(0.0);
    }

    /// Mark crashed: all services gone, memory state lost.
    pub fn crash(&mut self) {
        self.health = NodeHealth::Down;
        self.services_ok = [false; SERVICES.len()];
        self.fs_mounted = false;
        self.cpu_util = 0.0;
        self.running_job = None;
    }

    /// Recover to a clean healthy state (reboot clears leaks too).
    pub fn recover(&mut self) {
        self.health = NodeHealth::Up;
        self.services_ok = [true; SERVICES.len()];
        self.fs_mounted = true;
        self.cpu_util = 0.0;
        self.mem_used_bytes = 0.05 * self.mem_total_bytes;
        self.mem_leak_bytes_per_tick = 0.0;
        self.leaked_bytes = 0.0;
        self.running_job = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn node() -> NodeState {
        NodeState::new(64.0 * GIB, vec![0])
    }

    #[test]
    fn fresh_node_is_schedulable() {
        let n = node();
        assert!(n.schedulable());
        assert!(n.passes_health_check());
        assert!(n.free_mem_bytes() > 0.9 * 64.0 * GIB);
    }

    #[test]
    fn occupied_node_not_schedulable_but_healthy() {
        let mut n = node();
        n.running_job = Some(3);
        assert!(!n.schedulable());
        assert!(n.passes_health_check());
    }

    #[test]
    fn dead_service_fails_health_check() {
        let mut n = node();
        n.services_ok[service_index("munge").unwrap()] = false;
        assert!(!n.schedulable());
        assert!(!n.passes_health_check());
    }

    #[test]
    fn unmounted_fs_fails_health_check() {
        let mut n = node();
        n.fs_mounted = false;
        assert!(!n.passes_health_check());
    }

    #[test]
    fn memory_exhaustion_fails_health_check() {
        let mut n = node();
        n.mem_used_bytes = 0.99 * n.mem_total_bytes;
        assert!(!n.passes_health_check());
        assert!(n.mem_util() > 0.97);
    }

    #[test]
    fn leak_accumulates_and_caps() {
        let mut n = node();
        n.mem_leak_bytes_per_tick = 40.0 * GIB;
        let before = n.mem_used_bytes;
        n.apply_leak();
        assert!(n.mem_used_bytes > before);
        assert!(n.leaked_bytes > 0.0);
        n.apply_leak();
        n.apply_leak();
        assert_eq!(n.mem_used_bytes, n.mem_total_bytes, "capped at total");
        assert!(n.leaked_bytes <= 0.95 * n.mem_total_bytes);
    }

    #[test]
    fn job_memory_includes_leak() {
        let mut n = node();
        n.leaked_bytes = 10.0 * GIB;
        n.set_job_memory(0.5);
        let expected = 0.05 * 64.0 * GIB + 0.5 * 0.9 * 64.0 * GIB + 10.0 * GIB;
        assert!((n.mem_used_bytes - expected).abs() < 1.0);
        // Releasing keeps the leak in the accounting.
        n.release();
        assert!((n.mem_used_bytes - (0.05 * 64.0 * GIB + 10.0 * GIB)).abs() < 1.0);
    }

    #[test]
    fn recover_clears_leak() {
        let mut n = node();
        n.mem_leak_bytes_per_tick = 1.0 * GIB;
        n.apply_leak();
        n.recover();
        assert_eq!(n.leaked_bytes, 0.0);
        assert_eq!(n.mem_leak_bytes_per_tick, 0.0);
    }

    #[test]
    fn crash_and_recover() {
        let mut n = node();
        n.running_job = Some(1);
        n.crash();
        assert_eq!(n.health, NodeHealth::Down);
        assert!(!n.schedulable());
        assert!(n.running_job.is_none());
        n.recover();
        assert_eq!(n.health, NodeHealth::Up);
        assert!(n.schedulable());
        assert!(n.fs_mounted);
    }

    #[test]
    fn release_returns_memory_but_keeps_leak_config() {
        let mut n = node();
        n.running_job = Some(1);
        n.mem_used_bytes = 0.5 * n.mem_total_bytes;
        n.mem_leak_bytes_per_tick = 1.0;
        n.release();
        assert!(n.running_job.is_none());
        assert!((n.mem_used_bytes - 0.05 * n.mem_total_bytes).abs() < 1.0);
        assert_eq!(n.mem_leak_bytes_per_tick, 1.0);
    }

    #[test]
    fn gpu_failure_probability_grows_past_threshold() {
        let mut g = GpuState::new();
        assert_eq!(g.failure_probability(), 0.0);
        g.resistance_drift_pct = 5.0;
        assert_eq!(g.failure_probability(), 0.0);
        g.resistance_drift_pct = 15.0;
        let p1 = g.failure_probability();
        assert!(p1 > 0.0);
        g.resistance_drift_pct = 30.0;
        assert!(g.failure_probability() > p1);
        g.healthy = false;
        assert_eq!(g.failure_probability(), 0.0, "already failed");
    }

    #[test]
    fn service_index_lookup() {
        assert_eq!(service_index("slurmd"), Some(0));
        assert_eq!(service_index("nope"), None);
    }

    #[test]
    fn hung_node_is_not_schedulable() {
        let mut n = node();
        n.health = NodeHealth::Hung;
        assert!(!n.schedulable());
        assert!(!n.passes_health_check());
    }
}
