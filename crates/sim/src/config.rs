//! Top-level simulator configuration.

use crate::burst_buffer::BbConfig;
use crate::failure::FailureRates;
use crate::fs::FsConfig;
use crate::power::PowerModel;
use crate::routing::RoutePolicy;
use crate::sched::SchedulerConfig;
use crate::topology::TopologySpec;
use serde::{Deserialize, Serialize};

/// Per-node clock behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// When false, node clocks drift (the paper's association hazard).
    pub synchronized: bool,
    /// Maximum initial offset, ms (drifting mode).
    pub max_offset_ms: u64,
    /// Maximum rate error, ppm (drifting mode).
    pub max_rate_ppm: f64,
}

impl ClockConfig {
    /// NTP-disciplined clocks.
    pub fn synced() -> ClockConfig {
        ClockConfig { synchronized: true, max_offset_ms: 0, max_rate_ppm: 0.0 }
    }

    /// Free-running commodity clocks.
    pub fn drifting(max_offset_ms: u64, max_rate_ppm: f64) -> ClockConfig {
        ClockConfig { synchronized: false, max_offset_ms, max_rate_ppm }
    }
}

/// Everything needed to build a [`crate::SimEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Interconnect shape.
    pub topology: TopologySpec,
    /// Per-link capacity, bytes/second.
    pub link_capacity_bytes_per_sec: f64,
    /// Routing policy.
    pub route_policy: RoutePolicy,
    /// Adaptive-routing detour threshold (load fraction).
    pub congestion_threshold: f64,
    /// Node memory, bytes.
    pub node_mem_bytes: f64,
    /// GPUs per node (0 for CPU-only partitions).
    pub gpus_per_node: u32,
    /// Filesystem shape.
    pub fs: FsConfig,
    /// Optional burst-buffer tier (None = writes go straight to the PFS).
    pub burst_buffer: Option<BbConfig>,
    /// Power model.
    pub power: PowerModel,
    /// Scheduler behaviour.
    pub scheduler: SchedulerConfig,
    /// Background failure rates.
    pub failure_rates: FailureRates,
    /// Clock behaviour.
    pub clock: ClockConfig,
    /// Simulation tick, ms (60_000 = the NCSA one-minute cadence).
    pub tick_ms: u64,
    /// GPU resistor drift per ppb·s of SO₂ exceedance (ORNL corrosion).
    pub gpu_corrosion_pct_per_ppb_s: f64,
    /// Master RNG seed; equal seeds reproduce runs exactly.
    pub seed: u64,
}

impl SimConfig {
    /// A small machine for unit and integration tests: 128 nodes on a
    /// 4×4×4 torus, reliable, synchronized, one-minute ticks.
    pub fn small() -> SimConfig {
        SimConfig {
            topology: TopologySpec::Torus3D { dims: [4, 4, 4], nodes_per_router: 2 },
            link_capacity_bytes_per_sec: 10.0e9,
            route_policy: RoutePolicy::Minimal,
            congestion_threshold: 0.8,
            node_mem_bytes: 64.0 * (1u64 << 30) as f64,
            gpus_per_node: 1,
            fs: FsConfig::scratch(),
            burst_buffer: None,
            power: PowerModel::xc40(),
            scheduler: SchedulerConfig::default(),
            failure_rates: FailureRates::none(),
            clock: ClockConfig::synced(),
            tick_ms: 60_000,
            gpu_corrosion_pct_per_ppb_s: 1.0e-4,
            seed: 42,
        }
    }

    /// A mid-size dragonfly machine (Aries-flavored), used by the
    /// congestion and power experiments.
    pub fn dragonfly_medium() -> SimConfig {
        SimConfig {
            topology: TopologySpec::Dragonfly {
                groups: 8,
                routers_per_group: 16,
                nodes_per_router: 4,
            },
            ..SimConfig::small()
        }
    }

    /// Validate invariants; call before building an engine.
    pub fn validate(&self) -> Result<(), String> {
        if self.tick_ms == 0 {
            return Err("tick_ms must be positive".into());
        }
        if self.link_capacity_bytes_per_sec <= 0.0 {
            return Err("link capacity must be positive".into());
        }
        if self.node_mem_bytes <= 0.0 {
            return Err("node memory must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.congestion_threshold) {
            return Err("congestion threshold must be in [0,1]".into());
        }
        if self.fs.num_osts == 0 {
            return Err("filesystem needs at least one OST".into());
        }
        if let Some(bb) = &self.burst_buffer {
            if bb.num_nodes == 0 || bb.capacity_bytes <= 0.0 {
                return Err("burst buffer needs nodes and capacity".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_valid() {
        assert!(SimConfig::small().validate().is_ok());
        assert!(SimConfig::dragonfly_medium().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig::small();
        c.tick_ms = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small();
        c.link_capacity_bytes_per_sec = 0.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small();
        c.node_mem_bytes = -1.0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small();
        c.congestion_threshold = 1.5;
        assert!(c.validate().is_err());

        let mut c = SimConfig::small();
        c.fs.num_osts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = SimConfig::small();
        let s = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn clock_config_modes() {
        assert!(ClockConfig::synced().synchronized);
        let d = ClockConfig::drifting(5_000, 100.0);
        assert!(!d.synchronized);
        assert_eq!(d.max_offset_ms, 5_000);
    }
}
