//! Lustre-like parallel filesystem: one metadata server, many object
//! storage targets.
//!
//! NCSA (paper §II-2) probes "file I/O and metadata action response
//! latencies" against "each independent filesystem component" because
//! filesystem degradation "can severely impact job performance and system
//! efficiency".  The model here provides those observables: per-OST byte
//! throughput and load-dependent latency, MDS op latency, and injectable
//! degradation (a slow OST multiplies its base latency — the classic
//! flaky-controller failure).

use hpcmon_metrics::StateHash;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsConfig {
    /// Number of object storage targets.
    pub num_osts: u32,
    /// Aggregate bytes/second one OST can serve.
    pub ost_bandwidth_bytes_per_sec: f64,
    /// Healthy OST base latency, ms.
    pub ost_base_latency_ms: f64,
    /// Metadata ops/second the MDS can serve.
    pub mds_ops_per_sec: f64,
    /// Healthy MDS base latency, ms.
    pub mds_base_latency_ms: f64,
}

impl FsConfig {
    /// A modest scratch filesystem.
    pub fn scratch() -> FsConfig {
        FsConfig {
            num_osts: 16,
            ost_bandwidth_bytes_per_sec: 2.0e9,
            ost_base_latency_ms: 2.0,
            mds_ops_per_sec: 50_000.0,
            mds_base_latency_ms: 0.5,
        }
    }
}

/// State of one OST.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OstState {
    /// Latency multiplier from injected degradation (1.0 = healthy).
    pub degradation_factor: f64,
    /// Bytes read this tick.
    pub read_bytes: f64,
    /// Bytes written this tick.
    pub write_bytes: f64,
    /// Offered demand this tick (read + write), before capacity limiting.
    pub demand_bytes: f64,
}

/// Filesystem state: OSTs + MDS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsState {
    config: FsConfig,
    osts: Vec<OstState>,
    mds_ops_this_tick: f64,
    mds_degradation_factor: f64,
    last_dt_ms: u64,
}

impl FsState {
    /// Fresh healthy filesystem.
    pub fn new(config: FsConfig) -> FsState {
        assert!(config.num_osts >= 1);
        FsState {
            config,
            osts: vec![
                OstState {
                    degradation_factor: 1.0,
                    read_bytes: 0.0,
                    write_bytes: 0.0,
                    demand_bytes: 0.0,
                };
                config.num_osts as usize
            ],
            mds_ops_this_tick: 0.0,
            mds_degradation_factor: 1.0,
            last_dt_ms: 0,
        }
    }

    /// Configuration.
    pub fn config(&self) -> FsConfig {
        self.config
    }

    /// Fold the full filesystem state into a flight-recorder digest.
    pub fn digest_into(&self, h: &mut StateHash) {
        h.usize(self.osts.len());
        for o in &self.osts {
            h.f64(o.degradation_factor).f64(o.read_bytes).f64(o.write_bytes).f64(o.demand_bytes);
        }
        h.f64(self.mds_ops_this_tick).f64(self.mds_degradation_factor).u64(self.last_dt_ms);
    }

    /// Number of OSTs.
    pub fn num_osts(&self) -> u32 {
        self.config.num_osts
    }

    /// Reset per-tick accumulators.
    pub fn begin_tick(&mut self) {
        for o in &mut self.osts {
            o.read_bytes = 0.0;
            o.write_bytes = 0.0;
            o.demand_bytes = 0.0;
        }
        self.mds_ops_this_tick = 0.0;
    }

    /// Offer I/O from a client.  Striping: demand is spread round-robin
    /// over OSTs starting at `stripe_offset` (callers pass e.g. job id so
    /// different jobs hit different OSTs first).  Returns achieved
    /// (read, write) bytes after per-OST capacity limiting — capacity
    /// enforcement happens immediately against demand accumulated so far
    /// this tick, which is a fair fluid approximation.
    pub fn offer_io(
        &mut self,
        stripe_offset: u32,
        read_bytes: f64,
        write_bytes: f64,
        metadata_ops: f64,
        dt_ms: u64,
    ) -> (f64, f64) {
        self.last_dt_ms = dt_ms;
        self.mds_ops_this_tick += metadata_ops;
        let n = self.osts.len();
        let cap = self.config.ost_bandwidth_bytes_per_sec * dt_ms as f64 / 1_000.0;
        let per_ost_read = read_bytes / n as f64;
        let per_ost_write = write_bytes / n as f64;
        let mut got_read = 0.0;
        let mut got_write = 0.0;
        for i in 0..n {
            let idx = (stripe_offset as usize + i) % n;
            let ost = &mut self.osts[idx];
            let want = per_ost_read + per_ost_write;
            ost.demand_bytes += want;
            // A degraded OST serves proportionally less.
            let effective_cap = cap / ost.degradation_factor;
            let already = ost.read_bytes + ost.write_bytes;
            let room = (effective_cap - already).max(0.0);
            let fraction = if want > 0.0 { (room / want).min(1.0) } else { 1.0 };
            ost.read_bytes += per_ost_read * fraction;
            ost.write_bytes += per_ost_write * fraction;
            got_read += per_ost_read * fraction;
            got_write += per_ost_write * fraction;
        }
        (got_read, got_write)
    }

    /// Degrade (or restore, with 1.0) an OST's service rate/latency.
    pub fn set_ost_degradation(&mut self, ost: u32, factor: f64) {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.osts[ost as usize].degradation_factor = factor;
    }

    /// Degrade (or restore) the MDS.
    pub fn set_mds_degradation(&mut self, factor: f64) {
        assert!(factor >= 1.0);
        self.mds_degradation_factor = factor;
    }

    /// Current I/O latency of an OST in ms: base × degradation × queueing.
    /// The queueing term grows quadratically in utilization, the standard
    /// M/M/1-flavored knee that makes "slow filesystem" visible to probes
    /// long before hard saturation.
    pub fn ost_latency_ms(&self, ost: u32) -> f64 {
        let o = &self.osts[ost as usize];
        // Queueing is against the *effective* (degraded) service rate: a
        // degraded OST is busier at the same byte count.
        let util = (self.ost_utilization(ost) * o.degradation_factor).clamp(0.0, 1.0);
        self.config.ost_base_latency_ms * o.degradation_factor * (1.0 + 9.0 * util * util)
    }

    /// OST utilization in `[0, 1]` over the last tick.
    pub fn ost_utilization(&self, ost: u32) -> f64 {
        if self.last_dt_ms == 0 {
            return 0.0;
        }
        let cap = self.config.ost_bandwidth_bytes_per_sec * self.last_dt_ms as f64 / 1_000.0;
        let o = &self.osts[ost as usize];
        ((o.read_bytes + o.write_bytes) / cap).clamp(0.0, 1.0)
    }

    /// Metadata op latency in ms, load- and degradation-dependent.
    pub fn mds_latency_ms(&self) -> f64 {
        let util = self.mds_utilization();
        self.config.mds_base_latency_ms * self.mds_degradation_factor * (1.0 + 9.0 * util * util)
    }

    /// MDS utilization in `[0, 1]` over the last tick.
    pub fn mds_utilization(&self) -> f64 {
        if self.last_dt_ms == 0 {
            return 0.0;
        }
        let cap = self.config.mds_ops_per_sec * self.last_dt_ms as f64 / 1_000.0;
        (self.mds_ops_this_tick / cap).clamp(0.0, 1.0)
    }

    /// Bytes read from an OST this tick.
    pub fn ost_read_bytes(&self, ost: u32) -> f64 {
        self.osts[ost as usize].read_bytes
    }

    /// Bytes written to an OST this tick.
    pub fn ost_write_bytes(&self, ost: u32) -> f64 {
        self.osts[ost as usize].write_bytes
    }

    /// Aggregate read bytes/second over the last tick (the Figure 4 top
    /// panel series).
    pub fn aggregate_read_bytes_per_sec(&self) -> f64 {
        if self.last_dt_ms == 0 {
            return 0.0;
        }
        self.osts.iter().map(|o| o.read_bytes).sum::<f64>() * 1_000.0 / self.last_dt_ms as f64
    }

    /// Aggregate write bytes/second over the last tick.
    pub fn aggregate_write_bytes_per_sec(&self) -> f64 {
        if self.last_dt_ms == 0 {
            return 0.0;
        }
        self.osts.iter().map(|o| o.write_bytes).sum::<f64>() * 1_000.0 / self.last_dt_ms as f64
    }

    /// Degradation factor of an OST.
    pub fn ost_degradation(&self, ost: u32) -> f64 {
        self.osts[ost as usize].degradation_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> FsState {
        FsState::new(FsConfig {
            num_osts: 4,
            ost_bandwidth_bytes_per_sec: 1_000.0,
            ost_base_latency_ms: 2.0,
            mds_ops_per_sec: 100.0,
            mds_base_latency_ms: 0.5,
        })
    }

    #[test]
    fn light_io_is_fully_served() {
        let mut f = fs();
        f.begin_tick();
        let (r, w) = f.offer_io(0, 400.0, 400.0, 10.0, 1_000);
        assert!((r - 400.0).abs() < 1e-9);
        assert!((w - 400.0).abs() < 1e-9);
        // Striped evenly: each OST got 200 bytes of 1000 capacity.
        for o in 0..4 {
            assert!((f.ost_read_bytes(o) - 100.0).abs() < 1e-9);
            assert!((f.ost_utilization(o) - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn saturated_ost_limits_throughput() {
        let mut f = fs();
        f.begin_tick();
        // 8000 bytes read over 4 OSTs of 1000 B/s for 1 s = 4000 max.
        let (r, _) = f.offer_io(0, 8_000.0, 0.0, 0.0, 1_000);
        assert!((r - 4_000.0).abs() < 1e-6);
        for o in 0..4 {
            assert!((f.ost_utilization(o) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let mut f = fs();
        f.begin_tick();
        f.offer_io(0, 100.0, 0.0, 0.0, 1_000);
        let light = f.ost_latency_ms(0);
        f.begin_tick();
        f.offer_io(0, 4_000.0, 0.0, 0.0, 1_000);
        let heavy = f.ost_latency_ms(0);
        assert!(heavy > 2.0 * light, "light {light} heavy {heavy}");
    }

    #[test]
    fn degraded_ost_is_slower_and_serves_less() {
        let mut f = fs();
        f.set_ost_degradation(1, 8.0);
        f.begin_tick();
        let (r, _) = f.offer_io(0, 4_000.0, 0.0, 0.0, 1_000);
        // OST 1 can only serve 125 of its 1000-byte share.
        assert!(r < 3_200.0, "got {r}");
        assert!(f.ost_latency_ms(1) > f.ost_latency_ms(0));
        assert_eq!(f.ost_degradation(1), 8.0);
    }

    #[test]
    #[should_panic(expected = "factor must be >= 1")]
    fn degradation_below_one_rejected() {
        fs().set_ost_degradation(0, 0.5);
    }

    #[test]
    fn mds_latency_grows_with_ops() {
        let mut f = fs();
        f.begin_tick();
        f.offer_io(0, 0.0, 0.0, 5.0, 1_000);
        let light = f.mds_latency_ms();
        f.begin_tick();
        f.offer_io(0, 0.0, 0.0, 100.0, 1_000);
        let heavy = f.mds_latency_ms();
        assert!(heavy > light);
        assert!((f.mds_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_rates_scale_with_dt() {
        let mut f = fs();
        f.begin_tick();
        f.offer_io(0, 200.0, 100.0, 0.0, 500);
        assert!((f.aggregate_read_bytes_per_sec() - 400.0).abs() < 1e-9);
        assert!((f.aggregate_write_bytes_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn begin_tick_resets() {
        let mut f = fs();
        f.begin_tick();
        f.offer_io(0, 100.0, 100.0, 10.0, 1_000);
        f.begin_tick();
        assert_eq!(f.ost_read_bytes(0), 0.0);
        assert_eq!(f.aggregate_read_bytes_per_sec(), 0.0);
    }

    #[test]
    fn stripe_offset_rotates_first_ost() {
        let mut f = fs();
        f.begin_tick();
        // With capacity 1000/OST and 5000 requested over 4 OSTs, every OST
        // saturates regardless of offset; use a tiny demand instead and a
        // single-OST check via degradation asymmetry is overkill — just
        // verify both offsets serve equally when unloaded.
        let (r1, _) = f.offer_io(0, 400.0, 0.0, 0.0, 1_000);
        f.begin_tick();
        let (r2, _) = f.offer_io(2, 400.0, 0.0, 0.0, 1_000);
        assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn zero_dt_reports_zero_rates() {
        let f = fs();
        assert_eq!(f.aggregate_read_bytes_per_sec(), 0.0);
        assert_eq!(f.ost_utilization(0), 0.0);
        assert_eq!(f.mds_utilization(), 0.0);
    }
}
