//! Global simulation time and per-node clock drift.
//!
//! §III-B of the paper: "Associating numerical or log events over components
//! and time is particularly tricky when a single global timestamp is
//! unavailable as local clock drift can result in erroneous associations."
//! [`DriftClock`] models exactly that failure mode: each node's local clock
//! runs at a slightly wrong rate with a fixed initial offset, so a log line
//! stamped locally lands at the wrong global time unless corrected.

use crate::rng::Rng;
use hpcmon_metrics::{Ts, TsDelta};
use serde::{Deserialize, Serialize};

/// Per-node drift parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeDrift {
    /// Initial offset of the local clock (ms, signed).
    pub offset_ms: i64,
    /// Rate error in parts per million (positive = local clock runs fast).
    pub rate_ppm: f64,
}

/// Clock drift model for the whole machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftClock {
    drifts: Vec<NodeDrift>,
    /// When true, local timestamps equal global time (NTP-perfect machine).
    pub synchronized: bool,
}

impl DriftClock {
    /// A perfectly synchronized machine (the baseline the paper wishes for).
    pub fn synchronized(nodes: usize) -> DriftClock {
        DriftClock {
            drifts: vec![NodeDrift { offset_ms: 0, rate_ppm: 0.0 }; nodes],
            synchronized: true,
        }
    }

    /// A machine whose node clocks drift, with offsets up to
    /// `max_offset_ms` and rate errors up to `max_rate_ppm` (both uniform,
    /// signed).  Typical unsynchronized commodity clocks drift tens of ppm;
    /// offsets of seconds accumulate over days.
    pub fn drifting(
        nodes: usize,
        max_offset_ms: u64,
        max_rate_ppm: f64,
        rng: &mut Rng,
    ) -> DriftClock {
        let drifts = (0..nodes)
            .map(|_| NodeDrift {
                offset_ms: rng.range_f64(-(max_offset_ms as f64), max_offset_ms as f64 + 1.0)
                    as i64,
                rate_ppm: rng.range_f64(-max_rate_ppm, max_rate_ppm),
            })
            .collect();
        DriftClock { drifts, synchronized: false }
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.drifts.len()
    }

    /// The local timestamp node `node` would put on an event occurring at
    /// global time `global`.
    pub fn local_time(&self, node: u32, global: Ts) -> Ts {
        if self.synchronized {
            return global;
        }
        let d = self.drifts[node as usize];
        let skew = d.offset_ms as f64 + global.0 as f64 * d.rate_ppm * 1e-6;
        global + TsDelta(skew.round() as i64)
    }

    /// The true global time corresponding to a local stamp from `node`
    /// (what an analysis with access to the drift model can recover).
    pub fn to_global(&self, node: u32, local: Ts) -> Ts {
        if self.synchronized {
            return local;
        }
        let d = self.drifts[node as usize];
        // local = global + offset + global*ppm  =>  global = (local - offset)/(1+ppm)
        let global = (local.0 as f64 - d.offset_ms as f64) / (1.0 + d.rate_ppm * 1e-6);
        Ts(global.round().max(0.0) as u64)
    }

    /// Raw drift parameters for a node (exposed for analysis ablations).
    pub fn drift_of(&self, node: u32) -> NodeDrift {
        self.drifts[node as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronized_is_identity() {
        let c = DriftClock::synchronized(4);
        let t = Ts::from_secs(1_000);
        for n in 0..4 {
            assert_eq!(c.local_time(n, t), t);
            assert_eq!(c.to_global(n, t), t);
        }
    }

    #[test]
    fn drift_offsets_within_bounds_at_epoch() {
        let mut rng = Rng::new(1);
        let c = DriftClock::drifting(100, 5_000, 50.0, &mut rng);
        for n in 0..100 {
            let local = c.local_time(n, Ts::ZERO);
            let skew = local.delta(Ts::ZERO).abs_ms();
            assert!(skew <= 5_001, "node {n} skew {skew}");
        }
    }

    #[test]
    fn rate_error_accumulates() {
        let c = DriftClock {
            drifts: vec![NodeDrift { offset_ms: 0, rate_ppm: 100.0 }],
            synchronized: false,
        };
        // 100 ppm over 10,000 seconds = 1 second fast.
        let g = Ts::from_secs(10_000);
        let local = c.local_time(0, g);
        assert_eq!(local.delta(g), TsDelta(1_000));
    }

    #[test]
    fn to_global_inverts_local_time() {
        let mut rng = Rng::new(2);
        let c = DriftClock::drifting(20, 10_000, 200.0, &mut rng);
        for n in 0..20 {
            // Times comfortably past the largest negative offset, so the
            // epoch saturation in `local_time` never engages.
            for secs in [60u64, 3_600, 86_400] {
                let g = Ts::from_secs(secs);
                let recovered = c.to_global(n, c.local_time(n, g));
                // Rounding can cost a millisecond or two.
                assert!(recovered.delta(g).abs_ms() <= 2, "node {n} at {secs}s");
            }
        }
    }

    #[test]
    fn negative_offset_saturates_at_epoch() {
        let c = DriftClock {
            drifts: vec![NodeDrift { offset_ms: -500, rate_ppm: 0.0 }],
            synchronized: false,
        };
        assert_eq!(c.local_time(0, Ts(100)), Ts::ZERO);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = Rng::new(3);
        let c = DriftClock::drifting(3, 100, 10.0, &mut rng);
        let s = serde_json::to_string(&c).unwrap();
        let back: DriftClock = serde_json::from_str(&s).unwrap();
        // JSON float text loses the last ulp; compare with tolerance.
        assert_eq!(back.synchronized, c.synchronized);
        assert_eq!(back.nodes(), c.nodes());
        for n in 0..c.nodes() as u32 {
            assert_eq!(back.drift_of(n).offset_ms, c.drift_of(n).offset_ms);
            assert!((back.drift_of(n).rate_ppm - c.drift_of(n).rate_ppm).abs() < 1e-9);
        }
    }
}
