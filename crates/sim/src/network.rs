//! Fluid network model: per-link loads, bottleneck sharing, stalls, errors.
//!
//! Each tick, running applications offer *flows* (a routed path plus a byte
//! demand).  [`NetworkState::settle`] then applies a single-pass bottleneck
//! model: every link has a byte capacity for the tick, each flow achieves
//! the fraction allowed by its most oversubscribed link, and the excess
//! demand on a link is recorded as *credit stalls* — the Aries/Gemini
//! counter the SNL congestion work in the paper is built on.

use crate::topology::Topology;
use hpcmon_metrics::StateHash;
use serde::{Deserialize, Serialize};

/// One offered flow for the current tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Flow {
    /// Node that injects the traffic (for injection-bandwidth accounting).
    pub src_node: u32,
    /// Routed path as link ids.
    pub path: Vec<u32>,
    /// Bytes the application wants to move this tick.
    pub demand_bytes: f64,
}

/// Per-tick and cumulative state of every link, plus per-node injection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkState {
    capacity_bytes_per_sec: f64,
    link_up: Vec<bool>,
    flows: Vec<Flow>,
    demand: Vec<f64>,
    traffic: Vec<f64>,
    stalls: Vec<f64>,
    errors: Vec<f64>,
    injected: Vec<f64>,
    injection_demand: Vec<f64>,
    cumulative_traffic: Vec<f64>,
    last_dt_ms: u64,
}

impl NetworkState {
    /// Build for a topology with a uniform per-link capacity.
    pub fn new(topo: &Topology, capacity_bytes_per_sec: f64) -> NetworkState {
        assert!(capacity_bytes_per_sec > 0.0);
        let links = topo.num_links() as usize;
        let nodes = topo.num_nodes() as usize;
        NetworkState {
            capacity_bytes_per_sec,
            link_up: vec![true; links],
            flows: Vec::new(),
            demand: vec![0.0; links],
            traffic: vec![0.0; links],
            stalls: vec![0.0; links],
            errors: vec![0.0; links],
            injected: vec![0.0; nodes],
            injection_demand: vec![0.0; nodes],
            cumulative_traffic: vec![0.0; links],
            last_dt_ms: 0,
        }
    }

    /// Fold the full network state into a flight-recorder digest.
    pub fn digest_into(&self, h: &mut StateHash) {
        h.f64(self.capacity_bytes_per_sec)
            .bools(&self.link_up)
            .usize(self.flows.len())
            .f64s(&self.demand)
            .f64s(&self.traffic)
            .f64s(&self.stalls)
            .f64s(&self.errors)
            .f64s(&self.injected)
            .f64s(&self.injection_demand)
            .f64s(&self.cumulative_traffic)
            .u64(self.last_dt_ms);
    }

    /// Per-link capacity in bytes/second.
    pub fn capacity_bytes_per_sec(&self) -> f64 {
        self.capacity_bytes_per_sec
    }

    /// Reset per-tick accumulators.  Call once at the start of each tick.
    pub fn begin_tick(&mut self) {
        self.flows.clear();
        self.demand.iter_mut().for_each(|d| *d = 0.0);
        self.traffic.iter_mut().for_each(|t| *t = 0.0);
        self.stalls.iter_mut().for_each(|s| *s = 0.0);
        self.errors.iter_mut().for_each(|e| *e = 0.0);
        self.injected.iter_mut().for_each(|i| *i = 0.0);
        self.injection_demand.iter_mut().for_each(|i| *i = 0.0);
    }

    /// Offer a flow for this tick.  Zero-demand and empty-path (same-router)
    /// flows are accepted; an empty path always achieves full demand.
    pub fn offer_flow(&mut self, src_node: u32, path: Vec<u32>, demand_bytes: f64) {
        debug_assert!(demand_bytes >= 0.0);
        for &l in &path {
            self.demand[l as usize] += demand_bytes;
        }
        self.injection_demand[src_node as usize] += demand_bytes;
        self.flows.push(Flow { src_node, path, demand_bytes });
    }

    /// Settle all offered flows for a tick of `dt_ms` and account traffic,
    /// stalls, and injection.  Returns per-flow achieved bytes in offer
    /// order.
    pub fn settle(&mut self, dt_ms: u64) -> Vec<f64> {
        self.last_dt_ms = dt_ms;
        let cap = self.capacity_bytes_per_sec * dt_ms as f64 / 1_000.0;
        let flows = std::mem::take(&mut self.flows);
        let mut achieved = Vec::with_capacity(flows.len());
        for flow in &flows {
            let mut fraction: f64 = 1.0;
            for &l in &flow.path {
                let li = l as usize;
                if !self.link_up[li] {
                    fraction = 0.0;
                    break;
                }
                if self.demand[li] > cap {
                    fraction = fraction.min(cap / self.demand[li]);
                }
            }
            let got = flow.demand_bytes * fraction;
            for &l in &flow.path {
                let li = l as usize;
                self.traffic[li] += got;
                self.cumulative_traffic[li] += got;
            }
            self.injected[flow.src_node as usize] += got;
            achieved.push(got);
        }
        // Stall accounting: excess demand beyond capacity, per link.
        for li in 0..self.demand.len() {
            let excess =
                if self.link_up[li] { (self.demand[li] - cap).max(0.0) } else { self.demand[li] };
            self.stalls[li] = excess;
        }
        achieved
    }

    /// Mark a link up or down (failure injection).
    pub fn set_link_up(&mut self, link: u32, up: bool) {
        self.link_up[link as usize] = up;
    }

    /// Whether a link is up.
    pub fn link_is_up(&self, link: u32) -> bool {
        self.link_up[link as usize]
    }

    /// Record bit errors observed on a link this tick (set by the engine's
    /// error process).
    pub fn add_link_errors(&mut self, link: u32, errors: f64) {
        self.errors[link as usize] += errors;
    }

    /// Bytes moved over a link this tick.
    pub fn link_traffic_bytes(&self, link: u32) -> f64 {
        self.traffic[link as usize]
    }

    /// Offered demand on a link this tick (bytes).
    pub fn link_demand_bytes(&self, link: u32) -> f64 {
        self.demand[link as usize]
    }

    /// Excess (stalled) bytes on a link this tick.
    pub fn link_stall_bytes(&self, link: u32) -> f64 {
        self.stalls[link as usize]
    }

    /// Bit errors on a link this tick.
    pub fn link_errors(&self, link: u32) -> f64 {
        self.errors[link as usize]
    }

    /// Utilization of a link over the last settled tick, in `[0, 1]`.
    pub fn link_utilization(&self, link: u32) -> f64 {
        if self.last_dt_ms == 0 {
            return 0.0;
        }
        let cap = self.capacity_bytes_per_sec * self.last_dt_ms as f64 / 1_000.0;
        (self.traffic[link as usize] / cap).clamp(0.0, 1.0)
    }

    /// Current per-link load fractions (demand / capacity), for adaptive
    /// routing decisions made *before* settling.
    pub fn load_fractions(&self, dt_ms: u64) -> Vec<f64> {
        let cap = self.capacity_bytes_per_sec * dt_ms as f64 / 1_000.0;
        self.demand.iter().map(|d| d / cap).collect()
    }

    /// Bytes node `node` successfully injected this tick.
    pub fn node_injected_bytes(&self, node: u32) -> f64 {
        self.injected[node as usize]
    }

    /// Bytes node `node` wanted to inject this tick.
    pub fn node_injection_demand(&self, node: u32) -> f64 {
        self.injection_demand[node as usize]
    }

    /// Injection bandwidth as a percentage of one link's capacity — the
    /// Figure 1 metric ("injection of data into the network ... mean
    /// bandwidth utilization as a percent of maximum").
    pub fn node_injection_pct(&self, node: u32) -> f64 {
        if self.last_dt_ms == 0 {
            return 0.0;
        }
        let cap = self.capacity_bytes_per_sec * self.last_dt_ms as f64 / 1_000.0;
        100.0 * self.injected[node as usize] / cap
    }

    /// Lifetime bytes moved over a link.
    pub fn cumulative_link_traffic(&self, link: u32) -> f64 {
        self.cumulative_traffic[link as usize]
    }

    /// Number of links tracked.
    pub fn num_links(&self) -> usize {
        self.link_up.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Topology, TopologySpec};

    fn net() -> (Topology, NetworkState) {
        let topo = Topology::build(TopologySpec::Torus3D { dims: [4, 1, 1], nodes_per_router: 1 });
        let ns = NetworkState::new(&topo, 1_000.0); // 1000 B/s per link
        (topo, ns)
    }

    #[test]
    fn uncongested_flow_achieves_demand() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        let path = crate::routing::minimal_route(&topo, 0, 1);
        ns.offer_flow(0, path.clone(), 500.0);
        let got = ns.settle(1_000);
        assert_eq!(got, vec![500.0]);
        assert_eq!(ns.link_traffic_bytes(path[0]), 500.0);
        assert_eq!(ns.link_stall_bytes(path[0]), 0.0);
        assert!((ns.link_utilization(path[0]) - 0.5).abs() < 1e-12);
        assert_eq!(ns.node_injected_bytes(0), 500.0);
        assert!((ns.node_injection_pct(0) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn oversubscribed_link_shares_proportionally() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        let path = crate::routing::minimal_route(&topo, 0, 1);
        ns.offer_flow(0, path.clone(), 1_500.0);
        ns.offer_flow(0, path.clone(), 500.0);
        let got = ns.settle(1_000);
        // Total demand 2000 on a 1000-capacity link: everyone gets 1/2.
        assert!((got[0] - 750.0).abs() < 1e-9);
        assert!((got[1] - 250.0).abs() < 1e-9);
        assert_eq!(ns.link_stall_bytes(path[0]), 1_000.0);
    }

    #[test]
    fn bottleneck_is_the_worst_link() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        // Flow A uses links 0->1->2; a competing flow saturates 1->2.
        let long = crate::routing::minimal_route(&topo, 0, 2);
        assert_eq!(long.len(), 2);
        let short = crate::routing::minimal_route(&topo, 1, 2);
        ns.offer_flow(0, long, 800.0);
        ns.offer_flow(1, short, 3_200.0);
        let got = ns.settle(1_000);
        // Link 1->2 carries 4000 demand with 1000 capacity: fraction 0.25.
        assert!((got[0] - 200.0).abs() < 1e-9);
        assert!((got[1] - 800.0).abs() < 1e-9);
    }

    #[test]
    fn down_link_kills_flow_and_counts_stalls() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        let path = crate::routing::minimal_route(&topo, 0, 1);
        ns.set_link_up(path[0], false);
        ns.offer_flow(0, path.clone(), 400.0);
        let got = ns.settle(1_000);
        assert_eq!(got, vec![0.0]);
        assert_eq!(ns.link_traffic_bytes(path[0]), 0.0);
        assert_eq!(ns.link_stall_bytes(path[0]), 400.0);
        assert!(!ns.link_is_up(path[0]));
    }

    #[test]
    fn empty_path_always_succeeds() {
        let (_topo, mut ns) = net();
        ns.begin_tick();
        ns.offer_flow(2, Vec::new(), 123.0);
        let got = ns.settle(1_000);
        assert_eq!(got, vec![123.0]);
        assert_eq!(ns.node_injected_bytes(2), 123.0);
    }

    #[test]
    fn begin_tick_resets_per_tick_state_only() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        let path = crate::routing::minimal_route(&topo, 0, 1);
        ns.offer_flow(0, path.clone(), 500.0);
        ns.settle(1_000);
        let link = path[0];
        assert_eq!(ns.cumulative_link_traffic(link), 500.0);
        ns.begin_tick();
        assert_eq!(ns.link_traffic_bytes(link), 0.0);
        assert_eq!(ns.node_injected_bytes(0), 0.0);
        assert_eq!(ns.cumulative_link_traffic(link), 500.0, "cumulative survives");
    }

    #[test]
    fn dt_scales_capacity() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        let path = crate::routing::minimal_route(&topo, 0, 1);
        ns.offer_flow(0, path, 500.0);
        // 100 ms tick => capacity 100 bytes => fraction 0.2.
        let got = ns.settle(100);
        assert!((got[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn error_accounting() {
        let (_topo, mut ns) = net();
        ns.begin_tick();
        ns.add_link_errors(3, 2.0);
        ns.add_link_errors(3, 1.0);
        assert_eq!(ns.link_errors(3), 3.0);
        ns.begin_tick();
        assert_eq!(ns.link_errors(3), 0.0);
    }

    #[test]
    fn injection_demand_tracked_even_when_starved() {
        let (topo, mut ns) = net();
        ns.begin_tick();
        let path = crate::routing::minimal_route(&topo, 0, 1);
        ns.set_link_up(path[0], false);
        ns.offer_flow(0, path, 400.0);
        ns.settle(1_000);
        assert_eq!(ns.node_injection_demand(0), 400.0);
        assert_eq!(ns.node_injected_bytes(0), 0.0);
    }
}
