//! Datacenter environment: temperature, humidity, corrosive gas,
//! particulates.
//!
//! ORNL's Titan story (paper §II-6): GPU failures traced to sulfur
//! corrosion; the site "now monitors their data center environment to
//! ensure that ASHRAE standards for particulate and corrosive gases are
//! exceeded [sic — met]".  NERSC likewise captures environmental data for
//! real-time operations and post-hoc research.  The model provides a
//! diurnal temperature cycle, humidity, an SO₂ concentration with
//! injectable spikes, and a cumulative corrosion *dose* that ages GPU
//! resistors in `hpcmon-sim::node`.

use crate::rng::Rng;
use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// ASHRAE G1 "severity level" boundary for SO₂, in parts per billion.
/// (Classification thresholds approximated from ANSI/ISA-71.04.)
pub const ASHRAE_SO2_G1_LIMIT_PPB: f64 = 10.0;

/// Environment state and parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvState {
    /// Mean machine-room temperature, °C.
    pub base_temp_c: f64,
    /// Diurnal swing amplitude, °C.
    pub temp_swing_c: f64,
    /// Mean relative humidity, percent.
    pub base_humidity_pct: f64,
    /// Baseline SO₂ concentration, ppb.
    pub base_so2_ppb: f64,
    /// Current temperature, °C.
    pub temp_c: f64,
    /// Current relative humidity, percent.
    pub humidity_pct: f64,
    /// Current SO₂ concentration, ppb.
    pub so2_ppb: f64,
    /// Current particulate count (arbitrary ISO-class-like units).
    pub particulates: f64,
    /// Accumulated corrosion dose: ∫ max(0, so2 - G1 limit) dt, in ppb·s.
    pub corrosion_dose_ppb_s: f64,
    /// Active gas spike: (ends_at, added ppb).
    spike: Option<(Ts, f64)>,
}

impl EnvState {
    /// A clean, well-conditioned machine room.
    pub fn new() -> EnvState {
        EnvState {
            base_temp_c: 22.0,
            temp_swing_c: 1.5,
            base_humidity_pct: 45.0,
            base_so2_ppb: 2.0,
            temp_c: 22.0,
            humidity_pct: 45.0,
            so2_ppb: 2.0,
            particulates: 100.0,
            corrosion_dose_ppb_s: 0.0,
            spike: None,
        }
    }

    /// Inject a corrosive-gas spike of `added_ppb` lasting `duration_ms`
    /// from `now` (e.g. construction work near the air intake — the sort of
    /// event ORNL's monitoring now catches).
    pub fn inject_gas_spike(&mut self, now: Ts, added_ppb: f64, duration_ms: u64) {
        self.spike = Some((now.add_ms(duration_ms), added_ppb));
    }

    /// Advance the environment to `now` over a tick of `dt_ms`.
    pub fn step(&mut self, now: Ts, dt_ms: u64, rng: &mut Rng) {
        // Diurnal cycle with period 24h of simulated time.
        let day_fraction = (now.0 % 86_400_000) as f64 / 86_400_000.0;
        let phase = std::f64::consts::TAU * day_fraction;
        self.temp_c =
            self.base_temp_c + self.temp_swing_c * phase.sin() + rng.normal_with(0.0, 0.1);
        self.humidity_pct =
            (self.base_humidity_pct + 5.0 * (phase * 0.5).cos() + rng.normal_with(0.0, 0.5))
                .clamp(0.0, 100.0);
        let spike_ppb = match self.spike {
            Some((until, added)) if now < until => added,
            Some((until, _)) if now >= until => {
                self.spike = None;
                0.0
            }
            _ => 0.0,
        };
        self.so2_ppb = (self.base_so2_ppb + spike_ppb + rng.normal_with(0.0, 0.2)).max(0.0);
        self.particulates = (100.0 + 20.0 * phase.sin() + rng.normal_with(0.0, 3.0)).max(0.0);
        // Corrosion dose integrates exceedance over the ASHRAE limit.
        let exceed = (self.so2_ppb - ASHRAE_SO2_G1_LIMIT_PPB).max(0.0);
        self.corrosion_dose_ppb_s += exceed * dt_ms as f64 / 1_000.0;
    }

    /// Whether the room currently violates the ASHRAE gas limit.
    pub fn exceeds_ashrae_gas_limit(&self) -> bool {
        self.so2_ppb > ASHRAE_SO2_G1_LIMIT_PPB
    }

    /// Fold the full environment state into a flight-recorder digest.
    pub fn digest_into(&self, h: &mut hpcmon_metrics::StateHash) {
        h.f64(self.temp_c)
            .f64(self.humidity_pct)
            .f64(self.so2_ppb)
            .f64(self.particulates)
            .f64(self.corrosion_dose_ppb_s);
        match self.spike {
            Some((until, added)) => h.u64(until.0).f64(added),
            None => h.u64(u64::MAX),
        };
    }
}

impl Default for EnvState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_room_accumulates_no_dose() {
        let mut env = EnvState::new();
        let mut rng = Rng::new(1);
        for m in 0..600 {
            env.step(Ts::from_mins(m), 60_000, &mut rng);
        }
        assert_eq!(env.corrosion_dose_ppb_s, 0.0);
        assert!(!env.exceeds_ashrae_gas_limit());
    }

    #[test]
    fn spike_raises_gas_then_decays() {
        let mut env = EnvState::new();
        let mut rng = Rng::new(2);
        env.inject_gas_spike(Ts::from_mins(10), 40.0, 20 * 60_000);
        // Before the spike window the injection is armed but inactive only
        // if stepped before `now`; our spike starts immediately at its
        // injection time, so step into the window.
        env.step(Ts::from_mins(15), 60_000, &mut rng);
        assert!(env.so2_ppb > 30.0);
        assert!(env.exceeds_ashrae_gas_limit());
        let dose_mid = env.corrosion_dose_ppb_s;
        assert!(dose_mid > 0.0);
        // After the window it returns to baseline.
        env.step(Ts::from_mins(31), 60_000, &mut rng);
        assert!(env.so2_ppb < 5.0);
        env.step(Ts::from_mins(32), 60_000, &mut rng);
        let final_dose = env.corrosion_dose_ppb_s;
        // Dose no longer grows once the spike ends.
        assert!(final_dose - dose_mid < 1.0);
    }

    #[test]
    fn temperature_follows_diurnal_cycle() {
        let mut env = EnvState::new();
        let mut rng = Rng::new(3);
        // Quarter day: sin peak; three quarters: sin trough.
        env.step(Ts(86_400_000 / 4), 60_000, &mut rng);
        let warm = env.temp_c;
        env.step(Ts(3 * 86_400_000 / 4), 60_000, &mut rng);
        let cool = env.temp_c;
        assert!(warm > cool, "warm {warm} cool {cool}");
        assert!(warm < env.base_temp_c + env.temp_swing_c + 1.0);
    }

    #[test]
    fn humidity_stays_in_range() {
        let mut env = EnvState::new();
        let mut rng = Rng::new(4);
        for m in 0..1_000 {
            env.step(Ts::from_mins(m), 60_000, &mut rng);
            assert!((0.0..=100.0).contains(&env.humidity_pct));
            assert!(env.particulates >= 0.0);
            assert!(env.so2_ppb >= 0.0);
        }
    }

    #[test]
    fn dose_is_monotone() {
        let mut env = EnvState::new();
        let mut rng = Rng::new(5);
        env.inject_gas_spike(Ts::ZERO, 100.0, 60 * 60_000);
        let mut last = 0.0;
        for m in 0..60 {
            env.step(Ts::from_mins(m), 60_000, &mut rng);
            assert!(env.corrosion_dose_ppb_s >= last);
            last = env.corrosion_dose_ppb_s;
        }
        assert!(last > 0.0);
    }
}
