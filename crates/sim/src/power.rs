//! Node and cabinet power model.
//!
//! KAUST's approach (paper §II-7, Figure 3) treats power as a universal
//! health signal: application power profiles are repeatable, so deviations
//! reveal hung nodes and load imbalance.  This model makes node power an
//! affine function of CPU and GPU activity plus small noise, which is
//! exactly repeatable-enough for profile matching while leaving room for
//! anomalies to stand out.

use crate::node::{NodeHealth, NodeState};
use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// Power model parameters (watts).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Node power when idle but up.
    pub node_idle_w: f64,
    /// Additional node power at 100% CPU.
    pub cpu_dynamic_w: f64,
    /// Per-GPU idle power.
    pub gpu_idle_w: f64,
    /// Additional per-GPU power at 100% GPU load.
    pub gpu_dynamic_w: f64,
    /// Gaussian measurement/VR noise (std dev, watts).
    pub noise_w: f64,
}

impl PowerModel {
    /// Values typical of an XC40 compute blade share.
    pub fn xc40() -> PowerModel {
        PowerModel {
            node_idle_w: 95.0,
            cpu_dynamic_w: 255.0,
            gpu_idle_w: 25.0,
            gpu_dynamic_w: 225.0,
            noise_w: 2.0,
        }
    }

    /// Instantaneous power of one node.  A `Down` node draws nothing; a
    /// `Hung` node draws idle power (which is how KAUST spots hangs —
    /// "anomalous power-use behaviors within a job ... such as hung
    /// nodes").
    pub fn node_power_w(&self, node: &NodeState, gpu_util: f64, rng: &mut Rng) -> f64 {
        self.node_power_w_at(node, gpu_util, 1.0, rng)
    }

    /// Power at a given CPU frequency scale (p-state).  Dynamic CPU power
    /// follows the classic ~f³ law (P ∝ f·V² with V roughly ∝ f), which is
    /// what makes the SNL p-state sweeps interesting: halving frequency
    /// costs 2× runtime but cuts dynamic power ~8×.
    pub fn node_power_w_at(
        &self,
        node: &NodeState,
        gpu_util: f64,
        freq_scale: f64,
        rng: &mut Rng,
    ) -> f64 {
        let f3 = freq_scale.clamp(0.1, 1.0).powi(3);
        match node.health {
            NodeHealth::Down => 0.0,
            NodeHealth::Hung => {
                let base = self.node_idle_w + node.gpus.len() as f64 * self.gpu_idle_w;
                (base + rng.normal_with(0.0, self.noise_w)).max(0.0)
            }
            NodeHealth::Up => {
                let cpu =
                    self.node_idle_w + self.cpu_dynamic_w * f3 * node.cpu_util.clamp(0.0, 1.0);
                let gpu = node.gpus.len() as f64
                    * (self.gpu_idle_w + self.gpu_dynamic_w * gpu_util.clamp(0.0, 1.0));
                (cpu + gpu + rng.normal_with(0.0, self.noise_w)).max(0.0)
            }
        }
    }

    /// Peak power of a node with `n_gpus` GPUs (for budget computations).
    pub fn node_peak_w(&self, n_gpus: usize) -> f64 {
        self.node_idle_w
            + self.cpu_dynamic_w
            + n_gpus as f64 * (self.gpu_idle_w + self.gpu_dynamic_w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_model() -> PowerModel {
        PowerModel { noise_w: 0.0, ..PowerModel::xc40() }
    }

    fn node_with(cpu: f64, gpus: usize) -> NodeState {
        let mut n = NodeState::new(64e9, (0..gpus as u32).collect());
        n.cpu_util = cpu;
        n
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let m = quiet_model();
        let mut rng = Rng::new(1);
        let p = m.node_power_w(&node_with(0.0, 0), 0.0, &mut rng);
        assert!((p - m.node_idle_w).abs() < 1e-9);
    }

    #[test]
    fn busy_node_draws_more() {
        let m = quiet_model();
        let mut rng = Rng::new(1);
        let idle = m.node_power_w(&node_with(0.0, 0), 0.0, &mut rng);
        let busy = m.node_power_w(&node_with(1.0, 0), 0.0, &mut rng);
        assert!((busy - idle - m.cpu_dynamic_w).abs() < 1e-9);
        // Realistic imbalance signal: busy/idle ratio is large enough to
        // produce the ~3x cabinet variation of Figure 3.
        assert!(busy / idle > 3.0);
    }

    #[test]
    fn gpu_power_adds_per_gpu() {
        let m = quiet_model();
        let mut rng = Rng::new(1);
        let none = m.node_power_w(&node_with(0.5, 0), 0.0, &mut rng);
        let two_idle = m.node_power_w(&node_with(0.5, 2), 0.0, &mut rng);
        let two_busy = m.node_power_w(&node_with(0.5, 2), 1.0, &mut rng);
        assert!((two_idle - none - 2.0 * m.gpu_idle_w).abs() < 1e-9);
        assert!((two_busy - two_idle - 2.0 * m.gpu_dynamic_w).abs() < 1e-9);
    }

    #[test]
    fn down_node_draws_nothing() {
        let m = quiet_model();
        let mut rng = Rng::new(1);
        let mut n = node_with(1.0, 2);
        n.crash();
        assert_eq!(m.node_power_w(&n, 1.0, &mut rng), 0.0);
    }

    #[test]
    fn hung_node_draws_idle() {
        let m = quiet_model();
        let mut rng = Rng::new(1);
        let mut n = node_with(1.0, 1);
        n.health = NodeHealth::Hung;
        let p = m.node_power_w(&n, 1.0, &mut rng);
        assert!((p - m.node_idle_w - m.gpu_idle_w).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = quiet_model();
        let mut rng = Rng::new(1);
        let over = m.node_power_w(&node_with(5.0, 0), 0.0, &mut rng);
        let full = m.node_power_w(&node_with(1.0, 0), 0.0, &mut rng);
        assert_eq!(over, full);
    }

    #[test]
    fn peak_bounds_actual() {
        let m = PowerModel::xc40();
        let mut rng = Rng::new(2);
        for gpus in 0..3usize {
            let peak = m.node_peak_w(gpus);
            for _ in 0..100 {
                let p = m.node_power_w(&node_with(1.0, gpus), 1.0, &mut rng);
                assert!(p <= peak + 5.0 * m.noise_w);
            }
        }
    }

    #[test]
    fn pstate_scaling_follows_cubic_law() {
        let m = quiet_model();
        let mut rng = Rng::new(5);
        let n = node_with(1.0, 0);
        let full = m.node_power_w_at(&n, 0.0, 1.0, &mut rng);
        let half = m.node_power_w_at(&n, 0.0, 0.5, &mut rng);
        // Dynamic part drops to 1/8 at half frequency; idle unchanged.
        let expected = m.node_idle_w + m.cpu_dynamic_w * 0.125;
        assert!((half - expected).abs() < 1e-9, "half {half} expected {expected}");
        assert!(full > half);
        // Scale is clamped.
        let tiny = m.node_power_w_at(&n, 0.0, 0.0, &mut rng);
        assert!(tiny >= m.node_idle_w);
        assert_eq!(m.node_power_w_at(&n, 0.0, 5.0, &mut rng), full);
    }

    #[test]
    fn noise_is_zero_mean() {
        let m = PowerModel::xc40();
        let mut rng = Rng::new(3);
        let n = node_with(0.5, 0);
        let base = m.node_idle_w + 0.5 * m.cpu_dynamic_w;
        let mean: f64 =
            (0..5_000).map(|_| m.node_power_w(&n, 0.0, &mut rng)).sum::<f64>() / 5_000.0;
        assert!((mean - base).abs() < 0.5, "mean {mean} vs base {base}");
    }
}
