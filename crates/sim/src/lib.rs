#![warn(missing_docs)]

//! `hpcmon-sim` — a deterministic simulator of a Cray-class HPC system.
//!
//! The paper's sites run their monitoring against real machines of
//! 1,688–27,648 nodes.  We have no such machine, so this crate provides the
//! substrate the monitoring framework is evaluated on: a discrete-time
//! simulation of
//!
//! * a **topology** (Aries-style dragonfly or Gemini-style 3D torus) with a
//!   fluid **network** model (per-link loads, bottleneck sharing, credit
//!   stalls, bit errors),
//! * **nodes** with CPU/memory/GPU state, services, and health,
//! * a Lustre-like **filesystem** (one MDS, many OSTs) with load-dependent
//!   latency,
//! * a per-node **power** model aggregated per cabinet (the KAUST view),
//! * the **datacenter environment** (temperature, humidity, corrosive gas —
//!   the ORNL sulfur-corrosion story),
//! * **failures** (stochastic and scripted injection),
//! * a **workload** generator with repeatable phased application profiles,
//! * and a **scheduler** (FCFS + backfill; random or topology-aware
//!   placement; optional CSCS-style pre/post-job health gating).
//!
//! Everything is driven by [`engine::SimEngine::step`], is fully
//! deterministic for a given seed, and exposes an observation API that the
//! collectors in `hpcmon-collect` sample — the same way LDMS or Cray's ERD
//! would sample a real system.

pub mod burst_buffer;
pub mod clock;
pub mod config;
pub mod engine;
pub mod env;
pub mod failure;
pub mod fs;
pub mod network;
pub mod node;
pub mod power;
pub mod rng;
pub mod routing;
pub mod sched;
pub mod topology;
pub mod workload;

pub use burst_buffer::{BbConfig, BurstBuffer};
pub use clock::DriftClock;
pub use config::SimConfig;
pub use engine::{SimEngine, SimSnapshot};
pub use failure::{Fault, FaultKind};
pub use rng::Rng;
pub use sched::{Placement, SchedulerConfig};
pub use topology::{Topology, TopologySpec};
pub use workload::{AppProfile, JobSpec, Phase};
