//! Failure injection: scripted faults and stochastic failure rates.
//!
//! Every monitoring story in the paper starts with something breaking —
//! a slow OST, a hung node, a corroding GPU, an HSN link flapping.  The
//! [`FaultPlan`] lets experiments script those events at exact times (so a
//! detector's output can be compared against ground truth), while
//! [`FailureRates`] adds a stochastic background of component failures.

use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// A specific thing that goes wrong (or is repaired).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Node crashes (down, services dead, job killed).
    NodeCrash {
        /// Target node.
        node: u32,
    },
    /// Node hangs (alive at idle power, makes no progress).
    NodeHang {
        /// Target node.
        node: u32,
    },
    /// Node reboots back to health.
    NodeRecover {
        /// Target node.
        node: u32,
    },
    /// HSN link goes down.
    LinkDown {
        /// Target link.
        link: u32,
    },
    /// HSN link restored.
    LinkUp {
        /// Target link.
        link: u32,
    },
    /// HSN link starts throwing bit errors at `error_multiplier` times the
    /// base rate (a marginal cable — the ALCF BER-trend target).
    LinkDegrade {
        /// Target link.
        link: u32,
        /// Multiplier on the base bit-error rate.
        error_multiplier: f64,
    },
    /// OST becomes slow by the given factor (≥ 1).
    OstDegrade {
        /// Target OST.
        ost: u32,
        /// Latency/service multiplier.
        factor: f64,
    },
    /// OST restored to full speed.
    OstRestore {
        /// Target OST.
        ost: u32,
    },
    /// Metadata server becomes slow by the given factor (≥ 1).
    MdsDegrade {
        /// Latency multiplier.
        factor: f64,
    },
    /// Metadata server restored.
    MdsRestore,
    /// A GPU fails its health test permanently.
    GpuFail {
        /// Global GPU id.
        gpu: u32,
    },
    /// A service daemon dies on a node.
    ServiceDown {
        /// Target node.
        node: u32,
        /// Index into [`crate::node::SERVICES`].
        service: u8,
    },
    /// A service daemon is restarted.
    ServiceRestore {
        /// Target node.
        node: u32,
        /// Index into [`crate::node::SERVICES`].
        service: u8,
    },
    /// A memory leak starts on a node.
    MemoryLeak {
        /// Target node.
        node: u32,
        /// Leak rate in bytes per tick.
        bytes_per_tick: f64,
    },
    /// Corrosive gas enters the machine room.
    GasSpike {
        /// Added SO₂ concentration, ppb.
        added_ppb: f64,
        /// Spike duration, ms.
        duration_ms: u64,
    },
    /// Filesystem unmounts on a node (mount check failure).
    FsUnmount {
        /// Target node.
        node: u32,
    },
    /// A burst-buffer node loses its configuration (silently absorbs
    /// nothing — the LANL configuration-check target).
    BbMisconfigure {
        /// Target buffer node.
        bb: u32,
    },
    /// A burst-buffer node's configuration is repaired.
    BbRepair {
        /// Target buffer node.
        bb: u32,
    },
}

/// A fault scheduled at an absolute simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// When it fires.
    pub at: Ts,
    /// What happens.
    pub kind: FaultKind,
}

/// A time-ordered script of faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    cursor: usize,
}

impl FaultPlan {
    /// Empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Build from an unordered list.
    pub fn from_faults(mut faults: Vec<Fault>) -> FaultPlan {
        faults.sort_by_key(|f| f.at);
        FaultPlan { faults, cursor: 0 }
    }

    /// Add a fault (keeps the plan sorted relative to unfired faults).
    pub fn schedule(&mut self, at: Ts, kind: FaultKind) {
        let pos = self.faults[self.cursor..]
            .iter()
            .position(|f| f.at > at)
            .map(|p| self.cursor + p)
            .unwrap_or(self.faults.len());
        self.faults.insert(pos.max(self.cursor), Fault { at, kind });
    }

    /// Pop every fault due at or before `now`, in time order.
    pub fn pop_due(&mut self, now: Ts) -> Vec<Fault> {
        let start = self.cursor;
        while self.cursor < self.faults.len() && self.faults[self.cursor].at <= now {
            self.cursor += 1;
        }
        self.faults[start..self.cursor].to_vec()
    }

    /// Fold the plan position into a flight-recorder digest (fire times
    /// plus cursor; the kinds are covered by their downstream effects).
    pub fn digest_into(&self, h: &mut hpcmon_metrics::StateHash) {
        h.usize(self.faults.len()).usize(self.cursor);
        for f in &self.faults {
            h.u64(f.at.0);
        }
    }

    /// Faults not yet fired.
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.cursor
    }

    /// Total number of scheduled faults (fired + pending).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan holds no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Background stochastic failure rates, per component per hour of
/// simulated time.  Zero disables a process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureRates {
    /// Node crash rate (per node-hour).
    pub node_crash_per_hour: f64,
    /// Node hang rate (per node-hour).
    pub node_hang_per_hour: f64,
    /// Link failure rate (per link-hour).
    pub link_down_per_hour: f64,
    /// Service death rate (per node-hour).
    pub service_down_per_hour: f64,
    /// Base bit-error rate per link: expected errors per GB transferred.
    pub link_errors_per_gb: f64,
}

impl FailureRates {
    /// A reliable machine: nothing fails stochastically.
    pub fn none() -> FailureRates {
        FailureRates {
            node_crash_per_hour: 0.0,
            node_hang_per_hour: 0.0,
            link_down_per_hour: 0.0,
            service_down_per_hour: 0.0,
            link_errors_per_gb: 0.0,
        }
    }

    /// Rates representative of a large production system (a 10k-node
    /// machine sees a handful of node failures a day).
    pub fn production() -> FailureRates {
        FailureRates {
            node_crash_per_hour: 2.0e-5,
            node_hang_per_hour: 1.0e-5,
            link_down_per_hour: 2.0e-6,
            service_down_per_hour: 1.0e-5,
            link_errors_per_gb: 0.05,
        }
    }

    /// Probability of one event in a tick of `dt_ms`, given a per-hour rate.
    pub fn per_tick_probability(rate_per_hour: f64, dt_ms: u64) -> f64 {
        (rate_per_hour * dt_ms as f64 / 3_600_000.0).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_in_order() {
        let mut plan = FaultPlan::from_faults(vec![
            Fault { at: Ts::from_mins(5), kind: FaultKind::NodeCrash { node: 1 } },
            Fault { at: Ts::from_mins(2), kind: FaultKind::LinkDown { link: 0 } },
            Fault { at: Ts::from_mins(2), kind: FaultKind::GpuFail { gpu: 3 } },
        ]);
        assert_eq!(plan.len(), 3);
        let due = plan.pop_due(Ts::from_mins(1));
        assert!(due.is_empty());
        let due = plan.pop_due(Ts::from_mins(2));
        assert_eq!(due.len(), 2);
        assert_eq!(plan.remaining(), 1);
        let due = plan.pop_due(Ts::from_mins(60));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].kind, FaultKind::NodeCrash { node: 1 }));
        assert_eq!(plan.remaining(), 0);
        assert!(plan.pop_due(Ts::from_mins(61)).is_empty());
    }

    #[test]
    fn schedule_into_existing_plan() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.schedule(Ts::from_mins(10), FaultKind::MdsRestore);
        plan.schedule(Ts::from_mins(5), FaultKind::MdsDegrade { factor: 4.0 });
        let due = plan.pop_due(Ts::from_mins(7));
        assert_eq!(due.len(), 1);
        assert!(matches!(due[0].kind, FaultKind::MdsDegrade { .. }));
        // Scheduling after partial consumption still works.
        plan.schedule(Ts::from_mins(8), FaultKind::GasSpike { added_ppb: 50.0, duration_ms: 1 });
        let due = plan.pop_due(Ts::from_mins(20));
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0].kind, FaultKind::GasSpike { .. }));
        assert!(matches!(due[1].kind, FaultKind::MdsRestore));
    }

    #[test]
    fn per_tick_probability_scales() {
        let p = FailureRates::per_tick_probability(1.0, 3_600_000);
        assert!((p - 1.0).abs() < 1e-12);
        let p = FailureRates::per_tick_probability(1.0, 60_000);
        assert!((p - 1.0 / 60.0).abs() < 1e-12);
        // Clamped at 1.
        assert_eq!(FailureRates::per_tick_probability(1e9, 3_600_000), 1.0);
    }

    #[test]
    fn none_rates_are_zero() {
        let r = FailureRates::none();
        assert_eq!(r.node_crash_per_hour, 0.0);
        assert_eq!(r.link_errors_per_gb, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let plan = FaultPlan::from_faults(vec![Fault {
            at: Ts(1),
            kind: FaultKind::MemoryLeak { node: 2, bytes_per_tick: 1e6 },
        }]);
        let s = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&s).unwrap();
        assert_eq!(plan, back);
    }
}
