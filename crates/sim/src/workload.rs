//! Workload model: phased application profiles and job specifications.
//!
//! KAUST (paper §II-7) relies on application power profiles being
//! "repeatable enough" to detect problems by comparison against known-good
//! runs; HLRS (§II-10) classifies aggressors and victims by *runtime
//! variability*.  Both require applications whose resource demands are a
//! deterministic function of execution phase plus bounded noise — which is
//! what [`AppProfile`] provides.

use crate::rng::Rng;
use hpcmon_metrics::Ts;
use serde::{Deserialize, Serialize};

/// How a job's ranks communicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommPattern {
    /// Each rank sends to its successor (halo exchange on a 1D ring).
    Ring,
    /// Each rank sends to `k` pseudo-random partners (spectral/FFT-like).
    Random(u8),
    /// No inter-node communication (embarrassingly parallel).
    None,
}

/// One execution phase of an application, with per-node demand rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in ms of useful work (stretches under contention).
    pub duration_ms: u64,
    /// Target CPU utilization in `[0, 1]`.
    pub cpu: f64,
    /// Target GPU utilization in `[0, 1]` (ignored on GPU-less nodes).
    pub gpu: f64,
    /// Fraction of node memory used during this phase.
    pub mem_fraction: f64,
    /// Network bytes per node per second offered to the HSN.
    pub net_bytes_per_sec: f64,
    /// Filesystem read bytes per node per second.
    pub read_bytes_per_sec: f64,
    /// Filesystem write bytes per node per second.
    pub write_bytes_per_sec: f64,
    /// Metadata operations per node per second.
    pub metadata_ops_per_sec: f64,
}

impl Phase {
    /// A phase that does nothing (barrier/idle).
    pub fn idle(duration_ms: u64) -> Phase {
        Phase {
            duration_ms,
            cpu: 0.02,
            gpu: 0.0,
            mem_fraction: 0.1,
            net_bytes_per_sec: 0.0,
            read_bytes_per_sec: 0.0,
            write_bytes_per_sec: 0.0,
            metadata_ops_per_sec: 0.0,
        }
    }
}

/// A named, repeatable application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Application name (the key for the power-profile library).
    pub name: String,
    /// Phases executed in order (cycled if the job outlives one pass).
    pub phases: Vec<Phase>,
    /// Communication pattern.
    pub comm: CommPattern,
    /// Multiplicative demand noise (std dev as a fraction, e.g. 0.03).
    pub noise: f64,
    /// Optional load-imbalance window: `(from_ms, to_ms, idle_fraction)`
    /// relative to job start — during the window, `idle_fraction` of the
    /// job's nodes sit idle (the Figure 3 pathology).
    pub imbalance: Option<(u64, u64, f64)>,
}

impl AppProfile {
    /// Total per-pass duration.
    pub fn pass_duration_ms(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ms).sum()
    }

    /// The phase active after `elapsed_ms` of useful work (phases cycle).
    pub fn phase_at(&self, elapsed_ms: u64) -> &Phase {
        assert!(!self.phases.is_empty(), "profile must have phases");
        let pass = self.pass_duration_ms();
        if pass == 0 {
            return &self.phases[0];
        }
        let mut t = elapsed_ms % pass;
        for p in &self.phases {
            if t < p.duration_ms {
                return p;
            }
            t -= p.duration_ms;
        }
        self.phases.last().expect("non-empty")
    }

    /// Whether a given rank idles at `elapsed_ms` due to the imbalance
    /// window.  Ranks in the *upper* `idle_fraction` of the job idle, so the
    /// idlers cluster on the same cabinets under contiguous placement —
    /// which is what makes the per-cabinet power variation of Figure 3.
    pub fn rank_idles(&self, rank: usize, n_ranks: usize, elapsed_ms: u64) -> bool {
        match self.imbalance {
            Some((from, to, frac)) if elapsed_ms >= from && elapsed_ms < to => {
                rank >= ((1.0 - frac) * n_ranks as f64).round() as usize
            }
            _ => false,
        }
    }

    /// Apply profile noise to a demand value.
    pub fn jitter(&self, value: f64, rng: &mut Rng) -> f64 {
        if self.noise <= 0.0 {
            return value;
        }
        (value * (1.0 + rng.normal_with(0.0, self.noise))).max(0.0)
    }

    // ----- canonical profiles used by the experiments -----

    /// Compute-bound stencil code: high CPU, modest halo traffic.
    pub fn compute_heavy(name: &str) -> AppProfile {
        AppProfile {
            name: name.to_owned(),
            phases: vec![Phase {
                duration_ms: 10 * 60_000,
                cpu: 0.95,
                gpu: 0.0,
                mem_fraction: 0.5,
                net_bytes_per_sec: 50e6,
                read_bytes_per_sec: 0.0,
                write_bytes_per_sec: 1e6,
                metadata_ops_per_sec: 0.1,
            }],
            comm: CommPattern::Ring,
            noise: 0.02,
            imbalance: None,
        }
    }

    /// Communication-bound code: saturating all-to-all-ish traffic.  These
    /// are the HLRS "victims" when the network is contended.
    pub fn comm_heavy(name: &str) -> AppProfile {
        AppProfile {
            name: name.to_owned(),
            phases: vec![Phase {
                duration_ms: 10 * 60_000,
                cpu: 0.6,
                gpu: 0.0,
                mem_fraction: 0.4,
                net_bytes_per_sec: 2e9,
                read_bytes_per_sec: 0.0,
                write_bytes_per_sec: 0.0,
                metadata_ops_per_sec: 0.1,
            }],
            comm: CommPattern::Random(4),
            noise: 0.02,
            imbalance: None,
        }
    }

    /// Checkpointing simulation: compute phases punctuated by write bursts.
    pub fn checkpointing(name: &str) -> AppProfile {
        AppProfile {
            name: name.to_owned(),
            phases: vec![
                Phase {
                    duration_ms: 8 * 60_000,
                    cpu: 0.9,
                    gpu: 0.5,
                    mem_fraction: 0.6,
                    net_bytes_per_sec: 100e6,
                    read_bytes_per_sec: 0.0,
                    write_bytes_per_sec: 0.0,
                    metadata_ops_per_sec: 0.2,
                },
                Phase {
                    duration_ms: 2 * 60_000,
                    cpu: 0.2,
                    gpu: 0.0,
                    mem_fraction: 0.6,
                    net_bytes_per_sec: 10e6,
                    read_bytes_per_sec: 0.0,
                    write_bytes_per_sec: 500e6,
                    metadata_ops_per_sec: 20.0,
                },
            ],
            comm: CommPattern::Ring,
            noise: 0.02,
            imbalance: None,
        }
    }

    /// I/O storm: a reader that hammers the filesystem (the Figure 4 culprit).
    pub fn io_storm(name: &str) -> AppProfile {
        AppProfile {
            name: name.to_owned(),
            phases: vec![Phase {
                duration_ms: 10 * 60_000,
                cpu: 0.3,
                gpu: 0.0,
                mem_fraction: 0.3,
                net_bytes_per_sec: 10e6,
                read_bytes_per_sec: 3e9,
                write_bytes_per_sec: 100e6,
                metadata_ops_per_sec: 200.0,
            }],
            comm: CommPattern::None,
            noise: 0.05,
            imbalance: None,
        }
    }
}

/// A job submission: which application, how many nodes, how much work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Application profile to run.
    pub app: AppProfile,
    /// Submitting user.
    pub user: String,
    /// Nodes requested.
    pub nodes: u32,
    /// Useful work to perform, in ms of uncontended execution.  Actual
    /// runtime stretches when the network or filesystem starve the app.
    pub work_ms: u64,
    /// Submission time.
    pub submit: Ts,
}

impl JobSpec {
    /// Convenience constructor.
    pub fn new(app: AppProfile, user: &str, nodes: u32, work_ms: u64, submit: Ts) -> JobSpec {
        assert!(nodes >= 1, "a job needs at least one node");
        JobSpec { app, user: user.to_owned(), nodes, work_ms, submit }
    }
}

/// Generates a randomized mix of jobs for steady-state experiments.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    apps: Vec<AppProfile>,
    users: Vec<String>,
    min_nodes: u32,
    max_nodes: u32,
    min_work_ms: u64,
    max_work_ms: u64,
}

impl WorkloadGenerator {
    /// A generator over the canonical application mix.
    pub fn standard(min_nodes: u32, max_nodes: u32) -> WorkloadGenerator {
        assert!(min_nodes >= 1 && max_nodes >= min_nodes);
        WorkloadGenerator {
            apps: vec![
                AppProfile::compute_heavy("stencil3d"),
                AppProfile::comm_heavy("spectral_fft"),
                AppProfile::checkpointing("climate_ckpt"),
            ],
            users: vec!["alice".into(), "bob".into(), "carol".into(), "dave".into()],
            min_nodes,
            max_nodes,
            min_work_ms: 20 * 60_000,
            max_work_ms: 120 * 60_000,
        }
    }

    /// Override the work range.
    pub fn with_work_range(mut self, min_ms: u64, max_ms: u64) -> WorkloadGenerator {
        assert!(min_ms > 0 && max_ms >= min_ms);
        self.min_work_ms = min_ms;
        self.max_work_ms = max_ms;
        self
    }

    /// Draw one job submitted at `submit`.
    pub fn next_job(&self, submit: Ts, rng: &mut Rng) -> JobSpec {
        let app = rng.pick(&self.apps).clone();
        let user = rng.pick(&self.users).clone();
        let nodes = self.min_nodes + rng.below((self.max_nodes - self.min_nodes + 1) as u64) as u32;
        let work = self.min_work_ms + rng.below(self.max_work_ms - self.min_work_ms + 1);
        JobSpec::new(app, &user, nodes, work, submit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_lookup_cycles() {
        let app = AppProfile::checkpointing("x");
        let pass = app.pass_duration_ms();
        assert_eq!(pass, 10 * 60_000);
        // First phase for the first 8 minutes.
        assert_eq!(app.phase_at(0).cpu, 0.9);
        assert_eq!(app.phase_at(7 * 60_000).cpu, 0.9);
        // Checkpoint phase afterwards.
        assert_eq!(app.phase_at(9 * 60_000).cpu, 0.2);
        // Cycles into the second pass.
        assert_eq!(app.phase_at(pass + 60_000).cpu, 0.9);
    }

    #[test]
    fn imbalance_window_idles_upper_ranks() {
        let mut app = AppProfile::compute_heavy("x");
        app.imbalance = Some((60_000, 120_000, 0.5));
        // Outside the window nobody idles.
        assert!(!app.rank_idles(7, 8, 0));
        assert!(!app.rank_idles(7, 8, 120_000));
        // Inside, the upper half idles.
        assert!(app.rank_idles(4, 8, 90_000));
        assert!(app.rank_idles(7, 8, 90_000));
        assert!(!app.rank_idles(3, 8, 90_000));
    }

    #[test]
    fn jitter_zero_noise_is_identity() {
        let mut app = AppProfile::compute_heavy("x");
        app.noise = 0.0;
        let mut rng = Rng::new(1);
        assert_eq!(app.jitter(5.0, &mut rng), 5.0);
    }

    #[test]
    fn jitter_is_bounded_noise() {
        let app = AppProfile::compute_heavy("x"); // noise = 0.02
        let mut rng = Rng::new(2);
        let mean: f64 = (0..10_000).map(|_| app.jitter(100.0, &mut rng)).sum::<f64>() / 10_000.0;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn jitter_never_negative() {
        let mut app = AppProfile::compute_heavy("x");
        app.noise = 5.0; // absurd noise to force negative draws
        let mut rng = Rng::new(3);
        for _ in 0..1_000 {
            assert!(app.jitter(1.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn generator_respects_bounds() {
        let g = WorkloadGenerator::standard(2, 16).with_work_range(1_000, 2_000);
        let mut rng = Rng::new(4);
        for _ in 0..200 {
            let j = g.next_job(Ts::ZERO, &mut rng);
            assert!((2..=16).contains(&j.nodes));
            assert!((1_000..=2_000).contains(&j.work_ms));
            assert!(!j.user.is_empty());
            assert!(!j.app.phases.is_empty());
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let g = WorkloadGenerator::standard(1, 8);
        let mut r1 = Rng::new(9);
        let mut r2 = Rng::new(9);
        for _ in 0..50 {
            assert_eq!(g.next_job(Ts::ZERO, &mut r1), g.next_job(Ts::ZERO, &mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_job_rejected() {
        JobSpec::new(AppProfile::compute_heavy("x"), "u", 0, 1, Ts::ZERO);
    }

    #[test]
    fn idle_phase_is_quiet() {
        let p = Phase::idle(1_000);
        assert!(p.cpu < 0.1);
        assert_eq!(p.net_bytes_per_sec, 0.0);
        assert_eq!(p.read_bytes_per_sec, 0.0);
    }
}
