//! The simulation engine: advances all subsystems one tick at a time and
//! exposes the observation API the collectors sample.
//!
//! A deliberate design point: faults mostly do **not** announce themselves
//! in the log stream.  A hung node is silent (KAUST finds it via power), a
//! degraded OST is silent (NCSA finds it via probes), corrosive gas is
//! silent (ORNL finds it via environment sensors).  What *does* log is what
//! a real machine logs: heartbeat losses, link LCB failures, CRC retries,
//! service exits, scheduler events.  Ground truth for experiments is kept
//! separately in [`SimEngine::truth_log`].

use crate::burst_buffer::BurstBuffer;
use crate::clock::DriftClock;
use crate::config::SimConfig;
use crate::env::EnvState;
use crate::failure::{FailureRates, Fault, FaultKind, FaultPlan};
use crate::fs::FsState;
use crate::network::NetworkState;
use crate::node::{GpuState, NodeHealth, NodeState, SERVICES};
use crate::power::PowerModel;
use crate::rng::Rng;
use crate::routing::{self, RoutePolicy};
use crate::sched::{SchedEvent, Scheduler};
use crate::topology::Topology;
use crate::workload::{CommPattern, JobSpec};
use hpcmon_metrics::{CompId, JobId, LogRecord, Severity, StateHash, Ts};
use serde::{Deserialize, Serialize};

/// Stable template ids for machine-generated log lines, used by the log
/// analysis to recognize "well-known log lines" (paper §III-B).
pub mod templates {
    /// Heartbeat lost to a node (console).
    pub const NODE_HEARTBEAT_LOST: u32 = 1;
    /// Node returned to service (console).
    pub const NODE_BOOTED: u32 = 2;
    /// HSN link control block failed (hwerr).
    pub const LINK_FAILED: u32 = 3;
    /// HSN link recovered (hwerr).
    pub const LINK_RECOVERED: u32 = 4;
    /// CRC retries on a link this interval (hwerr).
    pub const LINK_CRC_RETRY: u32 = 5;
    /// Service exited on a node.
    pub const SERVICE_EXITED: u32 = 6;
    /// Lustre mount lost on a node.
    pub const FS_MOUNT_LOST: u32 = 7;
    /// GPU fell off the bus (hwerr).
    pub const GPU_XID_ERROR: u32 = 8;
    /// Job started (scheduler).
    pub const JOB_START: u32 = 9;
    /// Job completed (scheduler).
    pub const JOB_END: u32 = 10;
    /// Job failed (scheduler).
    pub const JOB_FAILED: u32 = 11;
    /// Node sidelined by health check (scheduler).
    pub const NODE_SIDELINED: u32 = 12;
    /// Out-of-memory killer fired on a node.
    pub const OOM_KILL: u32 = 13;
    /// Routine housekeeping chatter.
    pub const ROUTINE: u32 = 14;
}

/// Per-job accounting of one tick's demands, for efficiency computation.
struct JobTickDemand {
    job_index: usize,
    flow_range: std::ops::Range<usize>,
    net_demand: f64,
    io_want: f64,
    io_got: f64,
    any_hung: bool,
}

/// Complete serializable state of the simulator at a tick boundary, for
/// flight-recorder checkpoints.  The topology is rebuilt from the config on
/// restore (it is immutable after construction), everything else — RNG
/// stream positions included — round-trips bit-exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimSnapshot {
    config: SimConfig,
    now: Ts,
    tick_count: u64,
    clock: DriftClock,
    nodes: Vec<NodeState>,
    gpus: Vec<GpuState>,
    gpu_util: Vec<f64>,
    power_w: Vec<f64>,
    net: NetworkState,
    link_error_mult: Vec<f64>,
    fs: FsState,
    env: EnvState,
    sched: Scheduler,
    faults: FaultPlan,
    logs: Vec<LogRecord>,
    truth: Vec<Fault>,
    rng_fail: Rng,
    rng_power: Rng,
    rng_work: Rng,
    rng_sched: Rng,
    rng_env: Rng,
    rng_log: Rng,
    ashrae_flagged: bool,
    pstate_scale: f64,
    bb: Option<BurstBuffer>,
}

/// The simulator.
pub struct SimEngine {
    config: SimConfig,
    topo: Topology,
    now: Ts,
    tick_count: u64,
    clock: DriftClock,
    nodes: Vec<NodeState>,
    gpus: Vec<GpuState>,
    gpu_util: Vec<f64>,
    power_w: Vec<f64>,
    net: NetworkState,
    link_error_mult: Vec<f64>,
    fs: FsState,
    env: EnvState,
    sched: Scheduler,
    faults: FaultPlan,
    logs: Vec<LogRecord>,
    truth: Vec<Fault>,
    rng_fail: Rng,
    rng_power: Rng,
    rng_work: Rng,
    rng_sched: Rng,
    rng_env: Rng,
    rng_log: Rng,
    ashrae_flagged: bool,
    pstate_scale: f64,
    bb: Option<BurstBuffer>,
}

impl SimEngine {
    /// Build a fresh machine.  Panics on an invalid configuration; use
    /// [`SimConfig::validate`] first if the config is untrusted.
    pub fn new(config: SimConfig) -> SimEngine {
        config.validate().expect("invalid SimConfig");
        let topo = Topology::build(config.topology);
        let n = topo.num_nodes() as usize;
        let mut master = Rng::new(config.seed);
        let mut rng_clock = master.fork(1);
        let clock = if config.clock.synchronized {
            DriftClock::synchronized(n)
        } else {
            DriftClock::drifting(
                n,
                config.clock.max_offset_ms,
                config.clock.max_rate_ppm,
                &mut rng_clock,
            )
        };
        let gpus_total = n * config.gpus_per_node as usize;
        let nodes = (0..n)
            .map(|i| {
                let g0 = i as u32 * config.gpus_per_node;
                NodeState::new(config.node_mem_bytes, (g0..g0 + config.gpus_per_node).collect())
            })
            .collect();
        let net = NetworkState::new(&topo, config.link_capacity_bytes_per_sec);
        let links = topo.num_links() as usize;
        let bb = config.burst_buffer.map(BurstBuffer::new);
        SimEngine {
            fs: FsState::new(config.fs),
            env: EnvState::new(),
            sched: Scheduler::new(config.scheduler, topo.num_nodes()),
            faults: FaultPlan::new(),
            logs: Vec::new(),
            truth: Vec::new(),
            rng_fail: master.fork(2),
            rng_power: master.fork(3),
            rng_work: master.fork(4),
            rng_sched: master.fork(5),
            rng_env: master.fork(6),
            rng_log: master.fork(7),
            clock,
            nodes,
            gpus: vec![GpuState::new(); gpus_total],
            gpu_util: vec![0.0; n],
            power_w: vec![0.0; n],
            net,
            link_error_mult: vec![1.0; links],
            topo,
            now: Ts::ZERO,
            tick_count: 0,
            config,
            ashrae_flagged: false,
            pstate_scale: 1.0,
            bb,
        }
    }

    /// Set the machine-wide CPU frequency scale (p-state) in `[0.1, 1.0]`.
    /// Compute progress slows linearly; dynamic CPU power drops ~f³ — the
    /// knobs SNL sweeps "with the goal of improving application and system
    /// energy efficiency while maintaining performance targets".
    pub fn set_pstate(&mut self, scale: f64) {
        self.pstate_scale = scale.clamp(0.1, 1.0);
    }

    /// Current p-state frequency scale.
    pub fn pstate(&self) -> f64 {
        self.pstate_scale
    }

    // ----- control -----

    /// Re-base the simulated clock epoch before the first tick.  A
    /// federation uses this to model per-site clock skew: every sample a
    /// skewed site emits carries `epoch + tick·tick_ms` timestamps, and the
    /// merge layer must subtract the offset rather than interleave raw
    /// site-local times.
    ///
    /// # Panics
    /// If any tick has already run — skew is a property of the site, not
    /// something that jumps mid-flight.
    pub fn set_epoch(&mut self, epoch: Ts) {
        assert_eq!(self.tick_count, 0, "set_epoch must precede the first step()");
        self.now = epoch;
    }

    /// Submit a job to the batch queue.
    pub fn submit_job(&mut self, spec: JobSpec) -> JobId {
        self.sched.submit(spec)
    }

    /// Schedule a fault for injection.
    pub fn schedule_fault(&mut self, at: Ts, kind: FaultKind) {
        self.faults.schedule(at, kind);
    }

    /// Advance one tick.
    pub fn step(&mut self) {
        self.tick_count += 1;
        self.now = self.now.add_ms(self.config.tick_ms);
        let now = self.now;
        let dt = self.config.tick_ms;

        for fault in self.faults.pop_due(now) {
            self.apply_fault(fault.kind);
        }
        self.stochastic_failures(dt);

        self.env.step(now, dt, &mut self.rng_env);
        self.flag_ashrae();
        self.age_gpus(dt);

        for i in 0..self.nodes.len() {
            let was_ok = self.nodes[i].mem_util() < 0.97;
            self.nodes[i].apply_leak();
            if was_ok && self.nodes[i].mem_util() >= 0.97 {
                self.log_node(
                    i as u32,
                    Severity::Error,
                    "console",
                    "Out of memory: kill process 4242 (daemon)",
                    templates::OOM_KILL,
                );
            }
        }

        self.complete_finished_jobs(now);
        self.start_queued_jobs(now);
        self.apply_workload(now, dt);
        self.roll_link_errors(dt);
        self.compute_power();
        self.emit_routine_logs();
    }

    /// Step until `deadline` (inclusive of the tick that reaches it).
    pub fn run_until(&mut self, deadline: Ts) {
        while self.now < deadline {
            self.step();
        }
    }

    // ----- per-tick stages -----

    fn apply_fault(&mut self, kind: FaultKind) {
        self.truth.push(Fault { at: self.now, kind });
        match kind {
            FaultKind::NodeCrash { node } => {
                self.nodes[node as usize].crash();
                let events = self.sched.node_failed(node, self.now);
                self.log_sched_events(&events);
                self.release_failed_job_nodes(&events);
                self.log_node(
                    node,
                    Severity::Critical,
                    "console",
                    "node heartbeat fault: no response",
                    templates::NODE_HEARTBEAT_LOST,
                );
            }
            FaultKind::NodeHang { node } => {
                // Silent: hangs produce no log line.  Power shows it.
                self.nodes[node as usize].health = NodeHealth::Hung;
            }
            FaultKind::NodeRecover { node } => {
                self.nodes[node as usize].recover();
                self.sched.return_to_service(node);
                self.log_node(
                    node,
                    Severity::Notice,
                    "console",
                    "node boot complete",
                    templates::NODE_BOOTED,
                );
            }
            FaultKind::LinkDown { link } => {
                self.net.set_link_up(link, false);
                let l = self.topo.link(link);
                self.logs.push(
                    LogRecord::new(
                        self.now,
                        CompId::link(link),
                        Severity::Error,
                        "hwerr",
                        format!("LCB failure on link r{}->r{}", l.from, l.to),
                    )
                    .with_template(templates::LINK_FAILED),
                );
            }
            FaultKind::LinkUp { link } => {
                self.net.set_link_up(link, true);
                self.logs.push(
                    LogRecord::new(
                        self.now,
                        CompId::link(link),
                        Severity::Notice,
                        "hwerr",
                        "link recovered, lanes up",
                    )
                    .with_template(templates::LINK_RECOVERED),
                );
            }
            FaultKind::LinkDegrade { link, error_multiplier } => {
                self.link_error_mult[link as usize] = error_multiplier.max(0.0);
            }
            FaultKind::OstDegrade { ost, factor } => self.fs.set_ost_degradation(ost, factor),
            FaultKind::OstRestore { ost } => self.fs.set_ost_degradation(ost, 1.0),
            FaultKind::MdsDegrade { factor } => self.fs.set_mds_degradation(factor),
            FaultKind::MdsRestore => self.fs.set_mds_degradation(1.0),
            FaultKind::GpuFail { gpu } => {
                self.gpus[gpu as usize].healthy = false;
                let node = gpu / self.config.gpus_per_node.max(1);
                self.log_node(
                    node,
                    Severity::Error,
                    "hwerr",
                    "NVRM Xid 79: GPU has fallen off the bus",
                    templates::GPU_XID_ERROR,
                );
            }
            FaultKind::ServiceDown { node, service } => {
                let s = service as usize % SERVICES.len();
                self.nodes[node as usize].services_ok[s] = false;
                self.log_node(
                    node,
                    Severity::Warning,
                    "console",
                    &format!("systemd: {}.service main process exited", SERVICES[s]),
                    templates::SERVICE_EXITED,
                );
            }
            FaultKind::ServiceRestore { node, service } => {
                let s = service as usize % SERVICES.len();
                self.nodes[node as usize].services_ok[s] = true;
            }
            FaultKind::MemoryLeak { node, bytes_per_tick } => {
                self.nodes[node as usize].mem_leak_bytes_per_tick = bytes_per_tick.max(0.0);
            }
            FaultKind::GasSpike { added_ppb, duration_ms } => {
                self.env.inject_gas_spike(self.now, added_ppb, duration_ms);
            }
            FaultKind::BbMisconfigure { bb } => {
                if let Some(buffer) = &mut self.bb {
                    buffer.set_configured(bb, false);
                }
            }
            FaultKind::BbRepair { bb } => {
                if let Some(buffer) = &mut self.bb {
                    buffer.set_configured(bb, true);
                }
            }
            FaultKind::FsUnmount { node } => {
                self.nodes[node as usize].fs_mounted = false;
                self.log_node(
                    node,
                    Severity::Error,
                    "console",
                    "Lustre: scratch-MDT0000 connection lost",
                    templates::FS_MOUNT_LOST,
                );
            }
        }
    }

    fn stochastic_failures(&mut self, dt: u64) {
        let rates = self.config.failure_rates;
        if rates.node_crash_per_hour > 0.0 || rates.node_hang_per_hour > 0.0 {
            let p_crash = FailureRates::per_tick_probability(rates.node_crash_per_hour, dt);
            let p_hang = FailureRates::per_tick_probability(rates.node_hang_per_hour, dt);
            for n in 0..self.nodes.len() as u32 {
                if self.nodes[n as usize].health != NodeHealth::Up {
                    continue;
                }
                if self.rng_fail.chance(p_crash) {
                    self.apply_fault(FaultKind::NodeCrash { node: n });
                } else if self.rng_fail.chance(p_hang) {
                    self.apply_fault(FaultKind::NodeHang { node: n });
                }
            }
        }
        if rates.service_down_per_hour > 0.0 {
            let p = FailureRates::per_tick_probability(rates.service_down_per_hour, dt);
            for n in 0..self.nodes.len() as u32 {
                if self.nodes[n as usize].health == NodeHealth::Up && self.rng_fail.chance(p) {
                    let svc = self.rng_fail.below(SERVICES.len() as u64) as u8;
                    self.apply_fault(FaultKind::ServiceDown { node: n, service: svc });
                }
            }
        }
        if rates.link_down_per_hour > 0.0 {
            let p = FailureRates::per_tick_probability(rates.link_down_per_hour, dt);
            for l in 0..self.net.num_links() as u32 {
                if self.net.link_is_up(l) && self.rng_fail.chance(p) {
                    self.apply_fault(FaultKind::LinkDown { link: l });
                }
            }
        }
    }

    /// GPU resistors age while gas exceeds the ASHRAE limit; sufficiently
    /// drifted parts start failing stochastically (the Titan mechanism).
    fn age_gpus(&mut self, dt: u64) {
        let exceed = (self.env.so2_ppb - crate::env::ASHRAE_SO2_G1_LIMIT_PPB).max(0.0);
        if exceed > 0.0 {
            let drift = exceed * dt as f64 / 1_000.0 * self.config.gpu_corrosion_pct_per_ppb_s;
            for g in &mut self.gpus {
                if g.healthy {
                    g.resistance_drift_pct += drift;
                }
            }
        }
        for gi in 0..self.gpus.len() {
            let p = self.gpus[gi].failure_probability();
            if p > 0.0 && self.rng_fail.chance(p) {
                self.apply_fault(FaultKind::GpuFail { gpu: gi as u32 });
            }
        }
    }

    fn flag_ashrae(&mut self) {
        let exceeding = self.env.exceeds_ashrae_gas_limit();
        if exceeding != self.ashrae_flagged {
            self.ashrae_flagged = exceeding;
        }
    }

    fn node_healthy_with_gpus(nodes: &[NodeState], gpus: &[GpuState], n: u32) -> bool {
        let node = &nodes[n as usize];
        node.passes_health_check() && node.gpus.iter().all(|&g| gpus[g as usize].healthy)
    }

    fn complete_finished_jobs(&mut self, now: Ts) {
        let finished: Vec<JobId> = self
            .sched
            .running()
            .iter()
            .filter(|r| r.progress_ms >= r.spec.work_ms as f64)
            .map(|r| r.id)
            .collect();
        for id in finished {
            let events = {
                let nodes = &self.nodes;
                let gpus = &self.gpus;
                self.sched.complete(id, now, &|n| Self::node_healthy_with_gpus(nodes, gpus, n))
            };
            // Release node state for the vacated allocation.
            let alloc = self.sched.record(id).nodes.clone();
            for n in alloc {
                if self.nodes[n as usize].health == NodeHealth::Up {
                    self.nodes[n as usize].release();
                }
                self.gpu_util[n as usize] = 0.0;
            }
            self.log_sched_events(&events);
        }
    }

    fn start_queued_jobs(&mut self, now: Ts) {
        let events = {
            let nodes = &self.nodes;
            let gpus = &self.gpus;
            let rng = &mut self.rng_sched;
            let mut shuffle = |v: &mut Vec<u32>| rng.shuffle(v);
            self.sched.try_start(
                now,
                &|n| Self::node_healthy_with_gpus(nodes, gpus, n),
                &mut shuffle,
            )
        };
        for e in &events {
            if let SchedEvent::Started { job, nodes } = e {
                for &n in nodes {
                    self.nodes[n as usize].running_job = Some(job.0);
                }
            }
        }
        self.log_sched_events(&events);
        // Without gating, a job launched onto a sick node dies on startup
        // (dead slurmd/munge, lost mount, broken GPU) — and the node stays
        // in the pool to kill the next one.  This is the failure mode the
        // CSCS pre-job assessment exists to prevent.
        if !self.sched.config().health_gating {
            let started: Vec<(JobId, Vec<u32>)> = events
                .iter()
                .filter_map(|e| match e {
                    SchedEvent::Started { job, nodes } => Some((*job, nodes.clone())),
                    _ => None,
                })
                .collect();
            for (job, nodes) in started {
                let bad = nodes
                    .iter()
                    .copied()
                    .find(|&n| !Self::node_healthy_with_gpus(&self.nodes, &self.gpus, n));
                if let Some(bad_node) = bad {
                    let fail_events = self.sched.launch_failed(job, bad_node, now);
                    for &n in &nodes {
                        if self.nodes[n as usize].health == NodeHealth::Up {
                            self.nodes[n as usize].release();
                        }
                        self.gpu_util[n as usize] = 0.0;
                    }
                    self.log_sched_events(&fail_events);
                }
            }
        }
    }

    fn apply_workload(&mut self, now: Ts, dt: u64) {
        self.net.begin_tick();
        self.fs.begin_tick();
        // Burst-buffer background drain competes with live I/O for the
        // filesystem, which is what makes drain backlog worth watching.
        if let Some(bb) = &mut self.bb {
            bb.begin_tick();
            let demands = bb.drain_demand(dt);
            for (i, want) in demands.into_iter().enumerate() {
                if want <= 0.0 {
                    continue;
                }
                let (_, accepted) = self.fs.offer_io(1_000_000 + i as u32, 0.0, want, 0.0, dt);
                bb.complete_drain(i as u32, accepted);
            }
        }
        let policy = self.config.route_policy;
        let threshold = self.config.congestion_threshold;
        let dt_s = dt as f64 / 1_000.0;

        let mut demands: Vec<JobTickDemand> = Vec::with_capacity(self.sched.running().len());
        let mut flow_cursor = 0usize;

        // Load snapshot for adaptive routing (refreshed per job, which is a
        // reasonable fidelity/cost point for a fluid model).
        let n_jobs = self.sched.running().len();
        for ji in 0..n_jobs {
            let (id, app, nodes, progress_ms, elapsed_ms) = {
                let r = &self.sched.running()[ji];
                (r.id, r.spec.app.clone(), r.nodes.clone(), r.progress_ms, r.elapsed_ms(now))
            };
            let phase = *app.phase_at(progress_ms as u64);
            let n_ranks = nodes.len();
            let mut any_hung = false;
            let mut net_demand_total = 0.0;
            let flow_start = flow_cursor;
            let mut active_ranks = 0usize;

            let loads = if policy == RoutePolicy::Adaptive {
                self.net.load_fractions(dt)
            } else {
                Vec::new()
            };

            for (rank, &node_id) in nodes.iter().enumerate() {
                let idles = app.rank_idles(rank, n_ranks, elapsed_ms);
                match self.nodes[node_id as usize].health {
                    NodeHealth::Hung => {
                        any_hung = true;
                        continue;
                    }
                    NodeHealth::Down => continue,
                    NodeHealth::Up => {}
                }
                let node = &mut self.nodes[node_id as usize];
                if idles {
                    node.cpu_util = 0.02;
                    node.set_job_memory(phase.mem_fraction);
                    self.gpu_util[node_id as usize] = 0.0;
                    continue;
                }
                active_ranks += 1;
                node.cpu_util = app.jitter(phase.cpu, &mut self.rng_work).min(1.0);
                node.set_job_memory(phase.mem_fraction);
                self.gpu_util[node_id as usize] =
                    app.jitter(phase.gpu, &mut self.rng_work).min(1.0);

                // Network flows.
                if phase.net_bytes_per_sec > 0.0 && n_ranks > 1 {
                    let bytes = app.jitter(phase.net_bytes_per_sec * dt_s, &mut self.rng_work);
                    let partners: Vec<u32> = match app.comm {
                        CommPattern::None => Vec::new(),
                        CommPattern::Ring => vec![nodes[(rank + 1) % n_ranks]],
                        CommPattern::Random(k) => (0..k as usize)
                            .map(|i| {
                                // Deterministic pseudo-random partners so the
                                // profile is repeatable run to run.
                                let h = (id.0 as u64)
                                    .wrapping_mul(0x9E37)
                                    .wrapping_add(rank as u64 * 131 + i as u64 * 7919);
                                nodes[(h % n_ranks as u64) as usize]
                            })
                            .filter(|&p| p != node_id)
                            .collect(),
                    };
                    if !partners.is_empty() {
                        let per_partner = bytes / partners.len() as f64;
                        for dst in partners {
                            let src_r = self.topo.router_of(node_id);
                            let dst_r = self.topo.router_of(dst);
                            let path = routing::route_with_policy(
                                &self.topo, src_r, dst_r, policy, &loads, threshold,
                            );
                            self.net.offer_flow(node_id, path, per_partner);
                            net_demand_total += per_partner;
                            flow_cursor += 1;
                        }
                    }
                }
            }

            // Filesystem I/O for the job as a whole.
            let (mut io_want, mut io_got) = (0.0, 0.0);
            if active_ranks > 0 {
                let want_r = app.jitter(
                    phase.read_bytes_per_sec * dt_s * active_ranks as f64,
                    &mut self.rng_work,
                );
                let want_w = app.jitter(
                    phase.write_bytes_per_sec * dt_s * active_ranks as f64,
                    &mut self.rng_work,
                );
                let meta = phase.metadata_ops_per_sec * dt_s * active_ranks as f64;
                if want_r > 0.0 || want_w > 0.0 || meta > 0.0 {
                    // Checkpoint writes hit the burst buffer first; spill
                    // (and everything on bb-less machines) goes to the PFS.
                    let absorbed = match &mut self.bb {
                        Some(bb) => bb.absorb(want_w, dt),
                        None => 0.0,
                    };
                    let (got_r, got_w) =
                        self.fs.offer_io(id.0, want_r, want_w - absorbed, meta, dt);
                    io_want = want_r + want_w;
                    io_got = got_r + got_w + absorbed;
                }
            }

            demands.push(JobTickDemand {
                job_index: ji,
                flow_range: flow_start..flow_cursor,
                net_demand: net_demand_total,
                io_want,
                io_got,
                any_hung,
            });
        }

        let achieved = self.net.settle(dt);

        for d in demands {
            let r = &mut self.sched.running_mut()[d.job_index];
            let net_eff = if d.net_demand > 0.0 {
                achieved[d.flow_range.clone()].iter().sum::<f64>() / d.net_demand
            } else {
                1.0
            };
            let io_eff = if d.io_want > 0.0 { d.io_got / d.io_want } else { 1.0 };
            let eff = if d.any_hung {
                0.0
            } else {
                // Compute progress scales with frequency; I/O- and
                // network-bound phases do not speed up at higher p-states,
                // so the bottleneck rule applies after scaling.
                (self.pstate_scale * net_eff.min(io_eff)).clamp(0.0, 1.0)
            };
            r.last_efficiency = eff;
            r.progress_ms += dt as f64 * eff;
        }
    }

    fn roll_link_errors(&mut self, _dt: u64) {
        let per_gb = self.config.failure_rates.link_errors_per_gb;
        for l in 0..self.net.num_links() as u32 {
            let traffic_gb = self.net.link_traffic_bytes(l) / 1e9;
            if traffic_gb <= 0.0 {
                continue;
            }
            let mult = self.link_error_mult[l as usize];
            // A degraded link errors even under a zero base rate.
            let base = if per_gb > 0.0 {
                per_gb
            } else if mult > 1.0 {
                0.05
            } else {
                0.0
            };
            let mean = base * mult * traffic_gb;
            if mean <= 0.0 {
                continue;
            }
            let errors = self.rng_fail.poisson(mean) as f64;
            if errors > 0.0 {
                self.net.add_link_errors(l, errors);
                if errors >= 8.0 {
                    self.logs.push(
                        LogRecord::new(
                            self.now,
                            CompId::link(l),
                            Severity::Warning,
                            "hwerr",
                            format!("{errors} CRC retries on lane 0"),
                        )
                        .with_template(templates::LINK_CRC_RETRY),
                    );
                }
            }
        }
    }

    fn compute_power(&mut self) {
        let model: PowerModel = self.config.power;
        for i in 0..self.nodes.len() {
            self.power_w[i] = model.node_power_w_at(
                &self.nodes[i],
                self.gpu_util[i],
                self.pstate_scale,
                &mut self.rng_power,
            );
        }
    }

    /// Routine chatter so the log stream has a realistic noise floor.
    fn emit_routine_logs(&mut self) {
        let mean = self.nodes.len() as f64 * 0.01;
        let count = self.rng_log.poisson(mean).min(50);
        for _ in 0..count {
            let node = self.rng_log.below(self.nodes.len() as u64) as u32;
            self.log_node(
                node,
                Severity::Info,
                "console",
                "systemd: Started Session of user root",
                templates::ROUTINE,
            );
        }
    }

    // ----- logging helpers -----

    fn log_node(&mut self, node: u32, sev: Severity, source: &str, msg: &str, template: u32) {
        // Stamp with the node's local clock: this is where drift-induced
        // mis-association comes from.
        let local = self.clock.local_time(node, self.now);
        self.logs.push(
            LogRecord::new(local, CompId::node(node), sev, source, msg).with_template(template),
        );
    }

    fn log_sched_events(&mut self, events: &[SchedEvent]) {
        for e in events {
            let (sev, comp, msg, template) = match e {
                SchedEvent::Started { job, nodes } => (
                    Severity::Info,
                    CompId::job(job.0),
                    format!("job {} started on {} nodes", job.0, nodes.len()),
                    templates::JOB_START,
                ),
                SchedEvent::Completed { job } => (
                    Severity::Info,
                    CompId::job(job.0),
                    format!("job {} completed", job.0),
                    templates::JOB_END,
                ),
                SchedEvent::Failed { job, node } => (
                    Severity::Error,
                    CompId::job(job.0),
                    format!("job {} failed (node {:?})", job.0, node),
                    templates::JOB_FAILED,
                ),
                SchedEvent::NodeFailedPreCheck { node } => (
                    Severity::Warning,
                    CompId::node(*node),
                    format!("node {node} failed pre-job health check, sidelined"),
                    templates::NODE_SIDELINED,
                ),
                SchedEvent::NodeFailedPostCheck { job, node } => (
                    Severity::Warning,
                    CompId::node(*node),
                    format!("node {node} failed post-job health check after job {}", job.0),
                    templates::NODE_SIDELINED,
                ),
            };
            self.logs
                .push(LogRecord::new(self.now, comp, sev, "sched", msg).with_template(template));
        }
    }

    fn release_failed_job_nodes(&mut self, events: &[SchedEvent]) {
        for e in events {
            if let SchedEvent::Failed { job, .. } = e {
                let alloc = self.sched.record(*job).nodes.clone();
                for n in alloc {
                    if self.nodes[n as usize].health == NodeHealth::Up {
                        self.nodes[n as usize].release();
                    }
                    self.gpu_util[n as usize] = 0.0;
                }
            }
        }
    }

    // ----- observation API (what collectors sample) -----

    /// Current simulation time.
    pub fn now(&self) -> Ts {
        self.now
    }

    /// Tick length, ms.
    pub fn tick_ms(&self) -> u64 {
        self.config.tick_ms
    }

    /// Ticks executed so far.
    pub fn tick_count(&self) -> u64 {
        self.tick_count
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The interconnect.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> u32 {
        self.topo.num_nodes()
    }

    /// One node's state.
    pub fn node(&self, n: u32) -> &NodeState {
        &self.nodes[n as usize]
    }

    /// One GPU's state (global index).
    pub fn gpu(&self, g: u32) -> &GpuState {
        &self.gpus[g as usize]
    }

    /// GPU utilization of the GPUs on a node.
    pub fn node_gpu_util(&self, n: u32) -> f64 {
        self.gpu_util[n as usize]
    }

    /// Instantaneous node power, watts.
    pub fn node_power_w(&self, n: u32) -> f64 {
        self.power_w[n as usize]
    }

    /// Network state.
    pub fn network(&self) -> &NetworkState {
        &self.net
    }

    /// Filesystem state.
    pub fn filesystem(&self) -> &FsState {
        &self.fs
    }

    /// Burst-buffer tier, if this machine has one.
    pub fn burst_buffer(&self) -> Option<&BurstBuffer> {
        self.bb.as_ref()
    }

    /// Environment state.
    pub fn environment(&self) -> &EnvState {
        &self.env
    }

    /// Scheduler (queue depth, records, running jobs).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Mutable scheduler access, for response actions (drain, sideline).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.sched
    }

    /// Clock drift model (for association ablations).
    pub fn clock(&self) -> &DriftClock {
        &self.clock
    }

    /// Drain all log records produced since the last drain.
    pub fn drain_logs(&mut self) -> Vec<LogRecord> {
        std::mem::take(&mut self.logs)
    }

    /// Ground-truth fault history (for detector validation; not visible to
    /// the monitoring stack).
    pub fn truth_log(&self) -> &[Fault] {
        &self.truth
    }

    /// Capture the complete simulator state for a flight-recorder
    /// checkpoint.  Taken at a tick boundary (after [`SimEngine::drain_logs`])
    /// the restored engine continues the exact same trajectory.
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            config: self.config.clone(),
            now: self.now,
            tick_count: self.tick_count,
            clock: self.clock.clone(),
            nodes: self.nodes.clone(),
            gpus: self.gpus.clone(),
            gpu_util: self.gpu_util.clone(),
            power_w: self.power_w.clone(),
            net: self.net.clone(),
            link_error_mult: self.link_error_mult.clone(),
            fs: self.fs.clone(),
            env: self.env.clone(),
            sched: self.sched.clone(),
            faults: self.faults.clone(),
            logs: self.logs.clone(),
            truth: self.truth.clone(),
            rng_fail: self.rng_fail.clone(),
            rng_power: self.rng_power.clone(),
            rng_work: self.rng_work.clone(),
            rng_sched: self.rng_sched.clone(),
            rng_env: self.rng_env.clone(),
            rng_log: self.rng_log.clone(),
            ashrae_flagged: self.ashrae_flagged,
            pstate_scale: self.pstate_scale,
            bb: self.bb.clone(),
        }
    }

    /// Rebuild an engine from a checkpoint.  The topology is reconstructed
    /// from the snapshot's config; all mutable state is taken verbatim.
    pub fn restore(snap: SimSnapshot) -> SimEngine {
        let topo = Topology::build(snap.config.topology);
        SimEngine {
            topo,
            config: snap.config,
            now: snap.now,
            tick_count: snap.tick_count,
            clock: snap.clock,
            nodes: snap.nodes,
            gpus: snap.gpus,
            gpu_util: snap.gpu_util,
            power_w: snap.power_w,
            net: snap.net,
            link_error_mult: snap.link_error_mult,
            fs: snap.fs,
            env: snap.env,
            sched: snap.sched,
            faults: snap.faults,
            logs: snap.logs,
            truth: snap.truth,
            rng_fail: snap.rng_fail,
            rng_power: snap.rng_power,
            rng_work: snap.rng_work,
            rng_sched: snap.rng_sched,
            rng_env: snap.rng_env,
            rng_log: snap.rng_log,
            ashrae_flagged: snap.ashrae_flagged,
            pstate_scale: snap.pstate_scale,
            bb: snap.bb,
        }
    }

    /// 64-bit digest of the full simulator state, for per-tick replay
    /// verification.  Covers every field that feeds future ticks: RNG
    /// stream positions, node/GPU/network/filesystem/environment state,
    /// the scheduler, and the fault plan position.
    pub fn state_digest(&self) -> u64 {
        let mut h = StateHash::new(0x51);
        h.u64(self.now.0).u64(self.tick_count);
        h.u64(self.rng_fail.state())
            .u64(self.rng_power.state())
            .u64(self.rng_work.state())
            .u64(self.rng_sched.state())
            .u64(self.rng_env.state())
            .u64(self.rng_log.state());
        h.usize(self.nodes.len());
        for n in &self.nodes {
            let health = match n.health {
                NodeHealth::Up => 0u64,
                NodeHealth::Hung => 1,
                NodeHealth::Down => 2,
            };
            h.u64(health)
                .f64(n.cpu_util)
                .f64(n.mem_used_bytes)
                .f64(n.mem_leak_bytes_per_tick)
                .f64(n.leaked_bytes)
                .bools(&n.services_ok)
                .bool(n.fs_mounted)
                .u64(n.running_job.map_or(u64::MAX, |j| j as u64));
        }
        h.usize(self.gpus.len());
        for g in &self.gpus {
            h.bool(g.healthy).f64(g.resistance_drift_pct);
        }
        h.f64s(&self.gpu_util).f64s(&self.power_w).f64s(&self.link_error_mult);
        self.net.digest_into(&mut h);
        self.fs.digest_into(&mut h);
        self.env.digest_into(&mut h);
        self.sched.digest_into(&mut h);
        self.faults.digest_into(&mut h);
        h.usize(self.logs.len()).usize(self.truth.len());
        h.bool(self.ashrae_flagged).f64(self.pstate_scale);
        if let Some(bb) = &self.bb {
            bb.digest_into(&mut h);
        } else {
            h.u64(u64::MAX);
        }
        h.finish()
    }

    /// Maximum link utilization along the minimal route between two nodes —
    /// what a network probe pair would experience.
    pub fn probe_route_max_utilization(&self, a: u32, b: u32) -> f64 {
        let ra = self.topo.router_of(a);
        let rb = self.topo.router_of(b);
        routing::minimal_route(&self.topo, ra, rb)
            .iter()
            .map(|&l| self.net.link_utilization(l))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AppProfile;

    fn engine() -> SimEngine {
        SimEngine::new(SimConfig::small())
    }

    fn quick_job(nodes: u32, work_mins: u64) -> JobSpec {
        JobSpec::new(
            AppProfile::compute_heavy("stencil"),
            "alice",
            nodes,
            work_mins * 60_000,
            Ts::ZERO,
        )
    }

    #[test]
    fn job_lifecycle_runs_to_completion() {
        let mut e = engine();
        let id = e.submit_job(quick_job(8, 5));
        for _ in 0..10 {
            e.step();
        }
        let rec = e.scheduler().record(id);
        assert_eq!(rec.state, hpcmon_metrics::JobState::Completed);
        assert_eq!(rec.nodes.len(), 8);
        // Uncontended compute job: runtime ≈ work (5 min) within a tick.
        let rt = rec.runtime_ms().unwrap();
        assert!((5 * 60_000..=6 * 60_000).contains(&rt), "runtime {rt}");
    }

    #[test]
    fn busy_nodes_show_utilization_and_power() {
        let mut e = engine();
        e.submit_job(quick_job(8, 30));
        e.step();
        e.step();
        let rec = e.scheduler().records()[0].clone();
        let busy = rec.nodes[0];
        assert!(e.node(busy).cpu_util > 0.8);
        let idle = (0..e.num_nodes()).find(|n| !rec.nodes.contains(n)).unwrap();
        assert!(e.node_power_w(busy) > e.node_power_w(idle) + 100.0);
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = || {
            let mut e = engine();
            e.submit_job(quick_job(16, 20));
            e.schedule_fault(Ts::from_mins(3), FaultKind::NodeCrash { node: 40 });
            for _ in 0..30 {
                e.step();
            }
            let powers: Vec<f64> = (0..e.num_nodes()).map(|n| e.node_power_w(n)).collect();
            let logs = e.drain_logs();
            (powers, logs.len(), e.scheduler().records().to_vec())
        };
        let (p1, l1, r1) = run();
        let (p2, l2, r2) = run();
        assert_eq!(p1, p2);
        assert_eq!(l1, l2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn node_crash_kills_job_and_logs() {
        let mut e = engine();
        let id = e.submit_job(quick_job(8, 60));
        e.step();
        let victim = e.scheduler().record(id).nodes[0];
        e.schedule_fault(Ts::from_mins(2), FaultKind::NodeCrash { node: victim });
        e.step();
        e.step();
        assert_eq!(e.scheduler().record(id).state, hpcmon_metrics::JobState::Failed);
        let logs = e.drain_logs();
        assert!(logs.iter().any(|l| l.template == Some(templates::NODE_HEARTBEAT_LOST)));
        assert!(logs.iter().any(|l| l.template == Some(templates::JOB_FAILED)));
        assert_eq!(e.node(victim).health, NodeHealth::Down);
    }

    #[test]
    fn hung_node_stalls_job_silently() {
        let mut e = engine();
        let id = e.submit_job(quick_job(8, 10));
        e.step();
        let victim = e.scheduler().record(id).nodes[0];
        e.drain_logs();
        e.schedule_fault(Ts::from_mins(2), FaultKind::NodeHang { node: victim });
        for _ in 0..10 {
            e.step();
        }
        // Job cannot finish: progress frozen.
        assert_eq!(e.scheduler().record(id).state, hpcmon_metrics::JobState::Running);
        let r = e.scheduler().running().iter().find(|r| r.id == id).unwrap();
        assert_eq!(r.last_efficiency, 0.0);
        // And the hang itself produced no log line.
        let logs = e.drain_logs();
        assert!(logs
            .iter()
            .all(|l| l.comp != CompId::node(victim) || l.template == Some(templates::ROUTINE)));
        // But power dropped to idle on the hung node.
        assert!(e.node_power_w(victim) < 150.0);
    }

    #[test]
    fn ost_degradation_slows_io_job() {
        // An I/O-heavy job under a degraded filesystem stretches.
        let mk = |degrade: bool| {
            let mut e = engine();
            let spec = JobSpec::new(AppProfile::io_storm("reader"), "u", 16, 10 * 60_000, Ts::ZERO);
            let id = e.submit_job(spec);
            if degrade {
                for ost in 0..e.filesystem().num_osts() {
                    e.schedule_fault(Ts::from_mins(1), FaultKind::OstDegrade { ost, factor: 3.0 });
                }
            }
            for _ in 0..120 {
                e.step();
                if e.scheduler().record(id).state == hpcmon_metrics::JobState::Completed {
                    break;
                }
            }
            e.scheduler().record(id).runtime_ms()
        };
        let healthy = mk(false).expect("healthy run completes");
        let degraded = mk(true).expect("degraded run completes (slowly)");
        assert!(degraded as f64 > healthy as f64 * 1.5, "healthy {healthy} degraded {degraded}");
    }

    #[test]
    fn gas_spike_ages_and_kills_gpus() {
        // Massive, long spike with aggressive corrosion for test speed.
        let mut cfg = SimConfig::small();
        cfg.gpu_corrosion_pct_per_ppb_s = 3e-3;
        let mut e = SimEngine::new(cfg);
        e.schedule_fault(
            Ts::from_mins(1),
            FaultKind::GasSpike { added_ppb: 80.0, duration_ms: 10 * 3_600_000 },
        );
        for _ in 0..600 {
            e.step();
        }
        let failed = (0..e.num_nodes())
            .filter(|&n| e.node(n).gpus.iter().any(|&g| !e.gpu(g).healthy))
            .count();
        assert!(failed > 0, "corrosion should have killed some GPUs");
        assert!(e.environment().corrosion_dose_ppb_s > 0.0);
    }

    #[test]
    fn service_failure_blocks_scheduling_with_gating() {
        let mut cfg = SimConfig::small();
        cfg.scheduler.health_gating = true;
        let mut e = SimEngine::new(cfg);
        e.schedule_fault(Ts::from_mins(1), FaultKind::ServiceDown { node: 0, service: 0 });
        e.step(); // fault applies at minute 1
        let id = e.submit_job(quick_job(4, 5));
        e.step();
        let rec = e.scheduler().record(id);
        assert!(!rec.nodes.contains(&0), "gated scheduler avoids node 0");
        assert!(e.scheduler().out_of_service().contains(&0));
    }

    #[test]
    fn queue_depth_visible() {
        let mut e = engine();
        for _ in 0..40 {
            e.submit_job(quick_job(16, 30));
        }
        e.step();
        // 128 nodes / 16 per job = 8 running, rest queued.
        assert_eq!(e.scheduler().queue_depth(), 32);
    }

    #[test]
    fn link_down_logged_and_counters_move() {
        let mut e = engine();
        e.submit_job(JobSpec::new(AppProfile::comm_heavy("fft"), "u", 32, 30 * 60_000, Ts::ZERO));
        e.schedule_fault(Ts::from_mins(2), FaultKind::LinkDown { link: 0 });
        for _ in 0..4 {
            e.step();
        }
        let logs = e.drain_logs();
        assert!(logs.iter().any(|l| l.template == Some(templates::LINK_FAILED)));
        assert!(!e.network().link_is_up(0));
        // Comm-heavy job generated traffic somewhere.
        let total: f64 = (0..e.network().num_links() as u32)
            .map(|l| e.network().cumulative_link_traffic(l))
            .sum();
        assert!(total > 0.0);
    }

    #[test]
    fn degraded_link_produces_error_trend() {
        let mut e = engine();
        e.submit_job(JobSpec::new(AppProfile::comm_heavy("fft"), "u", 64, 60 * 60_000, Ts::ZERO));
        e.step();
        // Find a link with traffic and degrade it.
        let hot = (0..e.network().num_links() as u32)
            .max_by(|&a, &b| {
                e.network()
                    .link_traffic_bytes(a)
                    .partial_cmp(&e.network().link_traffic_bytes(b))
                    .unwrap()
            })
            .unwrap();
        e.schedule_fault(
            Ts::from_mins(2),
            FaultKind::LinkDegrade { link: hot, error_multiplier: 500.0 },
        );
        let mut errors = 0.0;
        for _ in 0..10 {
            e.step();
            errors += e.network().link_errors(hot);
        }
        assert!(errors > 0.0, "degraded hot link should show CRC errors");
    }

    #[test]
    fn memory_leak_eventually_fails_health_check() {
        let mut e = engine();
        let leak = e.config().node_mem_bytes * 0.2;
        e.schedule_fault(Ts::from_mins(1), FaultKind::MemoryLeak { node: 5, bytes_per_tick: leak });
        for _ in 0..8 {
            e.step();
        }
        assert!(!e.node(5).passes_health_check(), "leak exhausted memory");
        let logs = e.drain_logs();
        assert!(logs.iter().any(|l| l.template == Some(templates::OOM_KILL)));
    }

    #[test]
    fn run_until_reaches_deadline() {
        let mut e = engine();
        e.run_until(Ts::from_mins(10));
        assert_eq!(e.now(), Ts::from_mins(10));
        assert_eq!(e.tick_count(), 10);
    }

    #[test]
    fn burst_buffer_accelerates_checkpoints_under_fs_pressure() {
        // A checkpointing job racing an I/O storm: without a burst buffer
        // its write bursts starve; with one they land at absorb speed.
        let run = |with_bb: bool| {
            let mut cfg = SimConfig::small();
            if with_bb {
                cfg.burst_buffer = Some(crate::burst_buffer::BbConfig::small());
            }
            let mut e = SimEngine::new(cfg);
            // Storm first: earlier-submitted jobs offer I/O first each
            // tick, so the storm soaks the filesystem before the
            // checkpoints arrive — worst case for the checkpointer.
            e.submit_job(JobSpec::new(
                AppProfile::io_storm("storm"),
                "v",
                64,
                240 * 60_000,
                Ts::ZERO,
            ));
            let ckpt = e.submit_job(JobSpec::new(
                AppProfile::checkpointing("climate"),
                "u",
                32,
                30 * 60_000,
                Ts::ZERO,
            ));
            // Fixed horizon; compare useful work completed.
            for _ in 0..60 {
                e.step();
            }
            if e.scheduler().record(ckpt).state == hpcmon_metrics::JobState::Completed {
                return 30.0 * 60_000.0; // full work done
            }
            e.scheduler()
                .running()
                .iter()
                .find(|r| r.id == ckpt)
                .map(|r| r.progress_ms)
                .unwrap_or(0.0)
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with > 1.5 * without,
            "bb keeps checkpoints moving under a storm: {with} vs {without}"
        );
    }

    #[test]
    fn misconfigured_bb_node_is_silent_but_observable() {
        let mut cfg = SimConfig::small();
        cfg.burst_buffer = Some(crate::burst_buffer::BbConfig::small());
        let mut e = SimEngine::new(cfg);
        e.submit_job(JobSpec::new(
            AppProfile::checkpointing("climate"),
            "u",
            64,
            240 * 60_000,
            Ts::ZERO,
        ));
        e.schedule_fault(Ts::from_mins(1), FaultKind::BbMisconfigure { bb: 2 });
        for _ in 0..12 {
            e.step();
        }
        let bb = e.burst_buffer().expect("configured");
        assert!(!bb.all_configured());
        assert!(!bb.node(2).configured);
        assert_eq!(bb.node(2).occupancy_bytes, 0.0, "absorbs nothing");
        // No log line announced it.
        let logs = e.drain_logs();
        assert!(logs.iter().all(|l| !l.message.contains("buffer")));
        // Repair restores the check.
        e.schedule_fault(Ts::from_mins(15), FaultKind::BbRepair { bb: 2 });
        for _ in 0..3 {
            e.step();
        }
        assert!(e.burst_buffer().unwrap().all_configured());
    }

    #[test]
    fn pstate_trades_time_for_power() {
        let run = |scale: f64| {
            let mut e = engine();
            e.set_pstate(scale);
            let id = e.submit_job(quick_job(16, 20));
            let mut energy = 0.0;
            for _ in 0..120 {
                e.step();
                energy += (0..e.num_nodes()).map(|n| e.node_power_w(n)).sum::<f64>() * 60.0;
                if e.scheduler().record(id).state == hpcmon_metrics::JobState::Completed {
                    break;
                }
            }
            (e.scheduler().record(id).runtime_ms().expect("completed"), energy)
        };
        let (t_full, _) = run(1.0);
        let (t_half, _) = run(0.5);
        // Half frequency → roughly double runtime.
        assert!(
            t_half as f64 > 1.7 * t_full as f64 && (t_half as f64) < 2.4 * t_full as f64,
            "full {t_full} half {t_half}"
        );
        // Mid-run power drops with p-state.
        let power_at = |scale: f64| {
            let mut e = engine();
            e.set_pstate(scale);
            let id = e.submit_job(quick_job(16, 60));
            e.step();
            e.step();
            let node = e.scheduler().record(id).nodes[0];
            e.node_power_w(node)
        };
        assert!(power_at(0.6) < 0.7 * power_at(1.0));
    }

    #[test]
    fn probe_route_utilization_reflects_traffic() {
        let mut e = engine();
        assert_eq!(e.probe_route_max_utilization(0, 100), 0.0);
        e.submit_job(JobSpec::new(AppProfile::comm_heavy("fft"), "u", 128, 60 * 60_000, Ts::ZERO));
        e.step();
        e.step();
        // Under a machine-wide comm-heavy job some probe pair sees load.
        let max = (0..16).map(|i| e.probe_route_max_utilization(i, 127 - i)).fold(0.0, f64::max);
        assert!(max > 0.0);
    }
}
