//! Interconnect topologies: Gemini-style 3D torus and Aries-style dragonfly.
//!
//! The SNL work in the paper targets "the Cray Aries-based dragonfly
//! networks and Gemini-based 3D torus"; NCSA's Blue Waters (Figure 1) is a
//! Gemini torus.  Both are provided here with a common interface: routers
//! joined by directed links, each router hosting a fixed number of nodes.
//!
//! Cabinets are derived from the topology: one X-column of the torus per
//! cabinet (as on XE/XK rows) and one dragonfly group per cabinet (an XC
//! group spans two physical cabinets; one is close enough for the power
//! figures).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Shape of the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// 3D torus with the given dimensions; each router hosts
    /// `nodes_per_router` compute nodes (Gemini hosted 2).
    Torus3D {
        /// Torus dimensions (x, y, z).
        dims: [u32; 3],
        /// Compute nodes attached to each router.
        nodes_per_router: u32,
    },
    /// Dragonfly: all-to-all routers within a group, one global link per
    /// group pair (Aries hosts 4 nodes per router).
    Dragonfly {
        /// Number of groups.
        groups: u32,
        /// Routers per group (all-to-all connected).
        routers_per_group: u32,
        /// Compute nodes attached to each router.
        nodes_per_router: u32,
    },
}

impl TopologySpec {
    /// A small torus suitable for tests.
    pub fn small_torus() -> TopologySpec {
        TopologySpec::Torus3D { dims: [4, 4, 4], nodes_per_router: 2 }
    }

    /// A small dragonfly suitable for tests.
    pub fn small_dragonfly() -> TopologySpec {
        TopologySpec::Dragonfly { groups: 6, routers_per_group: 8, nodes_per_router: 4 }
    }
}

/// A directed link between two routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Dense link id.
    pub id: u32,
    /// Source router.
    pub from: u32,
    /// Destination router.
    pub to: u32,
    /// Whether this is a dragonfly global (inter-group) link.
    pub global: bool,
}

/// A built topology: routers, nodes, directed links, and cabinet mapping.
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TopologySpec,
    links: Vec<Link>,
    link_index: HashMap<(u32, u32), u32>,
    num_routers: u32,
    num_nodes: u32,
    num_cabinets: u32,
}

impl Topology {
    /// Build the link structure for a spec.
    pub fn build(spec: TopologySpec) -> Topology {
        match spec {
            TopologySpec::Torus3D { dims, nodes_per_router } => {
                Self::build_torus(spec, dims, nodes_per_router)
            }
            TopologySpec::Dragonfly { groups, routers_per_group, nodes_per_router } => {
                Self::build_dragonfly(spec, groups, routers_per_group, nodes_per_router)
            }
        }
    }

    fn build_torus(spec: TopologySpec, dims: [u32; 3], nodes_per_router: u32) -> Topology {
        assert!(dims.iter().all(|&d| d >= 1), "torus dimensions must be >= 1");
        assert!(nodes_per_router >= 1);
        let num_routers = dims[0] * dims[1] * dims[2];
        let mut t = Topology {
            spec,
            links: Vec::new(),
            link_index: HashMap::new(),
            num_routers,
            num_nodes: num_routers * nodes_per_router,
            num_cabinets: dims[0],
        };
        for r in 0..num_routers {
            let c = t.torus_coords(r);
            for dim in 0..3 {
                if dims[dim] < 2 {
                    continue; // no link to self in degenerate dimensions
                }
                for dir in [1i64, -1] {
                    let mut n = c;
                    n[dim] = (((c[dim] as i64 + dir) + dims[dim] as i64) % dims[dim] as i64) as u32;
                    let peer = t.torus_router(n);
                    t.add_link(r, peer, false);
                }
            }
        }
        t
    }

    fn build_dragonfly(
        spec: TopologySpec,
        groups: u32,
        routers_per_group: u32,
        nodes_per_router: u32,
    ) -> Topology {
        assert!(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1);
        let num_routers = groups * routers_per_group;
        let mut t = Topology {
            spec,
            links: Vec::new(),
            link_index: HashMap::new(),
            num_routers,
            num_nodes: num_routers * nodes_per_router,
            num_cabinets: groups,
        };
        // Intra-group all-to-all.
        for g in 0..groups {
            let base = g * routers_per_group;
            for a in 0..routers_per_group {
                for b in 0..routers_per_group {
                    if a != b {
                        t.add_link(base + a, base + b, false);
                    }
                }
            }
        }
        // One global link (each direction) per group pair, owned by a
        // deterministic router in each group.
        for ga in 0..groups {
            for gb in (ga + 1)..groups {
                let ra = t.gateway_router(ga, gb);
                let rb = t.gateway_router(gb, ga);
                t.add_link(ra, rb, true);
                t.add_link(rb, ra, true);
            }
        }
        t
    }

    fn add_link(&mut self, from: u32, to: u32, global: bool) {
        debug_assert_ne!(from, to, "self links are not allowed");
        if self.link_index.contains_key(&(from, to)) {
            return; // e.g. torus dimension of size 2: +1 and -1 coincide
        }
        let id = self.links.len() as u32;
        self.links.push(Link { id, from, to, global });
        self.link_index.insert((from, to), id);
    }

    /// The spec this topology was built from.
    pub fn spec(&self) -> TopologySpec {
        self.spec
    }

    /// Number of compute nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of routers.
    pub fn num_routers(&self) -> u32 {
        self.num_routers
    }

    /// Number of directed links.
    pub fn num_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Number of cabinets (torus X-columns or dragonfly groups).
    pub fn num_cabinets(&self) -> u32 {
        self.num_cabinets
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link metadata by id.
    pub fn link(&self, id: u32) -> Link {
        self.links[id as usize]
    }

    /// Nodes attached to each router.
    pub fn nodes_per_router(&self) -> u32 {
        match self.spec {
            TopologySpec::Torus3D { nodes_per_router, .. } => nodes_per_router,
            TopologySpec::Dragonfly { nodes_per_router, .. } => nodes_per_router,
        }
    }

    /// The router hosting a node.
    pub fn router_of(&self, node: u32) -> u32 {
        assert!(node < self.num_nodes, "node {node} out of range");
        node / self.nodes_per_router()
    }

    /// The nodes hosted by a router, as a half-open range.
    pub fn nodes_of_router(&self, router: u32) -> std::ops::Range<u32> {
        let npr = self.nodes_per_router();
        (router * npr)..((router + 1) * npr)
    }

    /// The cabinet containing a node.  Node numbering follows the physical
    /// cabinet order (as on real machines), so each cabinet holds a
    /// contiguous block of node ids: torus cabinets are equal blocks of
    /// `num_nodes / dims[0]`, dragonfly cabinets are groups.
    pub fn cabinet_of(&self, node: u32) -> u32 {
        assert!(node < self.num_nodes, "node {node} out of range");
        match self.spec {
            TopologySpec::Torus3D { dims, .. } => {
                let per_cabinet = (self.num_nodes / dims[0]).max(1);
                (node / per_cabinet).min(dims[0] - 1)
            }
            TopologySpec::Dragonfly { routers_per_group, .. } => {
                self.router_of(node) / routers_per_group
            }
        }
    }

    /// Directed link id from `from` to `to`, if adjacent.
    pub fn link_between(&self, from: u32, to: u32) -> Option<u32> {
        self.link_index.get(&(from, to)).copied()
    }

    /// Router neighbors reachable over one link.
    pub fn neighbors(&self, router: u32) -> Vec<u32> {
        // Link ids are grouped by construction order, not by router, so scan.
        self.links.iter().filter(|l| l.from == router).map(|l| l.to).collect()
    }

    /// Torus coordinates of a router (torus only).
    pub fn torus_coords(&self, router: u32) -> [u32; 3] {
        match self.spec {
            TopologySpec::Torus3D { dims, .. } => {
                let x = router % dims[0];
                let y = (router / dims[0]) % dims[1];
                let z = router / (dims[0] * dims[1]);
                [x, y, z]
            }
            _ => panic!("torus_coords on non-torus topology"),
        }
    }

    /// Router id from torus coordinates (torus only).
    pub fn torus_router(&self, coords: [u32; 3]) -> u32 {
        match self.spec {
            TopologySpec::Torus3D { dims, .. } => {
                coords[0] + coords[1] * dims[0] + coords[2] * dims[0] * dims[1]
            }
            _ => panic!("torus_router on non-torus topology"),
        }
    }

    /// Dragonfly group of a router (dragonfly only).
    pub fn group_of(&self, router: u32) -> u32 {
        match self.spec {
            TopologySpec::Dragonfly { routers_per_group, .. } => router / routers_per_group,
            _ => panic!("group_of on non-dragonfly topology"),
        }
    }

    /// The router in `group` that owns the global link toward `peer_group`
    /// (dragonfly only).
    pub fn gateway_router(&self, group: u32, peer_group: u32) -> u32 {
        match self.spec {
            TopologySpec::Dragonfly { routers_per_group, .. } => {
                // Deterministic spread of global links across a group's routers.
                let slot = peer_group % routers_per_group;
                group * routers_per_group + slot
            }
            _ => panic!("gateway_router on non-dragonfly topology"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_counts() {
        let t = Topology::build(TopologySpec::Torus3D { dims: [4, 3, 2], nodes_per_router: 2 });
        assert_eq!(t.num_routers(), 24);
        assert_eq!(t.num_nodes(), 48);
        assert_eq!(t.num_cabinets(), 4);
        // Every router has 6 outgoing links except where a dimension has
        // size 2 (two directions coincide) — z here has size 2, so 5 each.
        assert_eq!(t.num_links(), 24 * 5);
    }

    #[test]
    fn torus_coord_round_trip() {
        let t = Topology::build(TopologySpec::Torus3D { dims: [5, 4, 3], nodes_per_router: 1 });
        for r in 0..t.num_routers() {
            assert_eq!(t.torus_router(t.torus_coords(r)), r);
        }
    }

    #[test]
    fn torus_neighbors_are_symmetric() {
        let t = Topology::build(TopologySpec::small_torus());
        for r in 0..t.num_routers() {
            for n in t.neighbors(r) {
                assert!(t.link_between(n, r).is_some(), "reverse link {n}->{r}");
            }
        }
    }

    #[test]
    fn degenerate_dimension_has_no_self_links() {
        let t = Topology::build(TopologySpec::Torus3D { dims: [4, 1, 1], nodes_per_router: 1 });
        assert!(t.links().iter().all(|l| l.from != l.to));
        // A ring of 4: each router has exactly 2 neighbors.
        for r in 0..4 {
            assert_eq!(t.neighbors(r).len(), 2);
        }
    }

    #[test]
    fn node_router_mapping() {
        let t = Topology::build(TopologySpec::Torus3D { dims: [2, 2, 2], nodes_per_router: 4 });
        assert_eq!(t.router_of(0), 0);
        assert_eq!(t.router_of(3), 0);
        assert_eq!(t.router_of(4), 1);
        assert_eq!(t.nodes_of_router(1), 4..8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn router_of_out_of_range_panics() {
        let t = Topology::build(TopologySpec::small_torus());
        t.router_of(t.num_nodes());
    }

    #[test]
    fn torus_cabinets_partition_nodes() {
        let t = Topology::build(TopologySpec::Torus3D { dims: [4, 2, 2], nodes_per_router: 2 });
        let mut per_cab = vec![0u32; t.num_cabinets() as usize];
        for n in 0..t.num_nodes() {
            per_cab[t.cabinet_of(n) as usize] += 1;
        }
        // 4 cabinets, 8 nodes each.
        assert!(per_cab.iter().all(|&c| c == 8), "{per_cab:?}");
        // Cabinets hold contiguous node blocks (physical numbering).
        assert_eq!(t.cabinet_of(0), 0);
        assert_eq!(t.cabinet_of(7), 0);
        assert_eq!(t.cabinet_of(8), 1);
        assert_eq!(t.cabinet_of(31), 3);
    }

    #[test]
    fn dragonfly_counts() {
        let t = Topology::build(TopologySpec::Dragonfly {
            groups: 4,
            routers_per_group: 3,
            nodes_per_router: 2,
        });
        assert_eq!(t.num_routers(), 12);
        assert_eq!(t.num_nodes(), 24);
        assert_eq!(t.num_cabinets(), 4);
        // Intra-group: 4 groups * 3*2 directed pairs = 24.
        // Global: C(4,2)=6 pairs * 2 directions = 12.
        assert_eq!(t.num_links(), 36);
        assert_eq!(t.links().iter().filter(|l| l.global).count(), 12);
    }

    #[test]
    fn dragonfly_gateways_are_in_their_group() {
        let t = Topology::build(TopologySpec::small_dragonfly());
        let TopologySpec::Dragonfly { groups, .. } = t.spec() else { unreachable!() };
        for ga in 0..groups {
            for gb in 0..groups {
                if ga != gb {
                    let gw = t.gateway_router(ga, gb);
                    assert_eq!(t.group_of(gw), ga);
                }
            }
        }
    }

    #[test]
    fn dragonfly_global_links_connect_gateways() {
        let t = Topology::build(TopologySpec::small_dragonfly());
        for l in t.links().iter().filter(|l| l.global) {
            assert_ne!(t.group_of(l.from), t.group_of(l.to));
            // The reverse global link exists too.
            assert!(t.link_between(l.to, l.from).is_some());
        }
    }

    #[test]
    fn dragonfly_intra_group_is_all_to_all() {
        let t = Topology::build(TopologySpec::Dragonfly {
            groups: 2,
            routers_per_group: 4,
            nodes_per_router: 1,
        });
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert!(t.link_between(a, b).is_some(), "{a}->{b}");
                }
            }
        }
    }

    #[test]
    fn link_ids_are_dense_and_consistent() {
        let t = Topology::build(TopologySpec::small_dragonfly());
        for (i, l) in t.links().iter().enumerate() {
            assert_eq!(l.id as usize, i);
            assert_eq!(t.link_between(l.from, l.to), Some(l.id));
        }
    }
}
