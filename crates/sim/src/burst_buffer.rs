//! Burst-buffer tier: fast intermediate storage for checkpoint bursts.
//!
//! LANL's Trinity (paper §II-1) runs custom checks "including but not
//! limited to: configurations (e.g. on burst buffer nodes)".  The model:
//! a set of buffer nodes absorbs job writes at high bandwidth and drains
//! to the parallel filesystem in the background.  A *misconfigured*
//! buffer node (the LANL check target) silently absorbs nothing, pushing
//! its share of traffic straight at the filesystem — invisible unless
//! someone checks the configuration or watches the absorb rate.

use hpcmon_metrics::StateHash;
use serde::{Deserialize, Serialize};

/// Burst-buffer shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BbConfig {
    /// Number of buffer nodes.
    pub num_nodes: u32,
    /// Capacity per buffer node, bytes.
    pub capacity_bytes: f64,
    /// Absorb bandwidth per buffer node, bytes/second.
    pub absorb_bytes_per_sec: f64,
    /// Drain bandwidth per buffer node (to the PFS), bytes/second.
    pub drain_bytes_per_sec: f64,
}

impl BbConfig {
    /// A modest Trinity-flavored tier: fast absorb, slower drain.
    pub fn small() -> BbConfig {
        BbConfig {
            num_nodes: 4,
            capacity_bytes: 2.0e12,
            absorb_bytes_per_sec: 40.0e9,
            drain_bytes_per_sec: 4.0e9,
        }
    }
}

/// One buffer node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BbNode {
    /// Whether the node is correctly configured (absorbs writes).
    pub configured: bool,
    /// Bytes currently buffered awaiting drain.
    pub occupancy_bytes: f64,
    /// Bytes absorbed in the last tick.
    pub absorbed_last_tick: f64,
    /// Bytes drained in the last tick.
    pub drained_last_tick: f64,
}

/// The burst-buffer tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BurstBuffer {
    config: BbConfig,
    nodes: Vec<BbNode>,
    next: usize,
}

impl BurstBuffer {
    /// Fold the full burst-buffer state into a flight-recorder digest.
    pub fn digest_into(&self, h: &mut StateHash) {
        h.usize(self.nodes.len());
        for n in &self.nodes {
            h.bool(n.configured)
                .f64(n.occupancy_bytes)
                .f64(n.absorbed_last_tick)
                .f64(n.drained_last_tick);
        }
        h.usize(self.next);
    }

    /// Fresh, fully configured tier.
    pub fn new(config: BbConfig) -> BurstBuffer {
        assert!(config.num_nodes >= 1);
        assert!(config.capacity_bytes > 0.0);
        assert!(config.absorb_bytes_per_sec > 0.0 && config.drain_bytes_per_sec > 0.0);
        BurstBuffer {
            config,
            nodes: vec![
                BbNode {
                    configured: true,
                    occupancy_bytes: 0.0,
                    absorbed_last_tick: 0.0,
                    drained_last_tick: 0.0,
                };
                config.num_nodes as usize
            ],
            next: 0,
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> BbConfig {
        self.config
    }

    /// Number of buffer nodes.
    pub fn num_nodes(&self) -> u32 {
        self.config.num_nodes
    }

    /// One node's state.
    pub fn node(&self, i: u32) -> BbNode {
        self.nodes[i as usize]
    }

    /// Reset per-tick accounting.
    pub fn begin_tick(&mut self) {
        for n in &mut self.nodes {
            n.absorbed_last_tick = 0.0;
            n.drained_last_tick = 0.0;
        }
    }

    /// Offer `bytes` of burst writes for a tick of `dt_ms`; returns the
    /// bytes absorbed.  The remainder must go to the filesystem directly.
    /// Buffer nodes are used round-robin; misconfigured nodes absorb
    /// nothing (their share spills).
    pub fn absorb(&mut self, bytes: f64, dt_ms: u64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let per_node_bw = self.config.absorb_bytes_per_sec * dt_ms as f64 / 1_000.0;
        let mut remaining = bytes;
        let mut absorbed = 0.0;
        for _ in 0..self.nodes.len() {
            if remaining <= 0.0 {
                break;
            }
            let idx = self.next;
            self.next = (self.next + 1) % self.nodes.len();
            let node = &mut self.nodes[idx];
            if !node.configured {
                continue;
            }
            let bw_room = (per_node_bw - node.absorbed_last_tick).max(0.0);
            let space = (self.config.capacity_bytes - node.occupancy_bytes).max(0.0);
            let take = remaining.min(bw_room).min(space);
            node.occupancy_bytes += take;
            node.absorbed_last_tick += take;
            absorbed += take;
            remaining -= take;
        }
        absorbed
    }

    /// Compute how much each node wants to drain this tick; the caller
    /// pushes it at the filesystem and reports back what was accepted via
    /// [`BurstBuffer::complete_drain`].
    pub fn drain_demand(&self, dt_ms: u64) -> Vec<f64> {
        let per_node = self.config.drain_bytes_per_sec * dt_ms as f64 / 1_000.0;
        self.nodes.iter().map(|n| n.occupancy_bytes.min(per_node)).collect()
    }

    /// Record that `accepted` bytes of node `i`'s drain were accepted.
    pub fn complete_drain(&mut self, i: u32, accepted: f64) {
        let node = &mut self.nodes[i as usize];
        let taken = accepted.min(node.occupancy_bytes);
        node.occupancy_bytes -= taken;
        node.drained_last_tick += taken;
    }

    /// Break or fix a node's configuration (the LANL check target).
    pub fn set_configured(&mut self, i: u32, configured: bool) {
        self.nodes[i as usize].configured = configured;
    }

    /// Whether all nodes pass the configuration check.
    pub fn all_configured(&self) -> bool {
        self.nodes.iter().all(|n| n.configured)
    }

    /// Total buffered bytes awaiting drain.
    pub fn total_occupancy(&self) -> f64 {
        self.nodes.iter().map(|n| n.occupancy_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bb() -> BurstBuffer {
        BurstBuffer::new(BbConfig {
            num_nodes: 2,
            capacity_bytes: 1_000.0,
            absorb_bytes_per_sec: 100.0,
            drain_bytes_per_sec: 10.0,
        })
    }

    #[test]
    fn absorbs_up_to_bandwidth() {
        let mut b = bb();
        b.begin_tick();
        // 2 nodes × 100 B/s × 1 s = 200 absorbable.
        assert_eq!(b.absorb(150.0, 1_000), 150.0);
        assert_eq!(b.absorb(100.0, 1_000), 50.0, "bandwidth exhausted mid-offer");
        assert_eq!(b.total_occupancy(), 200.0);
    }

    #[test]
    fn capacity_limits_absorption() {
        let mut b = bb();
        // Fill both nodes to capacity over several ticks.
        for _ in 0..10 {
            b.begin_tick();
            b.absorb(200.0, 1_000);
        }
        assert_eq!(b.total_occupancy(), 2_000.0, "both nodes full");
        b.begin_tick();
        assert_eq!(b.absorb(100.0, 1_000), 0.0, "no space left");
    }

    #[test]
    fn drain_cycle_moves_data_out() {
        let mut b = bb();
        b.begin_tick();
        b.absorb(200.0, 1_000);
        b.begin_tick();
        let demand = b.drain_demand(1_000);
        assert_eq!(demand, vec![10.0, 10.0], "drain bandwidth per node");
        b.complete_drain(0, 10.0);
        b.complete_drain(1, 4.0); // filesystem only took part of node 1's
        assert_eq!(b.total_occupancy(), 186.0);
        assert_eq!(b.node(0).drained_last_tick, 10.0);
        assert_eq!(b.node(1).drained_last_tick, 4.0);
    }

    #[test]
    fn misconfigured_node_spills() {
        let mut b = bb();
        b.set_configured(0, false);
        assert!(!b.all_configured());
        b.begin_tick();
        // Only node 1 absorbs: 100 of the 200 offered.
        assert_eq!(b.absorb(200.0, 1_000), 100.0);
        assert_eq!(b.node(0).occupancy_bytes, 0.0);
        assert_eq!(b.node(0).absorbed_last_tick, 0.0);
        // Repair restores full absorption.
        b.set_configured(0, true);
        b.begin_tick();
        assert_eq!(b.absorb(200.0, 1_000), 200.0);
    }

    #[test]
    fn round_robin_balances_nodes() {
        let mut b = bb();
        for _ in 0..4 {
            b.begin_tick();
            b.absorb(100.0, 1_000);
        }
        let occ0 = b.node(0).occupancy_bytes;
        let occ1 = b.node(1).occupancy_bytes;
        assert!((occ0 - occ1).abs() <= 100.0, "{occ0} vs {occ1}");
    }

    #[test]
    fn zero_and_negative_offers_are_noops() {
        let mut b = bb();
        b.begin_tick();
        assert_eq!(b.absorb(0.0, 1_000), 0.0);
        assert_eq!(b.absorb(-5.0, 1_000), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_config_rejected() {
        BurstBuffer::new(BbConfig {
            num_nodes: 0,
            capacity_bytes: 1.0,
            absorb_bytes_per_sec: 1.0,
            drain_bytes_per_sec: 1.0,
        });
    }
}
