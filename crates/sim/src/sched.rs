//! Batch scheduler: FCFS + backfill, placement policies, health gating.
//!
//! Three site practices from the paper are modelled:
//!
//! * **Topology-aware scheduling** (NCSA, Figure 1): placing a job on
//!   contiguous nodes keeps its traffic off shared links.  [`Placement`]
//!   selects random vs contiguous placement.
//! * **Health gating** (CSCS, §II-5): "no job should start on a node with a
//!   problem, and a problem should only be encountered by at most one batch
//!   job".  With gating on, candidate nodes are health-checked before job
//!   start and after job end; failures take the node out of service.
//! * **Queue-depth monitoring** (CSC/NERSC): [`Scheduler::queue_depth`] is
//!   the series those sites watch for backlog anomalies.

use crate::workload::JobSpec;
use hpcmon_metrics::{JobId, JobRecord, JobState, StateHash, Ts};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Node-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Any free nodes, scattered (pre-TAS Blue Waters).
    Random,
    /// Prefer a contiguous block of node ids (TAS).
    TopologyAware,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Placement policy.
    pub placement: Placement,
    /// CSCS-style pre/post-job health checks.
    pub health_gating: bool,
    /// Allow later queue entries to start ahead of a blocked head.
    pub backfill: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            placement: Placement::TopologyAware,
            health_gating: false,
            backfill: true,
        }
    }
}

/// A job currently executing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunningJob {
    /// Job id.
    pub id: JobId,
    /// The submission it came from.
    pub spec: JobSpec,
    /// Allocated node ids (rank order).
    pub nodes: Vec<u32>,
    /// Start time.
    pub started: Ts,
    /// Useful work completed, ms.
    pub progress_ms: f64,
    /// Efficiency achieved last tick (1.0 = uncontended).
    pub last_efficiency: f64,
}

impl RunningJob {
    /// Milliseconds of wall-clock elapsed since start at `now`.
    pub fn elapsed_ms(&self, now: Ts) -> u64 {
        now.0.saturating_sub(self.started.0)
    }
}

/// Scheduler events surfaced to the engine (which turns them into logs).
#[derive(Debug, Clone, PartialEq)]
pub enum SchedEvent {
    /// A job began execution.
    Started {
        /// Job id.
        job: JobId,
        /// Allocation.
        nodes: Vec<u32>,
    },
    /// A candidate node failed its pre-job health check and was sidelined.
    NodeFailedPreCheck {
        /// The node taken out of service.
        node: u32,
    },
    /// A node failed its post-job health check and was sidelined.
    NodeFailedPostCheck {
        /// The job that just vacated the node.
        job: JobId,
        /// The node taken out of service.
        node: u32,
    },
    /// A job finished successfully.
    Completed {
        /// Job id.
        job: JobId,
    },
    /// A job died (node crash under it).
    Failed {
        /// Job id.
        job: JobId,
        /// The node whose failure killed it, if known.
        node: Option<u32>,
    },
}

/// The batch scheduler.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scheduler {
    config: SchedulerConfig,
    num_nodes: u32,
    /// Which job occupies each node.
    alloc: Vec<Option<JobId>>,
    /// Nodes administratively out of service (failed health checks).
    oos: Vec<bool>,
    queue: VecDeque<(JobId, JobSpec)>,
    running: Vec<RunningJob>,
    records: Vec<JobRecord>,
}

impl Scheduler {
    /// Fold the full scheduler state into a flight-recorder digest.
    pub fn digest_into(&self, h: &mut StateHash) {
        h.u64(self.num_nodes as u64);
        h.usize(self.alloc.len());
        for a in &self.alloc {
            h.u64(a.map_or(u64::MAX, |j| j.0 as u64));
        }
        h.bools(&self.oos);
        h.usize(self.queue.len());
        for (id, spec) in &self.queue {
            h.u64(id.0 as u64).u64(spec.nodes as u64).u64(spec.work_ms);
        }
        h.usize(self.running.len());
        for r in &self.running {
            h.u64(r.id.0 as u64)
                .u64(r.started.0)
                .f64(r.progress_ms)
                .f64(r.last_efficiency)
                .usize(r.nodes.len());
        }
        h.usize(self.records.len());
    }

    /// Create for a machine of `num_nodes`.
    pub fn new(config: SchedulerConfig, num_nodes: u32) -> Scheduler {
        Scheduler {
            config,
            num_nodes,
            alloc: vec![None; num_nodes as usize],
            oos: vec![false; num_nodes as usize],
            queue: VecDeque::new(),
            running: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> SchedulerConfig {
        self.config
    }

    /// Submit a job; returns its id.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.records.len() as u32);
        self.records.push(JobRecord::submitted(
            id,
            spec.user.clone(),
            spec.app.name.clone(),
            Vec::new(),
            spec.submit,
        ));
        self.queue.push_back((id, spec));
        id
    }

    /// Number of queued (not yet running) jobs — the CSC/NERSC backlog
    /// metric.  Includes future-dated submissions; see
    /// [`Scheduler::queue_depth_at`] for the time-aware view.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Queued jobs already submitted as of `now` (what the batch system
    /// would actually show in its queue).
    pub fn queue_depth_at(&self, now: Ts) -> usize {
        self.queue.iter().filter(|(_, spec)| spec.submit <= now).count()
    }

    /// Jobs currently executing.
    pub fn running(&self) -> &[RunningJob] {
        &self.running
    }

    /// Mutable access for the engine's progress updates.
    pub fn running_mut(&mut self) -> &mut Vec<RunningJob> {
        &mut self.running
    }

    /// All job records (queued, running, finished).
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Record for one job.
    pub fn record(&self, id: JobId) -> &JobRecord {
        &self.records[id.0 as usize]
    }

    /// Nodes currently out of service.
    pub fn out_of_service(&self) -> Vec<u32> {
        (0..self.num_nodes).filter(|&n| self.oos[n as usize]).collect()
    }

    /// Return a sidelined node to service (post-repair).
    pub fn return_to_service(&mut self, node: u32) {
        self.oos[node as usize] = false;
    }

    /// Administratively sideline a node (response-engine action).
    pub fn take_out_of_service(&mut self, node: u32) {
        self.oos[node as usize] = true;
    }

    /// Free, in-service nodes in ascending id order.
    fn free_nodes(&self) -> Vec<u32> {
        (0..self.num_nodes)
            .filter(|&n| self.alloc[n as usize].is_none() && !self.oos[n as usize])
            .collect()
    }

    /// Number of free, in-service nodes.
    pub fn free_count(&self) -> usize {
        self.free_nodes().len()
    }

    /// Attempt to start queued jobs at `now`.
    ///
    /// `healthy` answers the CSCS pre-job health assessment for a node;
    /// `shuffle` provides randomness for [`Placement::Random`] (a closure so
    /// the scheduler stays RNG-agnostic).
    pub fn try_start(
        &mut self,
        now: Ts,
        healthy: &dyn Fn(u32) -> bool,
        shuffle: &mut dyn FnMut(&mut Vec<u32>),
    ) -> Vec<SchedEvent> {
        let mut events = Vec::new();
        let mut qi = 0usize;
        while qi < self.queue.len() {
            // A job does not exist to the scheduler before its submit time.
            if self.queue[qi].1.submit > now {
                if !self.config.backfill {
                    break;
                }
                qi += 1;
                continue;
            }
            let need = self.queue[qi].1.nodes;
            match self.pick_nodes(need, healthy, shuffle, &mut events) {
                Some(nodes) => {
                    let (id, spec) = self.queue.remove(qi).expect("index in bounds");
                    for &n in &nodes {
                        self.alloc[n as usize] = Some(id);
                    }
                    let rec = &mut self.records[id.0 as usize];
                    rec.nodes = nodes.clone();
                    rec.start = Some(now);
                    rec.state = JobState::Running;
                    self.running.push(RunningJob {
                        id,
                        spec,
                        nodes: nodes.clone(),
                        started: now,
                        progress_ms: 0.0,
                        last_efficiency: 1.0,
                    });
                    events.push(SchedEvent::Started { job: id, nodes });
                    // Restart the scan: freed positions shifted.
                }
                None => {
                    if !self.config.backfill {
                        break; // strict FCFS: blocked head blocks the queue
                    }
                    qi += 1;
                }
            }
        }
        events
    }

    /// Pick an allocation of `need` nodes, health-gating if configured.
    fn pick_nodes(
        &mut self,
        need: u32,
        healthy: &dyn Fn(u32) -> bool,
        shuffle: &mut dyn FnMut(&mut Vec<u32>),
        events: &mut Vec<SchedEvent>,
    ) -> Option<Vec<u32>> {
        loop {
            let mut free = self.free_nodes();
            if (free.len() as u32) < need {
                return None;
            }
            let candidate: Vec<u32> = match self.config.placement {
                Placement::TopologyAware => {
                    // First contiguous run of `need` ids, else first `need`.
                    let mut run_start = 0usize;
                    let mut found = None;
                    for i in 1..=free.len() {
                        let contiguous = i < free.len() && free[i] == free[i - 1] + 1;
                        if !contiguous {
                            if i - run_start >= need as usize {
                                found = Some(free[run_start..run_start + need as usize].to_vec());
                                break;
                            }
                            run_start = i;
                        }
                    }
                    found.unwrap_or_else(|| free[..need as usize].to_vec())
                }
                Placement::Random => {
                    shuffle(&mut free);
                    free[..need as usize].to_vec()
                }
            };
            if !self.config.health_gating {
                return Some(candidate);
            }
            // CSCS gating: sideline any unhealthy candidate and retry with
            // the remaining pool.
            let bad: Vec<u32> = candidate.iter().copied().filter(|&n| !healthy(n)).collect();
            if bad.is_empty() {
                return Some(candidate);
            }
            for n in bad {
                self.oos[n as usize] = true;
                events.push(SchedEvent::NodeFailedPreCheck { node: n });
            }
        }
    }

    /// Finish a running job (called by the engine when its work is done).
    /// With gating enabled, `healthy` drives the post-job assessment.
    pub fn complete(
        &mut self,
        id: JobId,
        now: Ts,
        healthy: &dyn Fn(u32) -> bool,
    ) -> Vec<SchedEvent> {
        let mut events = Vec::new();
        let Some(pos) = self.running.iter().position(|r| r.id == id) else {
            return events;
        };
        let job = self.running.swap_remove(pos);
        for &n in &job.nodes {
            self.alloc[n as usize] = None;
            if self.config.health_gating && !healthy(n) {
                self.oos[n as usize] = true;
                events.push(SchedEvent::NodeFailedPostCheck { job: id, node: n });
            }
        }
        let rec = &mut self.records[id.0 as usize];
        rec.end = Some(now);
        rec.state = JobState::Completed;
        events.push(SchedEvent::Completed { job: id });
        events
    }

    /// A job failed to launch (e.g. a dead daemon on one of its nodes).
    /// The job dies but the node stays in service — which is exactly how
    /// an ungated machine lets one bad node eat job after job.
    pub fn launch_failed(&mut self, id: JobId, node: u32, now: Ts) -> Vec<SchedEvent> {
        let Some(pos) = self.running.iter().position(|r| r.id == id) else {
            return Vec::new();
        };
        let job = self.running.swap_remove(pos);
        for &n in &job.nodes {
            self.alloc[n as usize] = None;
        }
        let rec = &mut self.records[id.0 as usize];
        rec.end = Some(now);
        rec.state = JobState::Failed;
        vec![SchedEvent::Failed { job: id, node: Some(node) }]
    }

    /// A node died: fail any job on it and sideline the node.
    pub fn node_failed(&mut self, node: u32, now: Ts) -> Vec<SchedEvent> {
        let mut events = Vec::new();
        self.oos[node as usize] = true;
        if let Some(id) = self.alloc[node as usize] {
            if let Some(pos) = self.running.iter().position(|r| r.id == id) {
                let job = self.running.swap_remove(pos);
                for &n in &job.nodes {
                    self.alloc[n as usize] = None;
                }
                let rec = &mut self.records[id.0 as usize];
                rec.end = Some(now);
                rec.state = JobState::Failed;
                events.push(SchedEvent::Failed { job: id, node: Some(node) });
            }
            self.alloc[node as usize] = None;
        }
        events
    }

    /// The job allocated to a node, if any.
    pub fn job_on_node(&self, node: u32) -> Option<JobId> {
        self.alloc[node as usize]
    }

    /// Estimate how long a hypothetical `need`-node job submitted at `now`
    /// would wait — the CSC user-facing queue view ("a realistic view into
    /// the expected wait time for the currently submitted workload").
    ///
    /// The estimate replays the queue FCFS against projected completions:
    /// running jobs finish after their remaining work at current
    /// efficiency; queued jobs run for their nominal work.  Placement
    /// fragmentation and future contention are ignored, so this is a
    /// lower-bound-flavored estimate, which is what sites display.
    /// Returns `None` when the job can never fit.
    pub fn estimate_wait_ms(&self, need: u32, now: Ts) -> Option<u64> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let in_service = (0..self.num_nodes).filter(|&n| !self.oos[n as usize]).count() as u32;
        if need == 0 || need > in_service {
            return None;
        }
        // (completion time from now, nodes returned).
        let mut completions: BinaryHeap<Reverse<(u64, u32)>> = self
            .running
            .iter()
            .map(|r| {
                let remaining = (r.spec.work_ms as f64 - r.progress_ms).max(0.0);
                let eff = r.last_efficiency.max(0.05);
                Reverse(((remaining / eff) as u64, r.nodes.len() as u32))
            })
            .collect();
        let mut pending: std::collections::VecDeque<(u32, u64)> = self
            .queue
            .iter()
            .filter(|(_, spec)| spec.submit <= now)
            .map(|(_, spec)| (spec.nodes, spec.work_ms))
            .collect();
        let mut free = self.free_count() as u32;
        let mut t = 0u64;
        loop {
            // FCFS: drain the head of the queue while it fits.
            while let Some(&(n, work)) = pending.front() {
                if free >= n {
                    free -= n;
                    completions.push(Reverse((t + work, n)));
                    pending.pop_front();
                } else {
                    break;
                }
            }
            if pending.is_empty() && free >= need {
                return Some(t);
            }
            match completions.pop() {
                Some(Reverse((when, nodes))) => {
                    t = when.max(t);
                    free += nodes;
                }
                None => return None, // queue head larger than the machine
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::workload::AppProfile;

    fn spec(nodes: u32) -> JobSpec {
        JobSpec::new(AppProfile::compute_heavy("app"), "u", nodes, 60_000, Ts::ZERO)
    }

    fn no_shuffle() -> impl FnMut(&mut Vec<u32>) {
        |_: &mut Vec<u32>| {}
    }

    fn all_healthy(_: u32) -> bool {
        true
    }

    #[test]
    fn fcfs_start_and_queue_depth() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 8);
        let a = s.submit(spec(4));
        let b = s.submit(spec(4));
        let c = s.submit(spec(4));
        assert_eq!(s.queue_depth(), 3);
        let mut sh = no_shuffle();
        let ev = s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        let started: Vec<_> = ev
            .iter()
            .filter_map(|e| match e {
                SchedEvent::Started { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![a, b]);
        assert_eq!(s.queue_depth(), 1);
        assert_eq!(s.record(c).state, JobState::Queued);
        assert_eq!(s.free_count(), 0);
    }

    #[test]
    fn topology_aware_placement_is_contiguous() {
        let mut s = Scheduler::new(
            SchedulerConfig { placement: Placement::TopologyAware, ..Default::default() },
            16,
        );
        let a = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        let nodes = &s.record(a).nodes;
        assert_eq!(nodes, &vec![0, 1, 2, 3]);
    }

    #[test]
    fn topology_aware_finds_gap_after_fragmentation() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 12);
        let a = s.submit(spec(4));
        let b = s.submit(spec(4));
        let c = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        // Free the middle job; a new 4-node job should land in its hole.
        s.complete(b, Ts::from_mins(1), &all_healthy);
        let d = s.submit(spec(4));
        s.try_start(Ts::from_mins(2), &all_healthy, &mut sh);
        assert_eq!(s.record(d).nodes, vec![4, 5, 6, 7]);
        let _ = (a, c);
    }

    #[test]
    fn random_placement_uses_shuffle() {
        let mut s = Scheduler::new(
            SchedulerConfig { placement: Placement::Random, ..Default::default() },
            64,
        );
        let a = s.submit(spec(8));
        let mut rng = Rng::new(7);
        let mut sh = move |v: &mut Vec<u32>| rng.shuffle(v);
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        let nodes = s.record(a).nodes.clone();
        // Overwhelmingly unlikely to be the contiguous prefix.
        assert_ne!(nodes, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn backfill_skips_blocked_head() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 8);
        let big = s.submit(spec(16)); // can never fit
        let small = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        assert_eq!(s.record(small).state, JobState::Running);
        assert_eq!(s.record(big).state, JobState::Queued);
    }

    #[test]
    fn strict_fcfs_blocks_behind_head() {
        let mut s = Scheduler::new(SchedulerConfig { backfill: false, ..Default::default() }, 8);
        s.submit(spec(16));
        let small = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        assert_eq!(s.record(small).state, JobState::Queued);
    }

    #[test]
    fn health_gating_sidelines_bad_nodes() {
        let mut s =
            Scheduler::new(SchedulerConfig { health_gating: true, ..Default::default() }, 8);
        let a = s.submit(spec(4));
        let unhealthy = |n: u32| n != 1; // node 1 is bad
        let mut sh = no_shuffle();
        let ev = s.try_start(Ts::ZERO, &unhealthy, &mut sh);
        assert!(ev.contains(&SchedEvent::NodeFailedPreCheck { node: 1 }));
        let nodes = s.record(a).nodes.clone();
        assert!(!nodes.contains(&1), "bad node excluded: {nodes:?}");
        assert_eq!(nodes.len(), 4);
        assert_eq!(s.out_of_service(), vec![1]);
    }

    #[test]
    fn post_job_check_sidelines_node() {
        let mut s =
            Scheduler::new(SchedulerConfig { health_gating: true, ..Default::default() }, 8);
        let a = s.submit(spec(2));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        let broke = |n: u32| n != 0; // node 0 broke during the job
        let ev = s.complete(a, Ts::from_mins(5), &broke);
        assert!(ev.contains(&SchedEvent::NodeFailedPostCheck { job: a, node: 0 }));
        assert!(ev.contains(&SchedEvent::Completed { job: a }));
        assert_eq!(s.out_of_service(), vec![0]);
        // Node returns after repair.
        s.return_to_service(0);
        assert!(s.out_of_service().is_empty());
    }

    #[test]
    fn node_failure_kills_job_and_frees_allocation() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 8);
        let a = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        let ev = s.node_failed(2, Ts::from_mins(3));
        assert_eq!(ev, vec![SchedEvent::Failed { job: a, node: Some(2) }]);
        assert_eq!(s.record(a).state, JobState::Failed);
        // Nodes 0,1,3 freed; node 2 out of service.
        assert_eq!(s.free_count(), 7);
        assert_eq!(s.job_on_node(0), None);
    }

    #[test]
    fn completed_job_frees_nodes_for_queue() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 4);
        let a = s.submit(spec(4));
        let b = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        assert_eq!(s.record(b).state, JobState::Queued);
        s.complete(a, Ts::from_mins(10), &all_healthy);
        s.try_start(Ts::from_mins(10), &all_healthy, &mut sh);
        assert_eq!(s.record(b).state, JobState::Running);
        assert_eq!(s.record(a).runtime_ms(), Some(10 * 60_000));
    }

    #[test]
    fn future_submissions_wait_for_their_time() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 16);
        let now_job = s.submit(spec(4));
        let future = {
            let mut sp = spec(4);
            sp.submit = Ts::from_mins(30);
            s.submit(sp)
        };
        let mut sh = no_shuffle();
        s.try_start(Ts::from_mins(1), &all_healthy, &mut sh);
        assert_eq!(s.record(now_job).state, JobState::Running);
        assert_eq!(s.record(future).state, JobState::Queued);
        assert_eq!(s.queue_depth(), 1);
        assert_eq!(s.queue_depth_at(Ts::from_mins(1)), 0, "future job invisible");
        assert_eq!(s.queue_depth_at(Ts::from_mins(30)), 1);
        // Its time arrives: it starts.
        s.try_start(Ts::from_mins(30), &all_healthy, &mut sh);
        assert_eq!(s.record(future).state, JobState::Running);
        assert_eq!(s.record(future).start, Some(Ts::from_mins(30)));
    }

    #[test]
    fn launch_failed_frees_nodes_without_sidelining() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 8);
        let a = s.submit(spec(4));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        let ev = s.launch_failed(a, 2, Ts::from_mins(1));
        assert_eq!(ev, vec![SchedEvent::Failed { job: a, node: Some(2) }]);
        assert_eq!(s.record(a).state, JobState::Failed);
        assert_eq!(s.free_count(), 8, "nodes freed AND still in service");
        assert!(s.out_of_service().is_empty());
        // Unknown job: no-op.
        assert!(s.launch_failed(JobId(99), 0, Ts::ZERO).is_empty());
    }

    #[test]
    fn wait_estimate_idle_machine_is_zero() {
        let s = Scheduler::new(SchedulerConfig::default(), 16);
        assert_eq!(s.estimate_wait_ms(8, Ts::ZERO), Some(0));
        assert_eq!(s.estimate_wait_ms(16, Ts::ZERO), Some(0));
        assert_eq!(s.estimate_wait_ms(17, Ts::ZERO), None, "never fits");
        assert_eq!(s.estimate_wait_ms(0, Ts::ZERO), None);
    }

    #[test]
    fn wait_estimate_accounts_for_running_and_queued_work() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 16);
        // One job occupies the whole machine for ~10 minutes...
        let a = s.submit(spec(16));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        // spec() jobs carry 60_000 ms of work.
        s.running_mut()[0].last_efficiency = 1.0;
        let _ = a;
        // A full-machine follow-up must wait for completion.
        let wait = s.estimate_wait_ms(16, Ts::ZERO).unwrap();
        assert!((50_000..=70_000).contains(&wait), "wait {wait}");
        // A queued job ahead of us pushes the estimate out further.
        s.submit(spec(16));
        let wait2 = s.estimate_wait_ms(16, Ts::ZERO).unwrap();
        assert!(wait2 > wait, "{wait2} > {wait}");
    }

    #[test]
    fn wait_estimate_respects_out_of_service_nodes() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 16);
        for n in 0..8 {
            s.take_out_of_service(n);
        }
        assert_eq!(s.estimate_wait_ms(8, Ts::ZERO), Some(0));
        assert_eq!(s.estimate_wait_ms(9, Ts::ZERO), None);
    }

    #[test]
    fn wait_estimate_slow_job_waits_longer() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 8);
        s.submit(spec(8));
        let mut sh = no_shuffle();
        s.try_start(Ts::ZERO, &all_healthy, &mut sh);
        s.running_mut()[0].last_efficiency = 1.0;
        let fast = s.estimate_wait_ms(8, Ts::ZERO).unwrap();
        s.running_mut()[0].last_efficiency = 0.25; // congested job
        let slow = s.estimate_wait_ms(8, Ts::ZERO).unwrap();
        assert!(slow > 3 * fast, "fast {fast} slow {slow}");
    }

    #[test]
    fn completing_unknown_job_is_noop() {
        let mut s = Scheduler::new(SchedulerConfig::default(), 4);
        let ev = s.complete(JobId(99), Ts::ZERO, &all_healthy);
        assert!(ev.is_empty());
    }
}
