//! Deterministic random number generation.
//!
//! The simulator must be exactly reproducible for a given seed — the
//! integration tests assert bit-identical reruns — so it carries its own
//! small, well-understood generator (SplitMix64) rather than depending on a
//! crate whose stream might change across versions.

use serde::{Deserialize, Serialize};

/// SplitMix64 pseudo-random generator with distribution helpers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded constructor.  Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    /// Raw generator state, for snapshots and state digests.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a generator at an exact stream position (snapshot restore).
    /// Unlike [`Rng::new`] this does not perturb the value.
    pub fn from_state(state: u64) -> Rng {
        Rng { state }
    }

    /// Derive an independent child generator (used to give each subsystem
    /// its own stream so adding draws in one does not perturb another).
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is undefined");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n which is
        // negligible for simulation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "empty range");
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential with the given rate (λ). Panics on non-positive rate.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        -(1.0 - self.f64()).max(f64::MIN_POSITIVE).ln() / rate
    }

    /// Poisson-distributed count with the given mean (Knuth's method; fine
    /// for the small means used by the failure and log generators).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        let limit = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= limit {
                return k;
            }
            k += 1;
            // Guard against pathological means.
            if k > 10_000 {
                return k;
            }
        }
    }

    /// Weibull with the given scale and shape (component lifetimes).
    pub fn weibull(&mut self, scale: f64, shape: f64) -> f64 {
        assert!(scale > 0.0 && shape > 0.0, "weibull parameters must be positive");
        let u = (1.0 - self.f64()).max(f64::MIN_POSITIVE);
        scale * (-u.ln()).powf(1.0 / shape)
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_bounds_and_coverage() {
        let mut r = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 1000 draws");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(13);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_mean() {
        let mut r = Rng::new(17);
        let n = 20_000;
        let mean = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-1.0), 0);
    }

    #[test]
    fn weibull_positive() {
        let mut r = Rng::new(19);
        for _ in 0..1_000 {
            assert!(r.weibull(100.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(23);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn fork_independence() {
        let mut parent = Rng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        // Children are distinct streams.
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn pick_returns_member() {
        let mut r = Rng::new(31);
        let items = [10, 20, 30];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
