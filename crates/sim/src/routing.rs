//! Routing over the built topologies.
//!
//! Two policies are provided, mirroring what the Cray systems in the paper
//! ran: **minimal** (dimension-order on the torus, min-hop on the
//! dragonfly) and **adaptive**, which inspects current link loads and
//! detours around the most congested first hop.  The `abl_routing` bench
//! compares them under hot-spot traffic.

use crate::topology::{Topology, TopologySpec};
use serde::{Deserialize, Serialize};

/// Routing policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutePolicy {
    /// Always take the minimal path.
    Minimal,
    /// Detour via a random-ish intermediate when the minimal first hop is
    /// heavily loaded (Valiant-style, load-informed).
    Adaptive,
}

/// Compute the minimal path between two routers as a list of link ids.
/// Returns an empty path when `src == dst`.
pub fn minimal_route(topo: &Topology, src: u32, dst: u32) -> Vec<u32> {
    match topo.spec() {
        TopologySpec::Torus3D { .. } => torus_route(topo, src, dst),
        TopologySpec::Dragonfly { .. } => dragonfly_route(topo, src, dst),
    }
}

/// Compute a route under the given policy.  `link_load` supplies the current
/// per-link load fraction (load / capacity) used by the adaptive policy;
/// it is indexed by link id.
pub fn route_with_policy(
    topo: &Topology,
    src: u32,
    dst: u32,
    policy: RoutePolicy,
    link_load: &[f64],
    congestion_threshold: f64,
) -> Vec<u32> {
    if src == dst {
        return Vec::new();
    }
    match policy {
        RoutePolicy::Minimal => minimal_route(topo, src, dst),
        RoutePolicy::Adaptive => {
            let minimal = minimal_route(topo, src, dst);
            let first = minimal[0] as usize;
            let first_load = link_load.get(first).copied().unwrap_or(0.0);
            if first_load <= congestion_threshold {
                return minimal;
            }
            // Detour through the least-loaded neighbor, then minimally on.
            let mut best: Option<(f64, u32)> = None;
            for n in topo.neighbors(src) {
                if n == dst {
                    continue;
                }
                let l = topo.link_between(src, n).expect("neighbor implies link");
                let load = link_load.get(l as usize).copied().unwrap_or(0.0);
                if best.is_none_or(|(b, _)| load < b) {
                    best = Some((load, n));
                }
            }
            match best {
                Some((load, via)) if load < first_load => {
                    let mut path =
                        vec![topo.link_between(src, via).expect("neighbor implies link")];
                    path.extend(minimal_route(topo, via, dst));
                    path
                }
                _ => minimal,
            }
        }
    }
}

/// Dimension-order (x, then y, then z) routing with shortest wrap direction.
fn torus_route(topo: &Topology, src: u32, dst: u32) -> Vec<u32> {
    let TopologySpec::Torus3D { dims, .. } = topo.spec() else {
        unreachable!("torus_route requires a torus")
    };
    let mut path = Vec::new();
    let mut cur = topo.torus_coords(src);
    let goal = topo.torus_coords(dst);
    for dim in 0..3 {
        while cur[dim] != goal[dim] {
            let size = dims[dim] as i64;
            let fwd = (goal[dim] as i64 - cur[dim] as i64).rem_euclid(size);
            let bwd = size - fwd;
            let step: i64 = if fwd <= bwd { 1 } else { -1 };
            let mut next = cur;
            next[dim] = ((cur[dim] as i64 + step).rem_euclid(size)) as u32;
            let from = topo.torus_router(cur);
            let to = topo.torus_router(next);
            path.push(topo.link_between(from, to).expect("torus neighbors are linked"));
            cur = next;
        }
    }
    path
}

/// Minimal dragonfly route: local hop to the source-side gateway, one global
/// hop, local hop from the destination-side gateway.
fn dragonfly_route(topo: &Topology, src: u32, dst: u32) -> Vec<u32> {
    if src == dst {
        return Vec::new();
    }
    let gs = topo.group_of(src);
    let gd = topo.group_of(dst);
    let mut path = Vec::new();
    if gs == gd {
        // Intra-group: direct (groups are all-to-all).
        path.push(topo.link_between(src, dst).expect("intra-group all-to-all"));
        return path;
    }
    let gw_src = topo.gateway_router(gs, gd);
    let gw_dst = topo.gateway_router(gd, gs);
    let mut cur = src;
    if cur != gw_src {
        path.push(topo.link_between(cur, gw_src).expect("intra-group all-to-all"));
        cur = gw_src;
    }
    path.push(topo.link_between(cur, gw_dst).expect("gateway pair has global link"));
    cur = gw_dst;
    if cur != dst {
        path.push(topo.link_between(cur, dst).expect("intra-group all-to-all"));
    }
    path
}

/// Number of hops on the minimal path (for placement quality metrics).
pub fn hop_distance(topo: &Topology, src: u32, dst: u32) -> u32 {
    minimal_route(topo, src, dst).len() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologySpec;

    fn check_path(topo: &Topology, src: u32, dst: u32, path: &[u32]) {
        let mut cur = src;
        for &lid in path {
            let l = topo.link(lid);
            assert_eq!(l.from, cur, "path is contiguous");
            cur = l.to;
        }
        assert_eq!(cur, dst, "path reaches destination");
    }

    #[test]
    fn torus_routes_reach_destination() {
        let topo = Topology::build(TopologySpec::Torus3D { dims: [4, 3, 5], nodes_per_router: 1 });
        for src in 0..topo.num_routers() {
            for dst in 0..topo.num_routers() {
                let path = minimal_route(&topo, src, dst);
                check_path(&topo, src, dst, &path);
                if src == dst {
                    assert!(path.is_empty());
                }
            }
        }
    }

    #[test]
    fn torus_takes_shortest_wrap() {
        // Ring of 8 in x: from 0 to 6 should go backwards (2 hops), not 6.
        let topo = Topology::build(TopologySpec::Torus3D { dims: [8, 1, 1], nodes_per_router: 1 });
        let path = minimal_route(&topo, 0, 6);
        assert_eq!(path.len(), 2);
        let path = minimal_route(&topo, 0, 4);
        assert_eq!(path.len(), 4); // tie goes forward but is still 4 hops
    }

    #[test]
    fn torus_route_length_is_manhattan() {
        let topo = Topology::build(TopologySpec::Torus3D { dims: [6, 6, 6], nodes_per_router: 1 });
        let src = topo.torus_router([0, 0, 0]);
        let dst = topo.torus_router([2, 3, 1]);
        assert_eq!(hop_distance(&topo, src, dst), 6);
    }

    #[test]
    fn dragonfly_routes_reach_destination() {
        let topo = Topology::build(TopologySpec::small_dragonfly());
        for src in (0..topo.num_routers()).step_by(3) {
            for dst in (0..topo.num_routers()).step_by(5) {
                let path = minimal_route(&topo, src, dst);
                check_path(&topo, src, dst, &path);
            }
        }
    }

    #[test]
    fn dragonfly_max_three_hops() {
        let topo = Topology::build(TopologySpec::small_dragonfly());
        for src in 0..topo.num_routers() {
            for dst in 0..topo.num_routers() {
                assert!(hop_distance(&topo, src, dst) <= 3, "{src}->{dst}");
            }
        }
    }

    #[test]
    fn dragonfly_uses_exactly_one_global_hop_between_groups() {
        let topo = Topology::build(TopologySpec::small_dragonfly());
        let src = 0;
        let dst = topo.num_routers() - 1;
        let path = minimal_route(&topo, src, dst);
        let globals = path.iter().filter(|&&l| topo.link(l).global).count();
        assert_eq!(globals, 1);
    }

    #[test]
    fn adaptive_equals_minimal_when_uncongested() {
        let topo = Topology::build(TopologySpec::small_torus());
        let loads = vec![0.0; topo.num_links() as usize];
        let a = route_with_policy(&topo, 0, 9, RoutePolicy::Adaptive, &loads, 0.8);
        let m = minimal_route(&topo, 0, 9);
        assert_eq!(a, m);
    }

    #[test]
    fn adaptive_detours_around_hot_first_hop() {
        let topo = Topology::build(TopologySpec::small_torus());
        let m = minimal_route(&topo, 0, 9);
        let mut loads = vec![0.0; topo.num_links() as usize];
        loads[m[0] as usize] = 5.0; // first hop saturated
        let a = route_with_policy(&topo, 0, 9, RoutePolicy::Adaptive, &loads, 0.8);
        check_path(&topo, 0, 9, &a);
        assert_ne!(a[0], m[0], "adaptive must avoid the saturated first hop");
    }

    #[test]
    fn adaptive_self_route_is_empty() {
        let topo = Topology::build(TopologySpec::small_torus());
        let loads = vec![0.0; topo.num_links() as usize];
        assert!(route_with_policy(&topo, 3, 3, RoutePolicy::Adaptive, &loads, 0.8).is_empty());
    }
}
