//! `hpcmon-repro` — umbrella package hosting the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/`.
//!
//! The library surface re-exports the workspace facade crate so examples and
//! tests can use a single import root.

pub use hpcmon;
